"""Big-vs-little energy-per-instruction crossover sweep.

Sweeps one compute-bound and one memory-bound stream across the
big:little ratio ladder of an 8-core budget and reports chip
energy-per-instruction (sensor power x window / committed
instructions -- counter-only arithmetic, the quantity cross-
architecture campaigns such as freqbench ladder over).

The crossover this prints is the heterogeneity story in one table:

* the *compute* stream commits ~5x more work per thread on the wide
  3 GHz big core, so big shapes amortize the chip's static power and
  win EPI decisively;
* the *memory* stream is DRAM-latency-bound -- equally fast on either
  core class (the little class's hierarchy costs the same
  nanoseconds) -- so every big core it occupies burns energy for no
  throughput and the all-little shape wins.

A second table re-runs the ladder with the big cluster down-volted to
``p2``: per-cluster DVFS narrows the gap from both sides.

Run:  python examples/biglittle_sweep.py
"""

from repro.dse import energy_per_instruction_nj
from repro.march import get_architecture
from repro.sim import Machine, topology_ladder
from repro.sim.pstate import get_pstate
from repro.workloads.mixes import hi_ilp_kernel, memory_bound_kernel

machine = Machine(get_architecture("POWER7"))

DURATION_S = 1.0
LADDER = topology_ladder(8, step=2)
WORKLOADS = {
    "compute (hi-ILP int)": hi_ilp_kernel(256),
    "memory (DRAM loads)": memory_bound_kernel(256),
}


def epi_table(title, topologies):
    print(f"\n=== {title} ===")
    print(f"{'topology':>20s}" + "".join(f"{name:>24s}" for name in WORKLOADS))
    for topology in topologies:
        cells = []
        for kernel in WORKLOADS.values():
            measurement = machine.run(kernel, topology, DURATION_S)
            cells.append(energy_per_instruction_nj(measurement))
        row = "".join(f"{epi:21.2f} nJ" for epi in cells)
        print(f"{topology.label:>20s}{row}")


epi_table("chip EPI across the big:little ladder", LADDER)

# Per-cluster DVFS: only the big cluster moves to p2; the little
# cluster's clock, counters and noise are untouched.
p2 = get_pstate("p2")
DOWNVOLTED = [
    topology.with_cluster_p_states(
        [p2 if cluster.core_class is None else cluster.p_state
         for cluster in topology.clusters]
    )
    for topology in LADDER
]
epi_table("same ladder, big cluster down-volted to p2", DOWNVOLTED)

best = {}
for name, kernel in WORKLOADS.items():
    scored = [
        (
            energy_per_instruction_nj(
                machine.run(kernel, topology, DURATION_S)
            ),
            topology.label,
        )
        for topology in LADDER
    ]
    best[name] = min(scored)
print("\nmost energy-efficient shape per workload:")
for name, (epi, label) in best.items():
    print(f"  {name:22s} -> {label:>12s} ({epi:.2f} nJ/instruction)")
