"""Quickstart: the paper's Figure 2 script, runnable end to end.

Generates ten micro-benchmarks, each an endless loop of 4K load
instructions hitting the three cache levels equally, with registers and
immediates initialized to 0b01010101 and random dependency distances --
then emits each as C-with-inline-asm and runs one on the POWER7-like
machine substrate.

Run:  python examples/quickstart.py
"""

from pathlib import Path

import repro as MP

# Get the architecture object (ISA + micro-architecture definitions,
# both loaded from readable text files).
arch = MP.arch.get_architecture("POWER7")

# Create the micro-benchmark synthesizer and define the pass pipeline.
synth = MP.code.Synthesizer(arch, seed=42, name_prefix="example")
passes = MP.code.passes

# Pass 1: define the program skeleton.
synth.add_pass(passes.EndlessLoopSkeleton(4096))

# Pass 2: define the instruction distribution.
#   2.1: select the loads from the ISA;
#   2.2: select the vector loads (the VSU-datapath loads).
loads = [ins for ins in arch.isa if ins.is_load and not ins.is_prefetch]
loads_vector = [ins for ins in loads if ins.is_vector or ins.width == 128]
synth.add_pass(passes.InstructionDistribution(loads_vector))

# Pass 3: model the memory behavior.  The analytical set-associative
# cache model statically guarantees the requested distribution -- no
# design-space exploration needed.
synth.add_pass(passes.MemoryModel({"L1": 0.33, "L2": 0.33, "L3": 0.34}))

# Passes 4-5: init registers and immediate operands.
synth.add_pass(passes.InitRegisters("pattern", pattern=0b01010101))
synth.add_pass(passes.InitImmediates("pattern", pattern=0b01010101))

# Pass 6: model instruction-level parallelism.
synth.add_pass(passes.DependencyDistance("random"))

# Generate the 10 micro-benchmarks and save them.
out_dir = Path(__file__).parent / "generated"
out_dir.mkdir(exist_ok=True)
benchmarks = []
for index in range(10):
    ubench = synth.synthesize()  # apply the passes
    path = ubench.save(out_dir / f"example-{index}.c")
    benchmarks.append(ubench)
    print(f"emitted {path}")

# Bonus beyond Figure 2: run one of them on the machine substrate and
# confirm the cache model delivered the planned memory mix.
machine = MP.Machine(arch)
config = MP.MachineConfig(cores=4, smt=2)
measurement = machine.run(benchmarks[0].to_kernel(), config)
counters = measurement.thread_counters[0]

ipc = arch.ipc(counters)
total_refs = counters["PM_LD_REF_L1"] + counters["PM_ST_REF_L1"]
for level, counter in [("L2", "PM_DATA_FROM_L2"), ("L3", "PM_DATA_FROM_L3")]:
    share = counters[counter] / total_refs
    print(f"accesses sourced from {level}: {share:.1%} (planned ~33%)")
print(f"per-thread IPC on {config.label}: {ipc:.2f}")
print(f"mean chip power over a 10 s window: {measurement.mean_power:.1f} W")
