"""Campaign-service walkthrough: resident server, dedup, warm serving.

Starts an in-process campaign service (the same code path as
``python -m repro serve``), then drives it the three ways a client
can:

1. ``ServiceClient`` -- raw streamed JSON lines, cell by cell;
2. ``RemoteExecutor`` -- the executor-shaped adapter (bit-identical
   to local execution, asserted);
3. two concurrent clients submitting *overlapping* plans -- the
   single-flight registry measures each distinct cell once, and the
   ``/stats`` counters prove it.

Wire-format negotiation happens underneath all three: the server
advertises ``"wire": [1, 2]`` on ``/health``, the client picks the
highest shared version and ships wire-v2 bodies (each distinct
workload/config pooled once, referenced by digest), and the server's
intern cache rebuilds each digest only on first sight.  Against an
old server the same client falls back to v1 byte-identically; force a
version with ``ServiceClient(url, wire=1)`` or ``REPRO_WIRE``.

Run:  python examples/serve_client.py   (takes a few seconds)
"""

import tempfile
import threading
import time

from repro.exec import (
    ExperimentPlan,
    MeasurementService,
    RemoteExecutor,
    SerialExecutor,
    ServiceClient,
    build_server,
)
from repro.march import get_architecture
from repro.sim import Machine, MachineConfig
from repro.workloads import spec_cpu2006

arch = get_architecture("POWER7")
suite = spec_cpu2006()
configs = [MachineConfig(1, 1), MachineConfig(2, 2), MachineConfig(4, 2)]

with tempfile.TemporaryDirectory() as store_dir:
    # 1. Bring up the service: resident machine, shared store, one
    #    engine lock -- exactly what `python -m repro serve` runs.
    service = MeasurementService(store=store_dir)
    server = build_server(service)  # port 0 = ephemeral
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = f"http://127.0.0.1:{server.server_port}"
    client = ServiceClient(url)
    print(f"service up at {url}: {client.health()}")
    print(f"negotiated wire version: {client.negotiated_wire()}")

    # 2. Stream a small plan line by line.
    plan = ExperimentPlan.cross(suite[:3], configs, duration=2.0)
    print(f"\nsubmitting {plan.describe()}")
    for line in client.submit(plan):
        if "measurement" in line:
            m = line["measurement"]
            print(
                f"  cell {line['cell']} [{line['source']:>8s}] "
                f"{m['workload_name']:>12s} on {m['config']['cores']}-"
                f"{m['config']['smt']}: {m['mean_power']:.1f} W"
            )
        elif line.get("complete"):
            print(
                f"  run {line['run']}: {line['measured']} measured, "
                f"{line['warm']} warm, {line['deduped']} deduped"
            )

    # 3. The executor-shaped client: bit-identical to local execution.
    remote = RemoteExecutor(url)
    served = remote.run(plan)
    local = SerialExecutor(Machine(arch)).run(plan)
    assert served == local, "served results must be bit-identical"
    print("\nRemoteExecutor results == one-shot SerialExecutor: OK")

    # 4. Two concurrent clients, overlapping plans: the shared cells
    #    are measured once (single-flight) or served warm (store).
    big = ExperimentPlan.cross(suite[:4], configs, duration=2.0)
    overlapping = ExperimentPlan.cross(suite[2:6], configs, duration=2.0)
    outputs = {}

    def run_client(name, submitted):
        start = time.perf_counter()
        outputs[name] = RemoteExecutor(url).run(submitted)
        print(
            f"  client {name}: {len(outputs[name])} cells in "
            f"{time.perf_counter() - start:.2f}s"
        )

    threads = [
        threading.Thread(target=run_client, args=("A", big)),
        threading.Thread(target=run_client, args=("B", overlapping)),
    ]
    print("\ntwo concurrent clients, 6 shared cells:")
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    counters = client.stats()["service"]
    print(
        f"service counters: measured={counters['measured_cells']} "
        f"warm={counters['warm_cells']} deduped={counters['dedup_waits']} "
        f"(each distinct cell measured exactly once)"
    )

    # 5. Warm re-query: everything from the store, nothing measured.
    before = counters["measured_cells"]
    RemoteExecutor(url).run(big)
    after = client.stats()["service"]["measured_cells"]
    print(f"warm re-query measured {after - before} cells (expected 0)")

    server.shutdown()
    server.server_close()
    service.close()
