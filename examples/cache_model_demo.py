"""The analytical set-associative cache model vs functional simulation.

Shows section 2.1.3's claim in action: the model *statically* plans an
address stream for any requested hierarchy hit distribution, with no
design-space exploration, and a functional cache simulation (LRU,
inclusive, with a stride prefetcher enabled) confirms the plan on every
mix.

Run:  python examples/cache_model_demo.py
"""

from repro.march import get_architecture
from repro.march.cache_model import SetAssociativeCacheModel
from repro.sim.hierarchy import simulate_hit_distribution

arch = get_architecture("POWER7")
model = SetAssociativeCacheModel.for_architecture(arch)

print("POWER7 hierarchy geometry (address fields, Figure 3b):")
for cache in arch.caches:
    fields = cache.fields
    print(f"  {cache}: offset bits 0-{fields.offset_bits - 1}, "
          f"set bits {fields.offset_bits}-{fields.tag_shift - 1}, "
          f"tag above bit {fields.tag_shift}")

mixes = [
    {"L1": 1.0},
    {"L1": 0.75, "L2": 0.25},
    {"L1": 0.33, "L2": 0.33, "L3": 0.34},
    {"L2": 0.50, "L3": 0.50},
    {"L1": 0.25, "L3": 0.25, "MEM": 0.50},
    {"MEM": 1.0},
]

print("\nRequested mix -> functional-simulation measurement "
      "(1024-access loop, prefetcher ON):")
for weights in mixes:
    plan = model.plan(weights, slot_count=1024, seed=7)
    simulated = simulate_hit_distribution(
        arch.caches, arch.memory, plan.slots, prefetch=True
    )
    requested = ", ".join(
        f"{level}={share:.0%}" for level, share in weights.items()
    )
    measured = ", ".join(
        f"{level}={share:.1%}" for level, share in simulated.items()
        if share > 0.001
    )
    footprint = plan.footprint_bytes(arch.caches[0].line_bytes)
    print(f"  [{requested:>34s}] -> {measured}  "
          f"(footprint {footprint // 1024} KiB)")

print("\nEvery stream lands within rounding of its target: the model "
      "assigns disjoint sets per level,\noverflows the associativity of "
      "the levels above the target, and randomizes tags so the\n"
      "hardware prefetcher cannot convert planned misses into hits.")
