"""Case study C walkthrough: systematic max-power stressmark generation.

The paper's query (c): "How to bound the worst-case (maximum) power
consumption?"  The script bootstraps per-instruction EPI/IPC data,
prunes the design space with the IPC*EPI heuristic, exhaustively
searches the 540-sequence space, and reports the margin over the SPEC
CPU2006 maximum -- the whole Section 6 flow.

Run:  python examples/stressmark_hunt.py   (takes ~1 minute)
"""

from repro.march import get_architecture
from repro.march.bootstrap import Bootstrapper
from repro.sim import Machine
from repro.stressmark import (
    select_candidates,
    spec_power_baseline,
    stressmark_search,
)
from repro.stressmark.report import (
    best_sequence,
    order_spread_analysis,
    summarize_set,
)
from repro.stressmark.search import covering_sequences

arch = get_architecture("POWER7")
machine = Machine(arch)

print("Bootstrapping per-instruction latency/throughput/EPI "
      "(two generated micro-benchmarks per instruction)...")
records = Bootstrapper(arch, machine, loop_size=256).run()

candidates = select_candidates(arch, records)
print(f"IPC*EPI candidates per unit: {candidates}")

print("Measuring the SPEC CPU2006 maximum power (the Figure 9 baseline)...")
baseline = spec_power_baseline(machine)
print(f"SPEC maximum: {baseline:.1f} W")

sequences = covering_sequences(tuple(candidates.values()))
print(f"Exhaustively searching {len(sequences)} sequences x 3 SMT modes...")
results = stressmark_search(machine, sequences, loop_size=384)

summary = summarize_set("MicroProbe", results, baseline)
winner = best_sequence(results)
spread = order_spread_analysis(results, baseline)

print(f"\nBest stressmark: {' '.join(winner)}")
print(f"Max power: {summary.maximum:.3f}x the SPEC maximum "
      f"(+{(summary.maximum - 1) * 100:.1f}%; paper: +10.7%)")
print(f"Set range: min {summary.minimum:.3f} / mean {summary.mean:.3f} / "
      f"max {summary.maximum:.3f}")
print(f"Order-only power spread at identical max IPC: "
      f"{spread.spread_percent:.1f}% over {spread.sequences_at_max_ipc} "
      "orderings (paper: up to 17%)")
