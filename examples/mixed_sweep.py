"""Mixed-placement DVFS sweep: co-run scenarios x configurations x p-states.

The paper's measurement campaigns replicate one micro-benchmark across
every hardware thread at one fixed operating point.  This example opens
both new axes: every named co-run scenario (dissimilar kernels sharing
each core's SMT resources) measured across CMP-SMT configurations and
the standard DVFS ladder, batched through ``Machine.run_many`` so each
kernel's steady-state analysis is shared across the whole sweep.

For every scenario it prints chip power plus the per-thread IPC
contrast between the two co-runners -- the asymmetry that homogeneous
deployments cannot expose (e.g. the high-ILP thread keeping ~95% of
its solo throughput next to a memory-bound co-runner).

Run:  python examples/mixed_sweep.py
"""

from repro.march import get_architecture
from repro.sim import Machine, MachineConfig, standard_pstates
from repro.workloads import mix_scenarios

machine = Machine(get_architecture("POWER7"))

CONFIGS = (MachineConfig(2, 2), MachineConfig(4, 4), MachineConfig(8, 4))
DURATION_S = 1.0

print(f"{'scenario':22s} {'config':9s} {'power_w':>8s} "
      f"{'ipc_a':>6s} {'ipc_b':>6s}")
print("-" * 56)

for config in CONFIGS:
    for p_state in standard_pstates():
        swept = config.with_p_state(p_state)
        scenarios = mix_scenarios(loop_size=256)
        placements = [scenario.placement(swept) for scenario in scenarios]
        # One batched call per operating point: every distinct kernel
        # in the batch is summarized exactly once.
        measurements = machine.run_many(placements, swept, DURATION_S)
        for scenario, measurement in zip(scenarios, measurements):
            ipcs = measurement.thread_ipcs()
            print(
                f"{scenario.name:22s} {swept.label:9s} "
                f"{measurement.mean_power:8.2f} "
                f"{ipcs[0]:6.3f} {ipcs[1]:6.3f}"
            )
    print("-" * 56)

# The headline asymmetry, spelled out on one SMT-4 core.
config = MachineConfig(1, 4)
scenario = mix_scenarios(loop_size=256)[0]  # ilp-vs-memory
mixed = machine.run(scenario.placement(config), config, DURATION_S)
solo = machine.run(scenario.workloads[0], config, DURATION_S)
print(
    f"\n{scenario.name} on one SMT-4 core: the hi-ILP thread commits "
    f"{mixed.thread_ipc(0):.2f} IPC next to memory-bound co-runners, "
    f"vs {solo.thread_ipc(0):.2f} IPC sharing the core with copies of "
    "itself."
)
