"""Execution-engine walkthrough: a parallel, store-backed SPEC sweep.

Demonstrates the plan -> executor -> store dataflow behind every
campaign: declare the cross product once, execute it sharded across
worker processes, persist every cell, then re-run the identical plan
and watch the store serve it with zero machine invocations.

Run:  python examples/engine_sweep.py   (takes a few seconds)
"""

import logging
import tempfile
import time

from repro.exec import ExperimentPlan, ParallelExecutor, ResultStore, SerialExecutor
from repro.march import get_architecture
from repro.sim import Machine
from repro.sim.config import standard_configurations
from repro.workloads import spec_cpu2006

logging.basicConfig(level=logging.INFO, format="%(name)s: %(message)s")

arch = get_architecture("POWER7")
machine = Machine(arch)

# 1. Declare: the full SPEC proxy suite across the paper's 24-config
#    CMP/SMT sweep, one 2-second window each -- 672 measurement cells.
plan = ExperimentPlan.cross(
    spec_cpu2006(),
    standard_configurations(arch.chip.max_cores, arch.chip.smt_modes()),
    duration=2.0,
)
print(f"plan: {plan.describe()}")

with tempfile.TemporaryDirectory() as store_dir:
    store = ResultStore(store_dir)

    # 2. Execute: sharded across 4 worker processes, persisted as it goes.
    start = time.perf_counter()
    cold = ParallelExecutor(machine, workers=4, store=store).run(plan)
    print(
        f"cold parallel run: {len(cold)} measurements in "
        f"{time.perf_counter() - start:.2f}s ({len(store)} cells persisted)"
    )

    # 3. Re-run: the serial executor finds every cell warm -- the
    #    machine is never touched, and the results are bit-identical.
    start = time.perf_counter()
    warm = SerialExecutor(Machine(arch), store=store).run(plan)
    print(
        f"warm serial run:  {len(warm)} measurements in "
        f"{time.perf_counter() - start:.2f}s "
        f"({store.hits} served from the store)"
    )
    assert warm == cold, "store round trip must be bit-identical"

    hottest = max(cold, key=lambda measurement: measurement.mean_power)
    print(
        f"hottest cell: {hottest.workload_name} on "
        f"{hottest.config.label} at {hottest.mean_power:.1f} W"
    )
