"""Case study A walkthrough: train the bottom-up power model and
project an application's power with a per-component breakdown.

This is the paper's query (a): "How to project application-specific
(and if needed, phase-specific) power consumption with component-wise
breakdowns?"  The script trains the four-step SMT/CMP-aware model on
generated micro-benchmarks, validates it on the SPEC CPU2006 proxies,
and prints the phase-resolved projection for a two-phase workload.

Run:  python examples/power_model_walkthrough.py   (takes ~1 minute)
"""

import statistics

from repro.power_model.campaign import ModelingCampaign
from repro.power_model.metrics import paae
from repro.sim import Machine, MachineConfig
from repro.workloads.profiles import ActivityProfile, ProfiledWorkload

machine = Machine()
print("Gathering the Table 2 training measurements and fitting models")
print("(scale=0.3 of the paper's ~580-benchmark suite)...")
result = ModelingCampaign(machine, scale=0.3, loop_size=1024).run()
model = result.bottom_up

print("\nFitted bottom-up model:")
for component, weight in model.weights.items():
    print(f"  {component:4s} weight: {weight * 1e9:6.3f} nJ/event")
print(f"  SMT effect: {model.smt_effect:.2f} W/core,  "
      f"CMP effect: {model.cmp_effect:.2f} W/core,  "
      f"uncore: {model.uncore:.2f} W")

errors = [paae(model, ms) for ms in result.spec_by_config.values()]
print(f"\nSPEC CPU2006 validation: mean PAAE {statistics.fmean(errors):.2f}%"
      f" / max {max(errors):.2f}% across 24 CMP-SMT configurations"
      f" (paper: 2.3% / ~4%)")

# -- phase-specific projection (the "if needed, phase-specific" query) --------
compute_phase = ActivityProfile(
    name="app-phase-compute",
    ipc=1.9,
    unit_mix={"FXU": 0.25, "LSU": 0.40, "VSU": 0.50, "BRU": 0.06, "CRU": 0.02},
    memory_per_insn=0.35,
    locality={"L1": 0.97, "L2": 0.02, "L3": 0.007, "MEM": 0.003},
)
memory_phase = ActivityProfile(
    name="app-phase-memcopy",
    ipc=0.5,
    unit_mix={"FXU": 0.30, "LSU": 0.55, "VSU": 0.02, "BRU": 0.10, "CRU": 0.02},
    memory_per_insn=0.50,
    locality={"L1": 0.70, "L2": 0.10, "L3": 0.08, "MEM": 0.12},
)

config = MachineConfig(cores=4, smt=4)
print(f"\nPhase-specific projection on {config.label} "
      "(component breakdown per phase):")
for phase in (compute_phase, memory_phase):
    measurement = machine.run(ProfiledWorkload(phase), config)
    breakdown = model.breakdown(measurement)
    predicted = sum(breakdown.values())
    parts = ", ".join(
        f"{name}={value:.1f}W" for name, value in breakdown.items()
    )
    print(f"  {phase.name:20s} measured={measurement.mean_power:6.1f} W  "
          f"predicted={predicted:6.1f} W")
    print(f"    {parts}")
