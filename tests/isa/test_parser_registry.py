"""Tests for the ISA definition-file parser and the registry."""

import pytest

from repro.errors import DefinitionError, UnknownInstructionError
from repro.isa import (
    ISA,
    InstructionType,
    branches,
    by_mnemonic,
    load_default_isa,
    loads,
    memory_ops,
    non_branch_non_memory,
    of_type,
    parse_isa_text,
    stores,
    updates,
)

MINIMAL = """
isa TEST
add | int  | 64 | RT:GPR:W RA:GPR:R RB:GPR:R   | - | 31.266 | Add
lwz | load | 32 | RT:GPR:W RA:GPR:R D:DISP16:R | - | 32     | Load word
stw | store| 32 | RS:GPR:R RA:GPR:R D:DISP16:R | - | 36     | Store word
b   | branch | 0 | T:LABEL24:R                 | - | 18     | Branch
"""


class TestParser:
    def test_parses_minimal(self):
        isa = parse_isa_text(MINIMAL)
        assert isa.name == "TEST"
        assert len(isa) == 4
        assert isa.instruction("add").opcode == 31
        assert isa.instruction("add").extended_opcode == 266
        assert isa.instruction("lwz").extended_opcode is None

    def test_comments_and_blanks_ignored(self):
        isa = parse_isa_text("# hi\n\nisa X\n# more\nnop | nop | 0 | - | - | 24 | n\n")
        assert len(isa) == 1

    def test_inline_comment(self):
        isa = parse_isa_text("isa X\nnop | nop | 0 | - | - | 24 | n # trailing\n")
        assert "nop" in isa

    def test_missing_header_rejected(self):
        with pytest.raises(DefinitionError, match="isa <name>"):
            parse_isa_text("add | int | 64 | - | - | - | x")

    def test_empty_file_rejected(self):
        with pytest.raises(DefinitionError, match="empty"):
            parse_isa_text("# only a comment\n")

    def test_wrong_field_count_rejected(self):
        with pytest.raises(DefinitionError, match="7 pipe-separated"):
            parse_isa_text("isa X\nadd | int | 64 | - | -\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(DefinitionError, match="unknown instruction type"):
            parse_isa_text("isa X\nadd | frob | 64 | - | - | - | x\n")

    def test_bad_width_rejected(self):
        with pytest.raises(DefinitionError, match="width"):
            parse_isa_text("isa X\nadd | int | wide | - | - | - | x\n")

    def test_bad_operand_rejected(self):
        with pytest.raises(DefinitionError, match="operand"):
            parse_isa_text("isa X\nadd | int | 64 | RT:BAD:W | - | - | x\n")

    def test_bad_encoding_rejected(self):
        with pytest.raises(DefinitionError, match="bad encoding"):
            parse_isa_text("isa X\nadd | int | 64 | - | - | 3a.b | x\n")

    def test_duplicate_rejected(self):
        text = "isa X\nnop | nop | 0 | - | - | 24 | n\nnop | nop | 0 | - | - | 24 | n\n"
        with pytest.raises(DefinitionError, match="duplicate"):
            parse_isa_text(text)

    def test_error_carries_location(self):
        try:
            parse_isa_text("isa X\nbad line | nope\n", origin="f.isa")
        except DefinitionError as exc:
            assert exc.path == "f.isa"
            assert exc.line_number == 2
        else:
            pytest.fail("expected DefinitionError")


class TestRegistry:
    def test_unknown_lookup_raises(self):
        isa = parse_isa_text(MINIMAL)
        with pytest.raises(UnknownInstructionError):
            isa.instruction("frobnicate")

    def test_add_and_remove(self):
        isa = parse_isa_text(MINIMAL)
        removed = isa.remove("add")
        assert removed.mnemonic == "add"
        assert "add" not in isa
        isa.add(removed)
        assert "add" in isa

    def test_remove_unknown_raises(self):
        isa = parse_isa_text(MINIMAL)
        with pytest.raises(UnknownInstructionError):
            isa.remove("nothere")

    def test_copy_is_independent(self):
        isa = parse_isa_text(MINIMAL)
        clone = isa.copy()
        clone.remove("add")
        assert "add" in isa

    def test_mnemonics_preserve_order(self):
        isa = parse_isa_text(MINIMAL)
        assert isa.mnemonics() == ("add", "lwz", "stw", "b")


class TestQueries:
    @pytest.fixture(scope="class")
    def isa(self):
        return parse_isa_text(MINIMAL)

    def test_loads(self, isa):
        assert [i.mnemonic for i in loads(isa)] == ["lwz"]

    def test_stores(self, isa):
        assert [i.mnemonic for i in stores(isa)] == ["stw"]

    def test_memory_ops(self, isa):
        assert [i.mnemonic for i in memory_ops(isa)] == ["lwz", "stw"]

    def test_branches(self, isa):
        assert [i.mnemonic for i in branches(isa)] == ["b"]

    def test_non_branch_non_memory(self, isa):
        assert [i.mnemonic for i in non_branch_non_memory(isa)] == ["add"]

    def test_of_type(self, isa):
        assert of_type(isa, InstructionType.INTEGER)[0].mnemonic == "add"

    def test_by_mnemonic_preserves_order(self, isa):
        result = by_mnemonic(isa, ["stw", "add"])
        assert [i.mnemonic for i in result] == ["stw", "add"]


class TestDefaultISA:
    @pytest.fixture(scope="class")
    def isa(self):
        return load_default_isa()

    def test_loads_and_is_large(self, isa):
        assert isa.name == "POWER-v2.06B"
        assert len(isa) > 150

    def test_contains_all_table3_instructions(self, isa):
        table3 = [
            "mulldo", "subf", "addic", "lxvw4x", "lvewx", "lbz",
            "xvnmsubmdp", "xvmaddadp", "xstsqrtdp", "add", "nor", "and",
            "ldux", "lwax", "lfsu", "lhaux", "lwaux", "lhau",
            "stxvw4x", "stxsdx", "stfd", "stfsux", "stfdux", "stfdu",
        ]
        for mnemonic in table3:
            assert mnemonic in isa, mnemonic

    def test_contains_section6_instructions(self, isa):
        for mnemonic in ("mullw", "xvmaddadp", "lxvd2x"):
            assert mnemonic in isa

    def test_update_forms_write_base_register(self, isa):
        for ins in updates(isa):
            ra = next(op for op in ins.operands if op.name == "RA")
            assert ra.direction.is_write, ins.mnemonic
            assert ra.direction.is_read, ins.mnemonic

    def test_loads_define_a_target(self, isa):
        for ins in loads(isa):
            if ins.is_prefetch:
                continue
            assert ins.register_writes, ins.mnemonic

    def test_stores_never_define_data_target(self, isa):
        for ins in stores(isa):
            writes = {op.name for op in ins.register_writes}
            # Update forms write RA (address), never the data register.
            assert writes <= {"RA"}, ins.mnemonic

    def test_indexed_flag_matches_rb_presence(self, isa):
        for ins in memory_ops(isa):
            has_rb = any(op.name == "RB" for op in ins.operands)
            assert has_rb == ins.is_indexed, ins.mnemonic
