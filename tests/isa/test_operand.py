"""Tests for the operand model and operand-spec parsing."""

import pytest

from repro.isa.operand import (
    Operand,
    OperandDirection,
    OperandKind,
    parse_operand,
)


class TestOperandKind:
    def test_register_kinds_are_registers(self):
        for kind in (OperandKind.GPR, OperandKind.FPR, OperandKind.VR,
                     OperandKind.VSR, OperandKind.CR, OperandKind.SPR):
            assert kind.is_register

    def test_immediate_kinds_are_not_registers(self):
        for kind in (OperandKind.IMM, OperandKind.DISP, OperandKind.LABEL):
            assert not kind.is_register

    def test_register_widths(self):
        assert OperandKind.GPR.register_width == 64
        assert OperandKind.VSR.register_width == 128
        assert OperandKind.CR.register_width == 4
        assert OperandKind.IMM.register_width == 0


class TestOperandDirection:
    def test_read_write_is_both(self):
        assert OperandDirection.READ_WRITE.is_read
        assert OperandDirection.READ_WRITE.is_write

    def test_read_is_not_write(self):
        assert OperandDirection.READ.is_read
        assert not OperandDirection.READ.is_write

    def test_write_is_not_read(self):
        assert OperandDirection.WRITE.is_write
        assert not OperandDirection.WRITE.is_read


class TestParseOperand:
    def test_gpr_write(self):
        op = parse_operand("RT:GPR:W")
        assert op == Operand("RT", OperandKind.GPR, OperandDirection.WRITE, 64)

    def test_immediate_with_width(self):
        op = parse_operand("SI:IMM16:R")
        assert op.kind is OperandKind.IMM
        assert op.width == 16
        assert op.is_immediate

    def test_displacement(self):
        op = parse_operand("D:DISP16:R")
        assert op.kind is OperandKind.DISP
        assert op.is_immediate

    def test_read_write_register(self):
        op = parse_operand("RA:GPR:RW")
        assert op.direction is OperandDirection.READ_WRITE

    def test_vsr_width_is_128(self):
        assert parse_operand("XT:VSR:W").width == 128

    def test_label_needs_width(self):
        op = parse_operand("T:LABEL24:R")
        assert op.kind is OperandKind.LABEL
        assert op.width == 24

    def test_rejects_wrong_field_count(self):
        with pytest.raises(ValueError, match="3 fields"):
            parse_operand("RT:GPR")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown operand kind"):
            parse_operand("RT:XYZ:W")

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            parse_operand("RT:GPR:X")

    def test_rejects_register_width_suffix(self):
        with pytest.raises(ValueError, match="no width suffix"):
            parse_operand("RT:GPR32:W")

    def test_rejects_immediate_without_width(self):
        with pytest.raises(ValueError, match="width suffix"):
            parse_operand("SI:IMM:R")

    def test_str_round_trips_through_parse(self):
        for spec in ("RT:GPR:W", "SI:IMM16:R", "RA:GPR:RW", "XB:VSR:R"):
            op = parse_operand(spec)
            assert parse_operand(str(op)) == op
