"""Tests for InstructionDef semantics."""

import pytest

from repro.isa.instruction import InstructionDef, InstructionType
from repro.isa.operand import OperandKind, parse_operand


def make(mnemonic="add", itype=InstructionType.INTEGER, width=64,
         operands=("RT:GPR:W", "RA:GPR:R", "RB:GPR:R"), flags=()):
    return InstructionDef(
        mnemonic=mnemonic,
        itype=itype,
        width=width,
        operands=tuple(parse_operand(spec) for spec in operands),
        flags=frozenset(flags),
    )


class TestTypePredicates:
    def test_integer(self):
        ins = make()
        assert ins.is_integer
        assert not ins.is_memory
        assert not ins.is_branch

    def test_load_is_memory(self):
        ins = make("lwz", InstructionType.LOAD,
                   operands=("RT:GPR:W", "RA:GPR:R", "D:DISP16:R"))
        assert ins.is_load
        assert ins.is_memory
        assert not ins.is_store

    def test_store_is_memory(self):
        ins = make("stw", InstructionType.STORE,
                   operands=("RS:GPR:R", "RA:GPR:R", "D:DISP16:R"))
        assert ins.is_store
        assert ins.is_memory

    def test_vector(self):
        ins = make("xvadddp", InstructionType.VECTOR, 128,
                   ("XT:VSR:W", "XA:VSR:R", "XB:VSR:R"))
        assert ins.is_vector


class TestFlags:
    def test_update_form(self):
        ins = make("ldu", InstructionType.LOAD,
                   operands=("RT:GPR:W", "RA:GPR:RW", "D:DISP16:R"),
                   flags=("update",))
        assert ins.is_update_form

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown flags"):
            make(flags=("sparkly",))

    def test_prefetch(self):
        ins = make("dcbt", InstructionType.LOAD, 0,
                   ("RA:GPR:R", "RB:GPR:R"), flags=("indexed", "prefetch"))
        assert ins.is_prefetch
        assert ins.is_indexed


class TestOperandViews:
    def test_register_reads_and_writes(self):
        ins = make()
        assert [op.name for op in ins.register_writes] == ["RT"]
        assert [op.name for op in ins.register_reads] == ["RA", "RB"]

    def test_read_write_operand_in_both_views(self):
        ins = make("xvmaddadp", InstructionType.VECTOR, 128,
                   ("XT:VSR:RW", "XA:VSR:R", "XB:VSR:R"))
        assert "XT" in [op.name for op in ins.register_writes]
        assert "XT" in [op.name for op in ins.register_reads]

    def test_immediates(self):
        ins = make("addi", operands=("RT:GPR:W", "RA:GPR:R", "SI:IMM16:R"))
        assert ins.has_immediate
        assert [op.name for op in ins.immediates] == ["SI"]

    def test_memory_operands_dform(self):
        ins = make("lwz", InstructionType.LOAD,
                   operands=("RT:GPR:W", "RA:GPR:R", "D:DISP16:R"))
        assert [op.name for op in ins.memory_operands] == ["RA", "D"]

    def test_memory_operands_xform(self):
        ins = make("lwzx", InstructionType.LOAD,
                   operands=("RT:GPR:W", "RA:GPR:R", "RB:GPR:R"),
                   flags=("indexed",))
        assert [op.name for op in ins.memory_operands] == ["RA", "RB"]

    def test_non_memory_has_no_memory_operands(self):
        assert make().memory_operands == ()

    def test_target_kind(self):
        assert make().target_kind is OperandKind.GPR
        ins = make("stw", InstructionType.STORE,
                   operands=("RS:GPR:R", "RA:GPR:R", "D:DISP16:R"))
        assert ins.target_kind is None

    def test_format_line(self):
        assert make().format_line() == "add RT, RA, RB"
