"""Tests for the design-space exploration module."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse import (
    CachingEvaluator,
    DesignSpace,
    Dimension,
    ExhaustiveSearch,
    GeneticSearch,
    GuidedSearch,
    SearchResult,
)
from repro.dse.genetic import GAParameters
from repro.errors import SearchError


def small_space():
    return DesignSpace([
        Dimension("x", (0, 1, 2, 3)),
        Dimension("y", (0, 1, 2, 3)),
    ])


def score(point):
    # Peak at (3, 2).
    return -((point["x"] - 3) ** 2) - (point["y"] - 2) ** 2


class TestDesignSpace:
    def test_size_and_enumeration(self):
        space = small_space()
        assert space.size == 16
        points = list(space.points())
        assert len(points) == 16
        assert len({space.key(p) for p in points}) == 16

    def test_from_slots(self):
        space = DesignSpace.from_slots(6, ("a", "b", "c"))
        assert space.size == 3 ** 6
        assert space.dimensions[0].name == "slot0"

    def test_validation(self):
        space = small_space()
        with pytest.raises(SearchError):
            space.validate({"x": 0})
        with pytest.raises(SearchError):
            space.validate({"x": 9, "y": 0})
        space.validate({"x": 1, "y": 2})

    def test_duplicate_dimension_values_rejected(self):
        with pytest.raises(SearchError):
            Dimension("x", (1, 1))

    def test_empty_rejected(self):
        with pytest.raises(SearchError):
            DesignSpace([])


class TestExhaustive:
    def test_finds_optimum(self):
        result = ExhaustiveSearch(small_space(), score).run()
        assert result.count == 16
        assert result.best.point == {"x": 3, "y": 2}
        assert result.best.score == 0

    def test_limit_guard(self):
        space = DesignSpace.from_slots(10, tuple(range(10)))
        with pytest.raises(SearchError, match="limit"):
            ExhaustiveSearch(space, score, limit=1000).run()


class TestGenetic:
    def test_converges_near_optimum(self):
        search = GeneticSearch(
            small_space(), score,
            GAParameters(population=10, generations=8), seed=3,
        )
        result = search.run()
        assert result.best.score >= -2  # near the peak
        convergence = result.convergence()
        assert convergence == sorted(convergence)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_yields_valid_points(self, seed):
        space = small_space()
        result = GeneticSearch(
            space, score, GAParameters(population=6, generations=3),
            seed=seed,
        ).run()
        for evaluation in result.evaluations:
            space.validate(evaluation.point)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GAParameters(population=1)
        with pytest.raises(ValueError):
            GAParameters(mutation_rate=2.0)


class TestGuided:
    def test_candidate_stream(self):
        space = small_space()

        def generator(arch, space_):
            # "Query the architecture" stand-in: only even x.
            for x in (0, 2):
                for y in (1, 2):
                    yield {"x": x, "y": y}

        result = GuidedSearch(space, score, arch=None, generator=generator).run()
        assert result.count == 4
        assert result.best.point == {"x": 2, "y": 2}

    def test_empty_generator_rejected(self):
        search = GuidedSearch(
            small_space(), score, arch=None, generator=lambda a, s: iter(())
        )
        with pytest.raises(SearchError):
            search.run()

    def test_invalid_candidate_rejected(self):
        search = GuidedSearch(
            small_space(), score, arch=None,
            generator=lambda a, s: iter([{"x": 99, "y": 0}]),
        )
        with pytest.raises(SearchError):
            search.run()


class TestCachingAndResults:
    def test_cache_avoids_reevaluation(self):
        calls = []

        def expensive(point):
            calls.append(point)
            return score(point)

        space = small_space()
        cached = CachingEvaluator(expensive, space)
        point = {"x": 1, "y": 1}
        assert cached(point) == cached(point)
        assert len(calls) == 1
        assert cached.unique_evaluations == 1

    def test_result_top_and_worst(self):
        result = SearchResult()
        for value in (3, 1, 2):
            result.record({"v": value}, value)
        assert [e.score for e in result.top(2)] == [3, 2]
        assert result.worst.score == 1

    def test_empty_result_raises(self):
        with pytest.raises(SearchError):
            SearchResult().best
