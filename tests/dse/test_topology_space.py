"""Topology DSE: the chip shape as the search variable."""

import pytest

from repro.dse import (
    CachingEvaluator,
    ExhaustiveSearch,
    GeneticSearch,
    TopologyEvaluator,
    efficiency_objective,
    energy_per_instruction_nj,
    epi_objective,
    throughput_objective,
    topology_from_point,
    topology_space,
)
from repro.errors import SearchError
from repro.sim import MachineConfig
from repro.workloads.mixes import hi_ilp_kernel, memory_bound_kernel

_DURATION = 2.0


@pytest.fixture(scope="module")
def small_space():
    return topology_space(core_budget=4, step=2, p_states=("nominal", "p2"))


class TestSpace:
    def test_dimensions_and_size(self, small_space):
        names = [dimension.name for dimension in small_space.dimensions]
        assert names == ["ratio", "big_pstate", "little_pstate", "smt"]
        # 3 ratios x 2 p-states x 2 p-states x 1 smt
        assert small_space.size == 12

    def test_point_to_topology(self):
        topology = topology_from_point(
            {
                "ratio": (2, 2),
                "big_pstate": "p2",
                "little_pstate": "nominal",
                "smt": 2,
            }
        )
        assert topology.label == "2big-2@p2+2little-2"

    def test_empty_clusters_dropped(self):
        topology = topology_from_point(
            {
                "ratio": (4, 0),
                "big_pstate": "nominal",
                "little_pstate": "p2",
                "smt": 1,
            }
        )
        assert topology.label == "4big"
        with pytest.raises(SearchError):
            topology_from_point(
                {
                    "ratio": (0, 0),
                    "big_pstate": "nominal",
                    "little_pstate": "nominal",
                    "smt": 1,
                }
            )


class TestObjectives:
    def test_counter_only_epi(self, machine):
        measurement = machine.run(
            hi_ilp_kernel(64), MachineConfig(2, 1), _DURATION
        )
        epi = energy_per_instruction_nj(measurement)
        assert epi > 0
        assert epi_objective(measurement) == -epi
        assert efficiency_objective(measurement) > 0
        assert throughput_objective(measurement) > 0


class TestTopologyEvaluator:
    def test_exhaustive_search_picks_shape_per_workload(
        self, machine, small_space
    ):
        def best_shape(workload):
            evaluator = CachingEvaluator(
                TopologyEvaluator(
                    workload,
                    machine,
                    objective=epi_objective,
                    duration=_DURATION,
                ),
                small_space,
            )
            result = ExhaustiveSearch(small_space, evaluator).run()
            return topology_from_point(result.best.point).label

        # The energy-efficiency objective resolves the big-vs-little
        # question differently per workload class: wide pipes pay off
        # for compute, the low-power cluster wins once memory stalls
        # dominate.
        assert best_shape(hi_ilp_kernel(64)) == "4big"
        assert best_shape(memory_bound_kernel(64)) == "4little"

    def test_genetic_search_runs(self, machine, small_space):
        evaluator = CachingEvaluator(
            TopologyEvaluator(
                hi_ilp_kernel(64),
                machine,
                objective=efficiency_objective,
                duration=_DURATION,
            ),
            small_space,
        )
        from repro.dse.genetic import GAParameters

        result = GeneticSearch(
            small_space,
            evaluator,
            parameters=GAParameters(population=6, generations=3),
            seed=7,
        ).run()
        assert result.best.score > 0

    def test_cache_context_distinguishes_workloads(self, machine, small_space):
        point = next(iter(small_space))
        scores = []
        for workload in (hi_ilp_kernel(64), memory_bound_kernel(64)):
            evaluator = CachingEvaluator(
                TopologyEvaluator(
                    workload, machine, objective=epi_objective,
                    duration=_DURATION,
                ),
                small_space,
            )
            scores.append(evaluator(point))
        assert scores[0] != scores[1]
