"""Regression tests for evaluator caching across measurement contexts.

One ``CachingEvaluator`` instance is routinely reused across the sweep
(`for config in configs: evaluator.config = config; search.run()`);
its keys must therefore carry the measurement context -- configuration
*and* p-state -- or the second configuration is served the first one's
scores.  These tests pin that contract, plus the mix objectives the
placement searches use.
"""

import pytest

from repro.dse import (
    CachingEvaluator,
    DesignSpace,
    Dimension,
    MeasurementEvaluator,
    epi_spread_objective,
    ipc_spread_objective,
)
from repro.sim import MachineConfig, Placement, get_pstate


@pytest.fixture
def space():
    return DesignSpace([Dimension("mnemonic", ("add", "xvmaddadp"))])


@pytest.fixture
def evaluator(machine, space, small_kernel_factory):
    return MeasurementEvaluator(
        builder=lambda point: small_kernel_factory(point["mnemonic"]),
        machine=machine,
        config=MachineConfig(1, 1),
        duration=1.0,
    )


class TestCacheContext:
    def test_config_change_invalidates(self, evaluator, space):
        caching = CachingEvaluator(evaluator, space)
        point = {"mnemonic": "add"}
        small = caching(point)
        assert caching(point) == small
        assert evaluator.measurements == 1

        evaluator.config = MachineConfig(8, 4)
        big = caching(point)
        # A fresh measurement ran, and an 8-core SMT-4 deployment draws
        # far more power than the single-thread one.
        assert evaluator.measurements == 2
        assert big > small + 50.0
        assert caching.unique_evaluations == 2

    def test_p_state_change_invalidates(self, evaluator, space):
        caching = CachingEvaluator(evaluator, space)
        evaluator.config = MachineConfig(8, 2)
        point = {"mnemonic": "xvmaddadp"}
        nominal = caching(point)
        evaluator.config = evaluator.config.with_p_state(get_pstate("p3"))
        throttled = caching(point)
        assert evaluator.measurements == 2
        assert throttled < nominal

    def test_batch_path_respects_context(self, evaluator, space):
        caching = CachingEvaluator(evaluator, space)
        points = list(space.points())
        first = caching.evaluate_many(points)
        assert caching.evaluate_many(points) == first
        assert evaluator.measurements == len(points)
        evaluator.config = MachineConfig(4, 2)
        second = caching.evaluate_many(points)
        assert evaluator.measurements == 2 * len(points)
        assert all(b > a for a, b in zip(first, second))

    def test_context_free_evaluator_still_caches(self, space):
        calls = []

        def score(point):
            calls.append(point)
            return float(len(point["mnemonic"]))

        caching = CachingEvaluator(score, space)
        point = {"mnemonic": "add"}
        assert caching(point) == caching(point)
        assert len(calls) == 1


class TestMixObjectives:
    def test_ipc_spread_separates_mixes_from_homogeneous(
        self, machine, small_kernel_factory
    ):
        config = MachineConfig(1, 2)
        compute = small_kernel_factory("addic", count=64)
        stalled = small_kernel_factory("ld", count=64, level="MEM")
        homogeneous = machine.run(
            Placement.homogeneous(compute, config), config
        )
        mixed = machine.run(
            Placement("spread-mix", ((compute, stalled),)), config
        )
        assert ipc_spread_objective(homogeneous) == pytest.approx(0.0)
        assert ipc_spread_objective(mixed) > 0.5

    def test_epi_spread_positive_for_asymmetric_mix(
        self, machine, small_kernel_factory
    ):
        config = MachineConfig(1, 2)
        mixed = machine.run(
            Placement(
                "epi-mix",
                (
                    (
                        small_kernel_factory("addic", count=64),
                        small_kernel_factory("ld", count=64, level="MEM"),
                    ),
                ),
            ),
            config,
        )
        assert epi_spread_objective(mixed) > 0.0
