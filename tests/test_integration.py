"""Integration tests: the paper's case studies end to end (small scale).

These are the load-bearing checks that the three case studies reproduce
their headline shapes; the benchmark harness runs the same flows at
larger scale and prints the full tables.
"""

import statistics

import pytest

from repro.power_model.campaign import ModelingCampaign
from repro.power_model.metrics import paae
from repro.sim import MachineConfig


@pytest.fixture(scope="module")
def arch(power7_arch):
    return power7_arch


@pytest.fixture(scope="module")
def campaign_result(machine):
    return ModelingCampaign(machine, scale=0.15, loop_size=512).run()


class TestCaseStudyA:
    """Bottom-up power model (section 4)."""

    def test_bu_model_accuracy_on_spec(self, campaign_result):
        model = campaign_result.bottom_up
        errors = [
            paae(model, measurements)
            for measurements in campaign_result.spec_by_config.values()
        ]
        assert statistics.fmean(errors) < 4.0
        assert max(errors) < 8.0

    def test_bu_beats_workload_trained_models(self, campaign_result):
        def mean_paae(model):
            return statistics.fmean(
                paae(model, ms)
                for ms in campaign_result.spec_by_config.values()
            )

        bu = mean_paae(campaign_result.bottom_up)
        assert bu <= mean_paae(campaign_result.top_down["TD_Random"])

    def test_weights_are_physical(self, campaign_result):
        weights = campaign_result.bottom_up.weights
        # Energies ordered by structure size: L1 < L2 < L3 < MEM.
        assert weights["L1"] < weights["L2"] < weights["L3"] < weights["MEM"]
        assert all(value >= 0 for value in weights.values())

    def test_breakdown_sums_to_prediction(self, campaign_result):
        model = campaign_result.bottom_up
        config = MachineConfig(4, 4)
        measurement = campaign_result.spec_by_config[config][0]
        breakdown = model.breakdown(measurement)
        assert sum(breakdown.values()) == pytest.approx(
            model.predict(measurement)
        )

    def test_smt_effect_small(self, campaign_result):
        assert 0.0 <= campaign_result.bottom_up.smt_effect < 2.0


class TestCaseStudyB:
    """EPI taxonomy (section 5)."""

    def test_taxonomy_reproduces_table3_orderings(self, arch, bootstrap_records):
        from repro.epi import build_taxonomy
        taxonomy = build_taxonomy(arch, bootstrap_records)
        epi = {
            entry.mnemonic: entry.epi_nj
            for entries in taxonomy.values()
            for entry in entries
        }
        assert epi["addic"] < epi["subf"] < epi["mulldo"]
        assert epi["and"] < epi["nor"] < epi["add"]
        assert epi["xstsqrtdp"] < epi["xvmaddadp"] < epi["xvnmsubmdp"]
        assert epi["stfd"] < epi["stxsdx"] < epi["stxvw4x"]

    def test_bootstrap_derives_units_and_latency(self, arch, bootstrap_records):
        assert set(bootstrap_records["lhaux"].units) == {"LSU", "FXU"}
        assert bootstrap_records["fadd"].latency == pytest.approx(6.0, rel=0.05)
        assert bootstrap_records["add"].throughput_ipc == pytest.approx(
            3.5, rel=0.05
        )

    def test_bootstrap_writes_back(self, arch, bootstrap_records):
        assert arch.props("xvmaddadp").epi is not None


class TestCaseStudyC:
    """Max-power stressmark (section 6)."""

    def test_candidates_match_paper(self, arch, bootstrap_records):
        from repro.stressmark import select_candidates
        assert select_candidates(arch, bootstrap_records) == {
            "FXU": "mulldo", "LSU": "lxvw4x", "VSU": "xvnmsubmdp",
        }

    def test_stressmark_beats_spec_max(self, machine, arch, bootstrap_records):
        from repro.stressmark import select_candidates, stressmark_search
        from repro.stressmark.search import build_stressmark
        from repro.workloads import spec_cpu2006

        candidates = select_candidates(arch, bootstrap_records)
        sequence = tuple(candidates.values()) * 2
        results = stressmark_search(machine, [sequence], loop_size=192)
        best = max(power for _, _, power, _ in results)
        spec_max = max(
            machine.run(w, MachineConfig(8, smt)).mean_power
            for w in spec_cpu2006() for smt in (1, 2, 4)
        )
        assert best > spec_max

    def test_order_changes_power_at_same_ipc(self, machine, arch):
        from repro.stressmark import stressmark_search
        blocked = ("mullw", "mullw", "xvmaddadp", "xvmaddadp", "lxvd2x", "lxvd2x")
        interleaved = ("mullw", "xvmaddadp", "lxvd2x") * 2
        rows = stressmark_search(
            machine, [blocked, interleaved], smt_modes=(1,), loop_size=192
        )
        by_seq = {row[0]: row for row in rows}
        assert by_seq[interleaved][3] == pytest.approx(
            by_seq[blocked][3], rel=0.01
        )  # same IPC
        assert by_seq[interleaved][2] > by_seq[blocked][2]  # more power


class TestFeatureMatrix:
    """Table 1: the framework provides every claimed feature."""

    def test_isa_queries(self, arch):
        assert any(ins.is_load for ins in arch.isa)
        assert arch.isa.instruction("lwz").width == 32  # operand length

    def test_march_queries(self, arch):
        assert arch.stresses("xvmaddadp", "VSU")  # functional unit
        assert arch.props("fadd").latency > 0  # latency
        assert arch.props("fadd").inv_throughput > 0  # throughput

    def test_epi_queries_after_bootstrap(self, arch, bootstrap_records):
        assert arch.props("mulldo").epi is not None  # EPI
        assert arch.props("mulldo").avg_power is not None  # avg power

    def test_cache_model(self, arch):
        from repro.march.cache_model import SetAssociativeCacheModel
        model = SetAssociativeCacheModel.for_architecture(arch)
        assert model.plan({"L2": 1.0}, 64).predicted["L2"] == 1.0

    def test_code_generation_passes(self):
        from repro.core import passes
        for name in ("EndlessLoopSkeleton", "InstructionDistribution",
                      "MemoryModel", "BranchBehavior", "DependencyDistance",
                      "InitRegisters", "InitImmediates", "SequenceOrder"):
            assert hasattr(passes, name)

    def test_integrated_dse(self):
        from repro.dse import ExhaustiveSearch, GeneticSearch, GuidedSearch
        assert ExhaustiveSearch and GeneticSearch and GuidedSearch
