"""Big.LITTLE affinity mixes: layout shape and lookup."""

import pytest

from repro.sim import parse_topology
from repro.workloads.mixes import (
    biglittle_mixes,
    get_biglittle_mix,
)


class TestAffinityMixes:
    def test_named_scenarios(self):
        names = [mix.name for mix in biglittle_mixes()]
        assert names == [
            "compute-on-big",
            "vector-on-big",
            "inverted-affinity",
        ]
        assert get_biglittle_mix("compute-on-big").name == "compute-on-big"
        with pytest.raises(KeyError):
            get_biglittle_mix("nope")

    def test_placement_layout(self):
        topology = parse_topology("2big-2+3little")
        mix = get_biglittle_mix("compute-on-big", loop_size=64)
        placement = mix.placement(topology)
        assert placement.cores == topology.cores
        # Big cores carry the big workload on both SMT slots.
        assert placement.core_groups[0] == (mix.big_workload,) * 2
        assert placement.core_groups[1] == (mix.big_workload,) * 2
        # Little cores are SMT-1 and carry the little workload.
        for group in placement.core_groups[2:]:
            assert group == (mix.little_workload,)
        placement.validate_against(topology)

    def test_roles_follow_core_class_not_position(self):
        topology = parse_topology("2little+2big")
        mix = get_biglittle_mix("compute-on-big", loop_size=64)
        placement = mix.placement(topology)
        assert placement.core_groups[0] == (mix.little_workload,)
        assert placement.core_groups[-1] == (mix.big_workload,)

    def test_explicit_base_class_spelling_counts_as_big(self):
        # A big cluster written as core_class="POWER7" (instead of the
        # base-class None) must still receive the big workload.
        topology = parse_topology(
            "2big+2little",
            core_classes={"big": "POWER7", "little": "POWER7_ECO"},
        )
        mix = get_biglittle_mix("compute-on-big", loop_size=64)
        placement = mix.placement(topology)
        assert placement.core_groups[0] == (mix.big_workload,)
        assert placement.core_groups[-1] == (mix.little_workload,)
