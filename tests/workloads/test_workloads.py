"""Tests for SPEC proxies, extreme cases, DAXPY and the random policy."""

import pytest

from repro.sim import MachineConfig, get_pstate
from repro.workloads import (
    RandomBenchmarkPolicy,
    daxpy_kernels,
    extreme_kernels,
    get_mix,
    mix_scenarios,
    spec_cpu2006,
)
from repro.workloads.profiles import ActivityProfile, ProfiledWorkload
from repro.workloads.spec import SPEC_NAMES, spec_profile


@pytest.fixture(scope="module")
def arch(power7_arch):
    return power7_arch


class TestMixScenarios:
    def test_named_scenarios_stable(self):
        names = [scenario.name for scenario in mix_scenarios(64)]
        assert names == [
            "ilp-vs-memory", "vector-vs-scalar", "antagonist-lsu",
            "chain-vs-throughput",
        ]
        with pytest.raises(KeyError, match="unknown mix"):
            get_mix("no-such-mix")

    def test_mix_kernels_honour_period_contract(self):
        for scenario in mix_scenarios(48):
            for kernel in scenario.workloads:
                kernel.validate_period()

    def test_scenarios_measure_through_run_many(self, machine):
        config = MachineConfig(2, 2)
        placements = [
            scenario.placement(config) for scenario in mix_scenarios(64)
        ]
        measurements = machine.run_many(placements, config, duration=1.0)
        for scenario, measurement in zip(mix_scenarios(64), measurements):
            assert measurement.workload_name == scenario.name
            assert measurement.is_heterogeneous
            assert measurement.mean_power > 0

    def test_scenarios_measure_at_non_nominal_p_state(self, machine):
        config = MachineConfig(2, 2)
        throttled = config.with_p_state(get_pstate("p3"))
        scenario = get_mix("ilp-vs-memory", 64)
        nominal = machine.run(scenario.placement(config), config)
        slow = machine.run(scenario.placement(throttled), throttled)
        assert slow.mean_power < nominal.mean_power


class TestSpecSuite:
    def test_has_28_benchmarks_in_paper_order(self):
        suite = spec_cpu2006()
        assert len(suite) == 28
        assert [w.name for w in suite] == list(SPEC_NAMES)

    def test_profiles_are_diverse(self):
        ipcs = [spec_profile(name).ipc for name in SPEC_NAMES]
        assert min(ipcs) < 0.6
        assert max(ipcs) > 2.0

    def test_memory_bound_benchmarks_touch_memory(self):
        for name in ("mcf", "lbm", "milc"):
            profile = spec_profile(name)
            assert profile.locality["MEM"] >= 0.05

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            spec_profile("doom3")

    def test_runs_on_machine(self, machine, arch):
        workload = spec_cpu2006()[0]
        measurement = machine.run(workload, MachineConfig(2, 4))
        assert measurement.threads == 8
        ipc = arch.ipc(measurement.thread_counters[0])
        expected = spec_profile("perlbench").thread_ipc(4)
        assert ipc == pytest.approx(expected, rel=0.02)

    def test_smt_scaling_reduces_per_thread_ipc(self):
        profile = spec_profile("gcc")
        assert profile.thread_ipc(4) < profile.thread_ipc(2) < profile.thread_ipc(1)

    def test_energy_bias_deterministic(self):
        a = ProfiledWorkload(spec_profile("mcf"))
        b = ProfiledWorkload(spec_profile("mcf"))
        assert a._bias == b._bias

    def test_profile_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ActivityProfile(
                name="bad", ipc=1.0, unit_mix={}, memory_per_insn=0.1,
                locality={"L1": 0.5},
            )


class TestExtremeCases:
    def test_all_six_cases(self, arch):
        kernels = extreme_kernels(arch, loop_size=128)
        assert len(kernels) == 6

    def test_high_vs_low_ipc(self, machine, arch):
        kernels = extreme_kernels(arch, loop_size=128)
        config = MachineConfig(1, 1)

        def ipc(name):
            counters = machine.run(kernels[name], config).thread_counters[0]
            return arch.ipc(counters)

        assert ipc("FXU High") > 5 * ipc("FXU Low")
        assert ipc("VSU High") > 5 * ipc("VSU Low")

    def test_memory_case_misses_everywhere(self, machine, arch):
        kernels = extreme_kernels(arch, loop_size=256)
        counters = machine.run(
            kernels["Main memory"], MachineConfig(1, 1)
        ).thread_counters[0]
        refs = counters["PM_LD_REF_L1"] + counters["PM_ST_REF_L1"]
        assert counters["PM_DATA_FROM_LMEM"] == pytest.approx(refs, rel=0.01)

    def test_unknown_case_raises(self, arch):
        from repro.workloads.extreme import build_extreme_kernel
        with pytest.raises(KeyError):
            build_extreme_kernel("GPU High", arch)


class TestDaxpy:
    def test_family(self, arch):
        kernels = daxpy_kernels(arch, loop_size=128)
        assert len(kernels) == 4
        for kernel in kernels:
            counts = kernel.mnemonic_counts()
            assert counts["lfd"] > counts["stfd"]
            assert "fmadd" in counts

    def test_l1_resident(self, machine, arch):
        kernel = daxpy_kernels(arch, loop_size=256)[0]
        counters = machine.run(kernel, MachineConfig(1, 1)).thread_counters[0]
        assert counters["PM_DATA_FROM_L2"] == 0
        assert counters["PM_DATA_FROM_LMEM"] == 0

    def test_unroll_never_hurts_ipc(self, machine, arch):
        """Longer dependency distances expose at least as much ILP;
        once the unit bound dominates, IPC saturates."""
        config = MachineConfig(1, 1)
        tight = daxpy_kernels(arch, unrolls=(1,), loop_size=256)[0]
        unrolled = daxpy_kernels(arch, unrolls=(8,), loop_size=256)[0]
        ipc_tight = arch.ipc(machine.run(tight, config).thread_counters[0])
        ipc_unrolled = arch.ipc(machine.run(unrolled, config).thread_counters[0])
        assert ipc_unrolled >= ipc_tight * 0.99


class TestRandomPolicy:
    def test_builds_requested_count(self, arch):
        kernels = RandomBenchmarkPolicy(arch, loop_size=256, seed=1).build(15)
        assert len(kernels) == 15
        assert len({k.digest() for k in kernels}) == 15

    def test_deterministic(self, arch):
        a = RandomBenchmarkPolicy(arch, loop_size=128, seed=5).build(4)
        b = RandomBenchmarkPolicy(arch, loop_size=128, seed=5).build(4)
        assert [k.digest() for k in a] == [k.digest() for k in b]

    def test_all_run_on_machine(self, machine, arch):
        for kernel in RandomBenchmarkPolicy(arch, loop_size=256, seed=2).build(10):
            measurement = machine.run(kernel, MachineConfig(1, 2))
            assert measurement.mean_power > 0
