"""Per-cluster model fitting over a heterogeneous topology."""

import pytest

from repro.power_model.campaign import (
    HeterogeneousCampaign,
    HeterogeneousCampaignResult,
)
from repro.sim import Machine, parse_topology
from repro.workloads.mixes import hi_ilp_kernel, memory_bound_kernel

_DURATION = 1.0


@pytest.fixture(scope="module")
def report(machine):
    campaign = HeterogeneousCampaign(
        machine,
        parse_topology("2big-2+2little"),
        scale=0.05,
        loop_size=128,
        duration=_DURATION,
    )
    return campaign.run()


class TestHeterogeneousCampaign:
    def test_one_campaign_per_core_class(self, report):
        assert isinstance(report, HeterogeneousCampaignResult)
        assert set(report.per_class) == {None, "POWER7_ECO"}
        big = report.per_class[None]
        little = report.per_class["POWER7_ECO"]
        assert big.bottom_up is not little.bottom_up
        # The eco class supports SMT-2 at most; its validation sweep
        # covers only the modes its chip can run.
        assert max(c.smt for c in little.configs) == 2
        assert max(c.smt for c in big.configs) == 4

    def test_predict_combines_cluster_segments(self, report, machine):
        topology = report.topology
        for kernel in (hi_ilp_kernel(64), memory_bound_kernel(64)):
            measurement = machine.run(kernel, topology, _DURATION)
            predicted = report.predict(measurement)
            error = abs(predicted - measurement.mean_power)
            assert error / measurement.mean_power < 0.25

    def test_base_class_reuses_machine_arch(self, machine):
        campaign = HeterogeneousCampaign(
            machine,
            parse_topology("1big+1little"),
            scale=0.02,
            loop_size=128,
            duration=_DURATION,
        )
        # The base-class campaign must share the caller's machine so
        # bootstrap write-backs and warm caches carry over.
        assert campaign.machine is machine
