"""Tests for linear regression helpers, training suite, and the models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelingError
from repro.march import get_architecture
from repro.power_model.linreg import nnls_ols, ols
from repro.power_model.metrics import max_error, paae
from repro.power_model.training import (
    IPC_FAMILIES,
    MEMORY_FAMILIES,
    generate_micro_suite,
    generate_random_suite,
    solve_dependency_mean,
)


@pytest.fixture(scope="module")
def arch():
    return get_architecture("POWER7")


class TestLinearRegression:
    def test_ols_recovers_plane(self):
        rng = np.random.default_rng(1)
        features = rng.uniform(0, 10, size=(60, 3))
        targets = features @ np.array([2.0, -1.0, 0.5]) + 4.0
        coefficients, intercept = ols(features, targets)
        assert np.allclose(coefficients, [2.0, -1.0, 0.5], atol=1e-8)
        assert intercept == pytest.approx(4.0)

    def test_ols_underdetermined_rejected(self):
        with pytest.raises(ModelingError, match="underdetermined"):
            ols(np.ones((3, 3)), np.ones(3))

    def test_nnls_clamps_negative(self):
        rng = np.random.default_rng(2)
        features = rng.uniform(0, 10, size=(80, 2))
        targets = features @ np.array([3.0, -2.0]) + 1.0
        coefficients, _ = nnls_ols(features, targets)
        assert coefficients[1] == 0.0
        assert coefficients[0] > 0

    @given(
        true=st.lists(st.floats(0.1, 5.0), min_size=2, max_size=4),
        noise=st.floats(0.0, 0.01),
    )
    @settings(max_examples=20, deadline=None)
    def test_nnls_recovers_nonnegative_models(self, true, noise):
        rng = np.random.default_rng(7)
        features = rng.uniform(0, 10, size=(100, len(true)))
        targets = features @ np.array(true) + rng.normal(0, noise, 100)
        coefficients, _ = nnls_ols(features, targets)
        assert np.allclose(coefficients, true, atol=0.3)


class TestTrainingSuite:
    def test_family_composition(self, arch):
        suite = generate_micro_suite(arch, loop_size=256, scale=0.2)
        families = {bench.family for bench in suite}
        assert set(IPC_FAMILIES) <= families
        assert set(MEMORY_FAMILIES) <= families

    def test_random_suite_scale(self, arch):
        suite = generate_random_suite(arch, loop_size=256, scale=0.05)
        assert len(suite) == round(331 * 0.05)

    def test_scale_validation(self, arch):
        with pytest.raises(ValueError):
            generate_micro_suite(arch, scale=0.0)

    def test_solve_dependency_mean(self, arch):
        # FXU-only pool with latency 4 -> IPC 0.5 needs mean distance 2.
        mean = solve_dependency_mean(arch, ("mulld",), 0.5)
        assert mean == pytest.approx(2.0)
        # Clamped to valid pass range.
        assert solve_dependency_mean(arch, ("mulld",), 0.01) == 1.0
        assert solve_dependency_mean(arch, ("fadd",), 100.0) == 32.0

    def test_unique_kernels(self, arch):
        suite = generate_micro_suite(arch, loop_size=256, scale=0.15)
        digests = [bench.kernel.digest() for bench in suite]
        assert len(set(digests)) == len(digests)


class TestMetrics:
    class _Fake:
        def __init__(self, power):
            self.mean_power = power
            self.workload_name = "w"

    def test_paae(self):
        measurements = [self._Fake(100.0), self._Fake(200.0)]
        model = lambda m: m.mean_power * 1.1
        assert paae(model, measurements) == pytest.approx(10.0)
        assert max_error(model, measurements) == pytest.approx(10.0)

    def test_empty_rejected(self):
        with pytest.raises(ModelingError):
            paae(lambda m: 0.0, [])
