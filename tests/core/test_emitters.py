"""Tests for the C and assembly emitters."""

import pytest

from repro.core.passes import (
    DependencyDistance,
    EndlessLoopSkeleton,
    InitImmediates,
    InitRegisters,
    InstructionDistribution,
    MemoryModel,
)
from repro.core.synthesizer import Synthesizer
from repro.errors import SynthesisError
from repro.march import get_architecture


@pytest.fixture(scope="module")
def arch():
    return get_architecture("POWER7")


@pytest.fixture(scope="module")
def program(arch):
    synth = Synthesizer(arch, seed=11, name_prefix="emit")
    synth.add_pass(EndlessLoopSkeleton(64))
    synth.add_pass(InstructionDistribution(["lwz", "add", "stfd", "xvmaddadp"]))
    synth.add_pass(MemoryModel({"L1": 0.5, "L3": 0.5}))
    synth.add_pass(InitRegisters("pattern", pattern=0b01010101))
    synth.add_pass(InitImmediates("random"))
    synth.add_pass(DependencyDistance("random"))
    return synth.synthesize()


class TestAssemblyEmitter:
    def test_structure(self, program):
        from repro.core.emit import emit_assembly
        text = emit_assembly(program)
        assert ".machine \"power7\"" in text
        assert "ubench_main:" in text
        assert f"{program.loop_label}:" in text
        assert f"b {program.loop_label}" in text
        assert "ubench_region" in text

    def test_all_mnemonics_present(self, program):
        from repro.core.emit import emit_assembly
        text = emit_assembly(program)
        for mnemonic in ("lwz", "add", "stfd", "xvmaddadp"):
            assert mnemonic in text

    def test_large_offsets_form_addresses(self, arch):
        from repro.core.emit import emit_assembly
        # Without dependency-carried addressing, L3-resident offsets
        # exceed the D-form reach and the emitter must issue the
        # addis/lis address-forming prelude.
        synth = Synthesizer(arch, seed=4, name_prefix="bigoff")
        synth.add_pass(EndlessLoopSkeleton(64))
        synth.add_pass(InstructionDistribution(["lwz", "stfd"]))
        synth.add_pass(MemoryModel({"L3": 1.0}))
        synth.add_pass(InitRegisters("random"))
        synth.add_pass(InitImmediates("random"))
        synth.add_pass(DependencyDistance("none"))
        text = emit_assembly(synth.synthesize())
        assert "addis r27" in text or "lis r27" in text


class TestCEmitter:
    def test_structure(self, program):
        from repro.core.emit import emit_c
        text = emit_c(program)
        assert "__asm__ volatile(" in text
        assert "int main(void)" in text
        assert "init_region" in text
        assert '"r27", "memory"' in text

    def test_init_mode_reflected(self, program):
        from repro.core.emit import emit_c
        assert "pattern" in emit_c(program)

    def test_save_dispatches_on_suffix(self, program, tmp_path):
        c_path = program.save(tmp_path / "x.c")
        s_path = program.save(tmp_path / "x.s")
        assert c_path.read_text().startswith("/*")
        assert s_path.read_text().startswith("#")
        with pytest.raises(SynthesisError):
            program.save(tmp_path / "x.rs")


class TestFormatting:
    def test_dform_small_offset(self, arch):
        from repro.core.emit.formatting import format_instruction
        from repro.core.ir import IRInstruction, Program
        ins = IRInstruction(
            definition=arch.isa.instruction("lwz"),
            registers={"RT": 5, "RA": 28},
            immediates={"D": 256},
            address=0x1000_0100,
        )
        program = Program("t", arch, memory_base=0x1000_0000)
        lines = format_instruction(ins, program)
        assert lines == ["lwz r5, 256(r28)"]

    def test_nop_and_branch(self, arch):
        from repro.core.emit.formatting import format_instruction
        from repro.core.ir import IRInstruction, Program
        program = Program("t", arch)
        nop = IRInstruction(definition=arch.isa.instruction("nop"))
        assert format_instruction(nop, program) == ["nop"]
        branch = IRInstruction(
            definition=arch.isa.instruction("b"), structural=True
        )
        assert format_instruction(branch, program) == ["b loop"]

    def test_dependency_carried_addressing_skips_prelude(self, arch):
        from repro.core.emit.formatting import format_instruction
        from repro.core.ir import IRInstruction, Program
        ins = IRInstruction(
            definition=arch.isa.instruction("lwzx"),
            registers={"RT": 5, "RA": 28, "RB": 9},
            dep_distance=3,
            dep_operand="RB",
            address=0x2000_0000,
        )
        program = Program("t", arch)
        lines = format_instruction(ins, program)
        assert lines == ["lwzx r5, r28, r9"]
