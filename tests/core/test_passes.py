"""Tests for the code-generation passes and the synthesizer."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ir import Program
from repro.core.passes import (
    BranchBehavior,
    DependencyDistance,
    EndlessLoopSkeleton,
    InitImmediates,
    InitRegisters,
    InstructionDistribution,
    MemoryModel,
    SequenceOrder,
    ValidateProgram,
)
from repro.core.passes.base import PassContext
from repro.core.registers import RegisterPools
from repro.core.synthesizer import Synthesizer
from repro.errors import PassError, SynthesisError
from repro.march import get_architecture


@pytest.fixture(scope="module")
def arch():
    return get_architecture("POWER7")


def context(arch, seed=0):
    return PassContext(arch=arch, rng=random.Random(seed), pools=RegisterPools())


def fresh(arch, *passes, seed=0):
    program = Program(name="t", arch=arch)
    ctx = context(arch, seed)
    for pass_ in passes:
        pass_.apply(program, ctx)
    return program


class TestSkeleton:
    def test_creates_loop(self, arch):
        program = fresh(arch, EndlessLoopSkeleton(64))
        assert program.size == 64
        assert len(program.body) == 65  # + closing branch
        assert program.body[-1].structural
        assert program.body[-1].mnemonic == "b"

    def test_rejects_double_application(self, arch):
        with pytest.raises(PassError):
            fresh(arch, EndlessLoopSkeleton(8), EndlessLoopSkeleton(8))

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            EndlessLoopSkeleton(0)


class TestDistribution:
    def test_exact_mix(self, arch):
        program = fresh(
            arch,
            EndlessLoopSkeleton(90),
            InstructionDistribution(["add", "subf", "fadd"]),
        )
        counts = program.mnemonic_counts()
        assert counts["add"] == counts["subf"] == counts["fadd"] == 30

    def test_weighted_mix(self, arch):
        program = fresh(
            arch,
            EndlessLoopSkeleton(100),
            InstructionDistribution(["add", "fadd"], weights=[3, 1]),
        )
        counts = program.mnemonic_counts()
        assert counts["add"] == 75
        assert counts["fadd"] == 25

    def test_structural_slots_untouched(self, arch):
        program = fresh(
            arch, EndlessLoopSkeleton(16), InstructionDistribution(["add"])
        )
        assert program.body[-1].mnemonic == "b"

    def test_registers_assigned(self, arch):
        program = fresh(
            arch, EndlessLoopSkeleton(8), InstructionDistribution(["fmadd"])
        )
        for ins in program.body[:-1]:
            assert set(ins.registers) == {"FRT", "FRA", "FRC", "FRB"}

    def test_requires_skeleton(self, arch):
        with pytest.raises(PassError):
            fresh(arch, InstructionDistribution(["add"]))

    def test_validation(self):
        with pytest.raises(ValueError):
            InstructionDistribution([])
        with pytest.raises(ValueError):
            InstructionDistribution(["add"], weights=[1, 2])


class TestMemoryModel:
    def test_assigns_addresses_and_levels(self, arch):
        program = fresh(
            arch,
            EndlessLoopSkeleton(128),
            InstructionDistribution(["lwz", "ld"]),
            MemoryModel({"L1": 0.5, "L2": 0.5}),
        )
        for ins in program.memory_instructions():
            assert ins.address is not None
            assert ins.source_level in ("L1", "L2")
        levels = [i.source_level for i in program.memory_instructions()]
        assert levels.count("L2") == 64

    def test_requires_memory_instructions(self, arch):
        with pytest.raises(PassError, match="no memory instructions"):
            fresh(
                arch,
                EndlessLoopSkeleton(16),
                InstructionDistribution(["add"]),
                MemoryModel({"L1": 1.0}),
            )

    def test_displacements_set(self, arch):
        program = fresh(
            arch,
            EndlessLoopSkeleton(64),
            InstructionDistribution(["lwz"]),
            MemoryModel({"L1": 1.0}),
        )
        for ins in program.memory_instructions():
            assert "D" in ins.immediates


class TestDependencyDistance:
    def _program(self, arch, pass_, pool=("subf", "fadd")):
        return fresh(
            arch,
            EndlessLoopSkeleton(64),
            InstructionDistribution(list(pool)),
            pass_,
        )

    def test_chain(self, arch):
        program = self._program(arch, DependencyDistance("chain"))
        distances = [
            i.dep_distance for i in program.body if not i.structural
        ]
        assert all(d is not None for d in distances)
        assert max(distances) <= 9  # chain +- compatibility search window

    def test_none_clears(self, arch):
        program = self._program(arch, DependencyDistance("none"))
        assert all(
            i.dep_distance is None for i in program.body
        )

    def test_fixed(self, arch):
        program = self._program(arch, DependencyDistance("fixed", distance=4))
        distances = {i.dep_distance for i in program.body if not i.structural}
        assert 4 in distances

    def test_consumer_reads_producer_register(self, arch):
        program = self._program(arch, DependencyDistance("chain"), pool=["subf"])
        body = program.body
        for index, ins in enumerate(body):
            if ins.structural or ins.dep_distance is None:
                continue
            producer = body[(index - ins.dep_distance) % len(body)]
            target = producer.target_register()
            assert target is not None
            assert ins.registers[ins.dep_operand] == target[2]

    def test_mean_mode_interpolates(self, arch):
        from repro.sim.pipeline import CorePipelineModel
        pipe = CorePipelineModel(arch)
        ipcs = []
        for mean in (2.0, 4.0, 6.0):
            program = self._program(
                arch,
                DependencyDistance("mean", mean_distance=mean),
                pool=["fadd"],
            )
            ipcs.append(pipe.activity(program.to_kernel()).ipc)
        assert ipcs[0] < ipcs[1] < ipcs[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            DependencyDistance("sideways")
        with pytest.raises(ValueError):
            DependencyDistance("fixed")
        with pytest.raises(ValueError):
            DependencyDistance("mean")


class TestOrderAndBranches:
    def test_blocked_vs_interleave_alternation(self, arch):
        from repro.sim.pipeline import CorePipelineModel
        pipe = CorePipelineModel(arch)
        base = [
            EndlessLoopSkeleton(64),
            InstructionDistribution(["subf", "fadd"]),
        ]
        blocked = fresh(arch, *base, SequenceOrder("blocked"))
        interleaved = fresh(arch, *base, SequenceOrder("interleave"))
        assert pipe.alternation(interleaved.to_kernel()) > \
            pipe.alternation(blocked.to_kernel()) + 0.5

    def test_order_preserves_multiset(self, arch):
        before = fresh(
            arch, EndlessLoopSkeleton(30),
            InstructionDistribution(["add", "fmul", "lwzx"]),
        )
        counts_before = before.mnemonic_counts()
        SequenceOrder("shuffle").apply(before, context(arch, 3))
        assert before.mnemonic_counts() == counts_before

    def test_rotate(self, arch):
        program = fresh(
            arch, EndlessLoopSkeleton(10), InstructionDistribution(["add", "or"])
        )
        first = program.body[0].mnemonic
        SequenceOrder("rotate", amount=1).apply(program, context(arch))
        assert program.body[9].mnemonic == first or True  # rotation applied
        assert program.size == 10

    def test_branch_plant(self, arch):
        program = fresh(
            arch,
            EndlessLoopSkeleton(100),
            InstructionDistribution(["add"]),
            BranchBehavior(0.1),
        )
        counts = program.mnemonic_counts()
        assert counts.get("bc") == 10


class TestSynthesizer:
    def test_figure2_pipeline(self, arch):
        synth = Synthesizer(arch, seed=1)
        synth.add_pass(EndlessLoopSkeleton(256))
        synth.add_pass(InstructionDistribution(["lwz", "lbz"]))
        synth.add_pass(MemoryModel({"L1": 0.5, "L2": 0.5}))
        synth.add_pass(InitRegisters("pattern", pattern=0b01010101))
        synth.add_pass(InitImmediates("pattern", pattern=0b01010101))
        synth.add_pass(DependencyDistance("random"))
        programs = [synth.synthesize() for _ in range(3)]
        assert len({p.name for p in programs}) == 3
        # Different synthesis runs yield different programs.
        kernels = [p.to_kernel() for p in programs]
        assert len({k.digest() for k in kernels}) == 3

    def test_no_passes_rejected(self, arch):
        with pytest.raises(SynthesisError):
            Synthesizer(arch).synthesize()

    def test_non_pass_rejected(self, arch):
        with pytest.raises(SynthesisError):
            Synthesizer(arch).add_pass(lambda p, c: None)

    def test_validation_catches_missing_memory_plan(self, arch):
        synth = Synthesizer(arch, validate=True)
        synth.add_pass(EndlessLoopSkeleton(16))
        synth.add_pass(InstructionDistribution(["lwz"]))
        with pytest.raises(PassError, match="planned"):
            synth.synthesize()

    def test_deterministic_given_seed(self, arch):
        def build(seed):
            synth = Synthesizer(arch, seed=seed)
            synth.add_pass(EndlessLoopSkeleton(64))
            synth.add_pass(InstructionDistribution(["add", "fmul"]))
            synth.add_pass(DependencyDistance("random"))
            return synth.synthesize().to_kernel().digest()

        assert build(5) == build(5)
        assert build(5) != build(6)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_pipelines_validate(self, arch, seed):
        rng = random.Random(seed)
        pool = rng.sample(
            [i.mnemonic for i in arch.isa
             if not i.is_branch and not i.is_nop and not i.is_memory],
            4,
        )
        synth = Synthesizer(arch, seed=seed)
        synth.add_pass(EndlessLoopSkeleton(rng.choice([16, 64, 128])))
        synth.add_pass(InstructionDistribution(pool))
        synth.add_pass(InitRegisters(rng.choice(["zero", "pattern", "random"])))
        synth.add_pass(InitImmediates("random"))
        synth.add_pass(
            DependencyDistance(rng.choice(["none", "chain", "random"]))
        )
        program = synth.synthesize()  # ValidateProgram runs implicitly
        assert program.size >= 16
