"""Tests for categories and the taxonomy builder (no machine needed)."""

import pytest

from repro.epi import build_taxonomy, category_label, category_of
from repro.epi.taxonomy import epi_spread, taxonomy_table, top_by_ipc_epi
from repro.errors import MicroProbeError
from repro.march import get_architecture
from repro.march.bootstrap import BootstrapRecord


@pytest.fixture(scope="module")
def arch():
    return get_architecture("POWER7")


def record(mnemonic, ipc, epi):
    return BootstrapRecord(
        mnemonic=mnemonic, latency=1.0, throughput_ipc=ipc,
        units=("FXU",), epi_nj=epi, avg_power_w=1.0,
    )


class TestCategories:
    def test_pure_unit(self, arch):
        assert category_label(category_of(arch.props("mulldo"))) == "FXU"
        assert category_label(category_of(arch.props("xvmaddadp"))) == "VSU"

    def test_flexible(self, arch):
        assert category_label(category_of(arch.props("add"))) == "FXU or LSU"

    def test_composed(self, arch):
        assert category_label(category_of(arch.props("lhaux"))) == "LSU and 2FXU"
        assert (
            category_label(category_of(arch.props("stfdux")))
            == "LSU and VSU and FXU"
        )

    def test_nop(self, arch):
        assert category_label(category_of(arch.props("nop"))) == "none"


class TestTaxonomyBuilder:
    def test_normalization(self, arch):
        records = {
            "addic": record("addic", 2.0, 0.4),
            "subf": record("subf", 2.0, 0.7),
            "mulldo": record("mulldo", 1.4, 1.1),
        }
        taxonomy = build_taxonomy(arch, records)
        entries = {e.mnemonic: e for e in taxonomy["FXU"]}
        assert entries["addic"].global_epi == pytest.approx(1.0)
        assert entries["mulldo"].global_epi == pytest.approx(1.1 / 0.4)
        assert entries["mulldo"].category_epi == pytest.approx(1.1 / 0.4)

    def test_sorted_descending(self, arch):
        records = {
            "addic": record("addic", 2.0, 0.4),
            "mulldo": record("mulldo", 1.4, 1.1),
        }
        taxonomy = build_taxonomy(arch, records)
        epis = [entry.epi_nj for entry in taxonomy["FXU"]]
        assert epis == sorted(epis, reverse=True)

    def test_below_resolution_excluded(self, arch):
        records = {
            "addic": record("addic", 2.0, 0.4),
            "nop": record("nop", 6.0, 0.001),
        }
        taxonomy = build_taxonomy(arch, records)
        mnemonics = {
            entry.mnemonic
            for entries in taxonomy.values() for entry in entries
        }
        assert "nop" not in mnemonics
        # Normalization base excludes the below-noise record.
        entry = taxonomy["FXU"][0]
        assert entry.global_epi == pytest.approx(1.0)

    def test_empty_rejected(self, arch):
        with pytest.raises(MicroProbeError):
            build_taxonomy(arch, {})

    def test_top_by_ipc_epi(self, arch):
        records = {
            "addic": record("addic", 2.0, 0.4),   # product 0.8
            "mulldo": record("mulldo", 1.4, 1.1),  # product 1.54
        }
        tops = top_by_ipc_epi(build_taxonomy(arch, records))
        assert tops["FXU"].mnemonic == "mulldo"

    def test_table_selection_prefers_same_ipc_contrast(self, arch):
        records = {
            "subf": record("subf", 2.0, 0.7),
            "addic": record("addic", 2.0, 0.4),
            "mulldo": record("mulldo", 1.4, 1.1),
        }
        table = taxonomy_table(build_taxonomy(arch, records))
        fxu_rows = [entry for entry in table if entry.category == "FXU"]
        assert fxu_rows[0].mnemonic == "mulldo"  # top IPC*EPI
        # Remaining rows share the same IPC (2.0) with contrasting EPI.
        assert {entry.mnemonic for entry in fxu_rows[1:]} == {"subf", "addic"}

    def test_epi_spread(self):
        entries = [
            record("a", 1, 1.0), record("b", 1, 1.78),
        ]
        from repro.epi.taxonomy import TaxonomyEntry
        converted = [
            TaxonomyEntry("FXU", r.mnemonic, r.throughput_ipc, r.epi_nj, 1, 1)
            for r in entries
        ]
        assert epi_spread(converted) == pytest.approx(78.0)
