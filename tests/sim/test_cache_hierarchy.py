"""Tests for the functional cache and hierarchy simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.march.caches import CacheGeometry, MemoryLevel
from repro.sim.cache import SetAssociativeCache
from repro.sim.hierarchy import CacheHierarchy


def small_cache(ways=4, sets=4) -> SetAssociativeCache:
    geometry = CacheGeometry(
        name="T", level=1, size_bytes=sets * ways * 64, line_bytes=64,
        ways=ways, latency=1,
    )
    return SetAssociativeCache(geometry)


class TestSetAssociativeCache:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1000 + 63)

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1)
        a, b, c = 0x0, 0x40 * 1, 0x40 * 2  # same set (1 set total)
        cache.access(a)
        cache.access(b)
        cache.access(c)  # evicts a (LRU)
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)

    def test_access_refreshes_recency(self):
        cache = small_cache(ways=2, sets=1)
        a, b, c = 0x0, 0x40, 0x80
        cache.access(a)
        cache.access(b)
        cache.access(a)  # refresh a; b becomes LRU
        cache.access(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)

    def test_cyclic_overflow_always_misses(self):
        """The LRU property the analytical model relies on."""
        cache = small_cache(ways=4, sets=1)
        lines = [i * 0x40 for i in range(8)]  # 2x associativity
        for _ in range(4):
            for address in lines:
                cache.access(address)
        cache.reset_statistics()
        for address in lines:
            assert not cache.access(address)

    def test_cyclic_fit_always_hits(self):
        cache = small_cache(ways=4, sets=1)
        lines = [i * 0x40 for i in range(4)]  # exactly associativity
        for address in lines:
            cache.access(address)
        cache.reset_statistics()
        for _ in range(3):
            for address in lines:
                assert cache.access(address)

    def test_flush(self):
        cache = small_cache()
        cache.access(0x0)
        cache.flush()
        assert cache.accesses == 0
        assert not cache.contains(0x0)

    @given(st.lists(st.integers(0, 2 ** 20), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = small_cache()
        for address in addresses:
            cache.access(address)
        assert cache.hits + cache.misses == len(addresses)

    @given(st.lists(st.integers(0, 2 ** 16), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_ways(self, addresses):
        cache = small_cache(ways=3, sets=2)
        for address in addresses:
            cache.access(address)
        for index in range(cache.geometry.sets):
            assert cache.occupancy(index) <= 3


class TestHierarchy:
    def _hierarchy(self, prefetch=False):
        caches = [
            CacheGeometry("L1", 1, 4 * 1024, 64, 4, 2),
            CacheGeometry("L2", 2, 16 * 1024, 64, 4, 8),
        ]
        return CacheHierarchy(caches, MemoryLevel(latency=100), prefetch)

    def test_miss_walks_to_memory(self):
        hierarchy = self._hierarchy()
        assert hierarchy.access(0x1000) == "MEM"
        # Inclusive allocation: both levels now hold the line.
        assert hierarchy.access(0x1000) == "L1"

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = self._hierarchy()
        # 8 lines conflicting in one L1 set (4-way) but fitting L2.
        lines = [0x40 * 16 * i for i in range(8)]
        for _ in range(3):
            for address in lines:
                hierarchy.access(address)
        hierarchy.reset_statistics()
        for address in lines:
            source = hierarchy.access(address)
            assert source in ("L2", "L1")
        assert hierarchy.source_counts["L2"] > 0

    def test_distribution_sums_to_one(self):
        hierarchy = self._hierarchy()
        hierarchy.run(range(0, 64 * 100, 64))
        assert sum(hierarchy.distribution().values()) == pytest.approx(1.0)

    def test_prefetcher_catches_constant_stride(self):
        hierarchy = self._hierarchy(prefetch=True)
        stream = [0x40 * i for i in range(200)]
        hierarchy.run(stream)
        assert hierarchy.prefetches_issued > 0
        # The tail of the stream should hit L1 thanks to prefetching.
        assert hierarchy.distribution()["L1"] > 0.5

    def test_no_prefetch_on_random_stream(self):
        import random
        rng = random.Random(5)
        hierarchy = self._hierarchy(prefetch=True)
        stream = [rng.randrange(0, 1 << 24) & ~63 for _ in range(200)]
        hierarchy.run(stream)
        assert hierarchy.prefetches_issued < 20
