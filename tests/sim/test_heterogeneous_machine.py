"""Heterogeneous multi-cluster runs: scalar semantics + vector identity."""

import random

import pytest

from repro.errors import MeasurementError
from repro.exec.plan import PlanCell
from repro.sim import (
    CoreCluster,
    ChipTopology,
    Machine,
    MachineConfig,
    Placement,
    parse_topology,
    topology_ladder,
)
from repro.sim.pstate import get_pstate
from repro.workloads.mixes import (
    biglittle_mixes,
    hi_ilp_kernel,
    memory_bound_kernel,
    scalar_kernel,
    vector_kernel,
)
from repro.workloads.spec import spec_cpu2006
from tests.sim.test_topology_degeneracy import random_kernel

_DURATION = 2.0


@pytest.fixture(scope="module")
def scalar_machine(power7_arch):
    return Machine(power7_arch, vector=False)


@pytest.fixture(scope="module")
def vector_machine(power7_arch):
    return Machine(power7_arch, vector=True)


class TestScalarTopologyRuns:
    def test_per_cluster_counters(self, scalar_machine):
        topology = parse_topology("2big-2+4little")
        kernel = hi_ilp_kernel(64)
        measurement = scalar_machine.run(kernel, topology, _DURATION)
        assert measurement.config is topology
        assert len(measurement.thread_counters) == topology.threads
        big = measurement.thread_counters[0]
        little = measurement.thread_counters[-1]
        # Each cluster's cycle counter runs at its own clock.
        assert big["PM_RUN_CYC"] == 3.0e9 * _DURATION
        assert little["PM_RUN_CYC"] == 1.8e9 * _DURATION
        # The narrow core commits fewer instructions per thread.
        assert little["PM_RUN_INST_CMPL"] < big["PM_RUN_INST_CMPL"]

    def test_per_cluster_dvfs_reclocks_its_cluster_only(
        self, scalar_machine
    ):
        kernel = hi_ilp_kernel(64)
        nominal = scalar_machine.run(
            kernel, parse_topology("2big+2little"), _DURATION
        )
        downclocked = scalar_machine.run(
            kernel, parse_topology("2big@p2+2little"), _DURATION
        )
        big_cycles = downclocked.thread_counters[0]["PM_RUN_CYC"]
        assert big_cycles == 3.0e9 * 0.85 * _DURATION
        # Little cluster untouched by the big cluster's p-state.
        assert (
            downclocked.thread_counters[-1]
            == nominal.thread_counters[-1]
        )
        assert downclocked.mean_power < nominal.mean_power

    def test_eco_cluster_draws_less_power(self, scalar_machine):
        kernel = hi_ilp_kernel(64)
        big = scalar_machine.run(
            kernel, parse_topology("4big"), _DURATION
        )
        little = scalar_machine.run(
            kernel, parse_topology("4little"), _DURATION
        )
        assert little.mean_power < big.mean_power

    def test_epi_crossover(self, scalar_machine):
        """Big wins energy/instruction on compute, little on memory."""

        def epi(measurement):
            committed = sum(
                counters["PM_RUN_INST_CMPL"]
                for counters in measurement.thread_counters
            )
            return measurement.mean_power * _DURATION / committed

        compute, memory = hi_ilp_kernel(64), memory_bound_kernel(64)
        big, little = parse_topology("8big"), parse_topology("8little")
        run = scalar_machine.run
        assert epi(run(compute, big, _DURATION)) < epi(
            run(compute, little, _DURATION)
        )
        assert epi(run(memory, little, _DURATION)) < epi(
            run(memory, big, _DURATION)
        )

    def test_profiled_workload_sees_cluster_clock(self, scalar_machine):
        proxy = spec_cpu2006()[0]
        topology = parse_topology("1big+1little")
        measurement = scalar_machine.run(proxy, topology, _DURATION)
        big, little = measurement.thread_counters
        # The proxy's IPC profile replays against each cluster's clock.
        assert little["PM_RUN_INST_CMPL"] == pytest.approx(
            big["PM_RUN_INST_CMPL"] * 1.8 / 3.0
        )

    def test_validation_against_cluster_geometry(self, scalar_machine):
        with pytest.raises(MeasurementError):
            scalar_machine.run(
                hi_ilp_kernel(16),
                ChipTopology(
                    clusters=(
                        CoreCluster(
                            "little", 4, 4, core_class="POWER7_ECO"
                        ),
                    )
                ),
                _DURATION,
            )
        with pytest.raises(MeasurementError):
            scalar_machine.run(
                hi_ilp_kernel(16),
                ChipTopology(
                    clusters=(
                        CoreCluster("odd", 2, 1, core_class="NOSUCH"),
                    )
                ),
                _DURATION,
            )

    def test_idle_on_topology(self, scalar_machine):
        topology = parse_topology("2big+2little")
        idle = scalar_machine.run_idle(topology, _DURATION)
        assert len(idle.thread_counters) == topology.threads
        assert all(
            value == 0.0
            for counters in idle.thread_counters
            for value in counters.values()
        )


class TestTopologyPlacements:
    def test_homogeneous_placement_matches_plain_run(self, scalar_machine):
        topology = parse_topology("2big-2+2little")
        kernel = hi_ilp_kernel(64)
        plain = scalar_machine.run(kernel, topology, _DURATION)
        placed = scalar_machine.run(
            Placement.homogeneous(kernel, topology), topology, _DURATION
        )
        assert placed.mean_power == plain.mean_power
        assert placed.thread_counters == plain.thread_counters

    def test_affinity_mix_beats_inverted(self, scalar_machine):
        """compute-on-big commits more work than the inverted control."""
        topology = parse_topology("4big+4little")
        mixes = {mix.name: mix for mix in biglittle_mixes(64)}

        def committed(measurement):
            return sum(
                counters["PM_RUN_INST_CMPL"]
                for counters in measurement.thread_counters
            )

        right = scalar_machine.run(
            mixes["compute-on-big"].placement(topology), topology, _DURATION
        )
        wrong = scalar_machine.run(
            mixes["inverted-affinity"].placement(topology),
            topology,
            _DURATION,
        )
        assert committed(right) > committed(wrong)
        assert right.is_heterogeneous

    def test_within_cluster_permutation_invariance(self, scalar_machine):
        topology = parse_topology("2big-2+2little-2")
        a, b = vector_kernel(64), scalar_kernel(64)
        c, d = hi_ilp_kernel(64), memory_bound_kernel(64)
        base = Placement("perm", ((a, b), (a, b), (c, d), (c, d)))
        within = Placement("perm", ((b, a), (a, b), (d, c), (c, d)))
        run = scalar_machine.run
        assert run(base, topology, _DURATION).mean_power == run(
            within, topology, _DURATION
        ).mean_power

    def test_cross_cluster_moves_are_distinct(self, scalar_machine):
        topology = parse_topology("2big+2little")
        a, b = hi_ilp_kernel(64), memory_bound_kernel(64)
        affine = Placement("move", ((a,), (a,), (b,), (b,)))
        swapped = Placement("move", ((b,), (b,), (a,), (a,)))
        run = scalar_machine.run
        assert run(affine, topology, _DURATION).mean_power != run(
            swapped, topology, _DURATION
        ).mean_power

    def test_placement_shape_validated(self, scalar_machine):
        topology = parse_topology("2big-2+2little")
        kernel = hi_ilp_kernel(16)
        wrong_width = Placement(
            "bad", ((kernel,), (kernel,), (kernel,), (kernel,))
        )
        with pytest.raises(MeasurementError):
            scalar_machine.run(wrong_width, topology, _DURATION)

    def test_mixed_core_on_cluster_pipeline(self, scalar_machine):
        """Dissimilar kernels sharing a little core use the eco solver."""
        topology = ChipTopology(
            clusters=(
                CoreCluster("little", 1, 2, core_class="POWER7_ECO"),
            )
        )
        mix = Placement(
            "eco-mix", ((hi_ilp_kernel(64), memory_bound_kernel(64)),)
        )
        measurement = scalar_machine.run(mix, topology, _DURATION)
        assert measurement.thread_ipcs()[0] > measurement.thread_ipcs()[1]


class TestVectorTopologyIdentity:
    def test_heterogeneous_plan_bit_identity(
        self, scalar_machine, vector_machine
    ):
        """The acceptance-bar batch: ladders x p-states x kernels."""
        kernels = [random_kernel(100 + index) for index in range(6)]
        configs = list(topology_ladder(8)) + [
            parse_topology("4big-2@p2+4little-2@p3"),
            parse_topology("2big-4@turbo+6little"),
            MachineConfig(4, 2),
            MachineConfig(8, 4, get_pstate("p2")),
        ]
        cells = [
            PlanCell(kernel, config, _DURATION)
            for config in configs
            for kernel in kernels
        ]
        fast = vector_machine.run_cells(cells)
        reference = scalar_machine.run_cells(cells)
        assert fast == reference

    def test_mixed_durations(self, scalar_machine, vector_machine):
        kernels = [random_kernel(300 + index) for index in range(5)]
        topology = parse_topology("2big+2little@p2")
        cells = [
            PlanCell(kernel, topology, duration)
            for duration in (1.0, 3.0)
            for kernel in kernels
        ]
        assert vector_machine.run_cells(cells) == scalar_machine.run_cells(
            cells
        )

    def test_small_topology_batches_decline_to_scalar(
        self, vector_machine, scalar_machine
    ):
        topology = parse_topology("1big+1little")
        kernels = [random_kernel(400 + index) for index in range(3)]
        assert vector_machine.run_many(
            kernels, topology, _DURATION
        ) == scalar_machine.run_many(kernels, topology, _DURATION)

    def test_cluster_lane_caches_reported(self, power7_arch):
        machine = Machine(power7_arch, vector=True)
        kernels = [random_kernel(500 + index) for index in range(10)]
        machine.run_many(
            kernels, parse_topology("2big+2little"), _DURATION
        )
        stats = machine.cache_stats()
        assert "packed:POWER7_ECO" in stats
        assert stats["packed:POWER7_ECO"]["misses"] >= len(kernels)

    def test_eco_base_machine_vector_identity(self):
        """A machine whose *base* class scales energy stays bit-exact.

        Regression: the homogeneous tensor path must apply the base
        architecture's ``energy_scale`` exactly as the scalar walk's
        ``thread_dynamic_power`` does (per-cluster campaigns run full
        plans on `Machine(POWER7_ECO)` directly).
        """
        from repro.march import get_architecture

        eco = get_architecture("POWER7_ECO")
        assert eco.chip.energy_scale != 1.0
        kernels = [random_kernel(600 + index) for index in range(12)]
        config = MachineConfig(4, 2)
        assert Machine(eco, vector=True).run_many(
            kernels, config, _DURATION
        ) == Machine(eco, vector=False).run_many(kernels, config, _DURATION)

    def test_random_shapes_property(self, scalar_machine, vector_machine):
        rng = random.Random(4242)
        pstates = ("turbo", "nominal", "p2", "p3")
        for _ in range(10):
            clusters = []
            if rng.random() < 0.8:
                clusters.append(
                    CoreCluster(
                        "big",
                        rng.randint(1, 6),
                        rng.choice((1, 2, 4)),
                        get_pstate(rng.choice(pstates)),
                    )
                )
            clusters.append(
                CoreCluster(
                    "little",
                    rng.randint(1, 6),
                    rng.choice((1, 2)),
                    get_pstate(rng.choice(pstates)),
                    "POWER7_ECO",
                )
            )
            topology = ChipTopology(clusters=tuple(clusters))
            kernels = [
                random_kernel(rng.randint(0, 10_000)) for _ in range(8)
            ]
            assert vector_machine.run_many(
                kernels, topology, _DURATION
            ) == scalar_machine.run_many(kernels, topology, _DURATION)
