"""Tests for the analytic pipeline model, machine facade, and sensors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeasurementError
from repro.march import get_architecture
from repro.sim import (
    Kernel,
    KernelInstruction,
    Machine,
    MachineConfig,
    parse_config,
    standard_configurations,
)
from repro.sim.pipeline import CorePipelineModel


@pytest.fixture(scope="module")
def arch():
    return get_architecture("POWER7")


@pytest.fixture(scope="module")
def machine(arch):
    return Machine(arch)


@pytest.fixture(scope="module")
def pipeline(arch):
    return CorePipelineModel(arch)


def uniform_kernel(mnemonic, count=512, dep=None, level=None):
    return Kernel(
        name=f"test-{mnemonic}-{dep}-{level}-{count}",
        instructions=tuple(
            KernelInstruction(
                mnemonic, dep_distance=dep, source_level=level,
                address=0x1000 + 128 * i if level else None,
            )
            for i in range(count)
        ),
    )


class TestMachineConfig:
    def test_labels(self):
        assert MachineConfig(4, 2).label == "4-2"
        assert parse_config("8-4") == MachineConfig(8, 4)

    def test_threads(self):
        assert MachineConfig(8, 4).threads == 32
        assert not MachineConfig(3, 1).smt_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(0, 1)
        with pytest.raises(ValueError):
            MachineConfig(1, 3)

    def test_standard_sweep(self):
        configs = standard_configurations(8, (1, 2, 4))
        assert len(configs) == 24
        assert configs[0].label == "1-1"
        assert configs[-1].label == "8-4"


class TestPipelineBounds:
    def test_table3_sustained_ipcs(self, pipeline):
        expectations = {
            "addic": 2.0, "add": 3.5, "mulldo": 1.4, "xvmaddadp": 2.0,
            "stfd": 0.48, "lhaux": 1.0,
        }
        for mnemonic, expected in expectations.items():
            level = "L1" if mnemonic in ("stfd", "lhaux") else None
            activity = pipeline.activity(uniform_kernel(mnemonic, level=level))
            assert activity.ipc == pytest.approx(expected, rel=0.02), mnemonic

    def test_chain_ipc_is_inverse_latency(self, pipeline, arch):
        for mnemonic in ("fadd", "mulld", "subf"):
            activity = pipeline.activity(uniform_kernel(mnemonic, dep=1))
            expected = 1.0 / arch.props(mnemonic).latency
            assert activity.ipc == pytest.approx(expected, rel=0.02)

    def test_longer_distance_raises_ipc(self, pipeline):
        slow = pipeline.activity(uniform_kernel("fadd", dep=1)).ipc
        fast = pipeline.activity(uniform_kernel("fadd", dep=4)).ipc
        assert fast == pytest.approx(4 * slow, rel=0.05)

    def test_memory_bound_dominates_for_mem_streams(self, pipeline):
        bounds = pipeline.bounds(uniform_kernel("ld", level="MEM"))
        assert bounds.binding == "memory"
        assert pipeline.activity(uniform_kernel("ld", level="MEM")).ipc < 0.1

    def test_smt_shares_unit_capacity(self, pipeline):
        single = pipeline.activity(uniform_kernel("addic"), smt=1).ipc
        doubled = pipeline.activity(uniform_kernel("addic"), smt=2).ipc
        assert doubled < single
        assert doubled == pytest.approx(single / 2, rel=0.1)

    def test_smt_does_not_hurt_latency_bound_threads(self, pipeline):
        chain = uniform_kernel("fadd", dep=1)
        assert pipeline.activity(chain, smt=4).ipc == pytest.approx(
            pipeline.activity(chain, smt=1).ipc
        )

    def test_alternation(self, pipeline, arch):
        blocked = Kernel("blocked", tuple(
            [KernelInstruction("subf")] * 8 + [KernelInstruction("fadd")] * 8
        ))
        interleaved = Kernel("interleaved", tuple(
            [KernelInstruction("subf"), KernelInstruction("fadd")] * 8
        ))
        assert pipeline.alternation(interleaved) == 1.0
        assert pipeline.alternation(blocked) < 0.2

    @given(st.integers(1, 31))
    @settings(max_examples=10, deadline=None)
    def test_dependency_bound_monotone_in_distance(self, pipeline, distance):
        near = pipeline.bounds(uniform_kernel("fadd", count=64, dep=distance))
        far = pipeline.bounds(
            uniform_kernel("fadd", count=64, dep=distance + 1)
        )
        assert far.dependency <= near.dependency + 1e-9


class TestMachine:
    def test_run_produces_measurement(self, machine):
        kernel = uniform_kernel("add")
        measurement = machine.run(kernel, MachineConfig(2, 2))
        assert measurement.threads == 4
        assert measurement.mean_power > 0
        assert measurement.sample_count == 10_000

    def test_counters_consistent_with_ipc(self, machine, arch):
        kernel = uniform_kernel("addic")
        measurement = machine.run(kernel, MachineConfig(1, 1))
        assert arch.ipc(measurement.thread_counters[0]) == pytest.approx(
            2.0, rel=0.05
        )

    def test_power_grows_with_cores(self, machine):
        kernel = uniform_kernel("xvmaddadp")
        powers = [
            machine.run(kernel, MachineConfig(cores, 1)).mean_power
            for cores in (1, 2, 4, 8)
        ]
        assert powers == sorted(powers)

    def test_idle_below_any_workload(self, machine):
        idle = machine.run_idle().mean_power
        busy = machine.run(uniform_kernel("add"), MachineConfig(1, 1))
        assert idle < busy.mean_power

    def test_measurements_are_reproducible(self, machine):
        kernel = uniform_kernel("subf")
        a = machine.run(kernel, MachineConfig(3, 2))
        b = machine.run(kernel, MachineConfig(3, 2))
        assert a.mean_power == b.mean_power

    def test_distinct_kernels_same_name_not_aliased(self, machine):
        a = Kernel("same", (KernelInstruction("addic"),) * 64)
        b = Kernel("same", (KernelInstruction("xvmaddadp"),) * 64)
        config = MachineConfig(1, 1)
        assert (
            machine.run(a, config).mean_power
            != machine.run(b, config).mean_power
        )

    def test_invalid_config_rejected(self, machine):
        with pytest.raises(MeasurementError):
            machine.run(uniform_kernel("add"), MachineConfig(16, 1))

    def test_non_workload_rejected(self, machine):
        with pytest.raises(MeasurementError):
            machine.run(object(), MachineConfig(1, 1))

    def test_order_changes_power_not_counters(self, machine, arch):
        """Same mix, different order: power moves, activity does not --
        the substrate mechanism behind the paper's 17% observation."""
        blocked = Kernel("ord-blocked", tuple(
            [KernelInstruction("mullw")] * 32
            + [KernelInstruction("xvmaddadp")] * 32
        ) * 4)
        interleaved = Kernel("ord-inter", tuple(
            [KernelInstruction("mullw"), KernelInstruction("xvmaddadp")] * 32
        ) * 4)
        config = MachineConfig(8, 1)
        power_blocked = machine.run(blocked, config)
        power_inter = machine.run(interleaved, config)
        assert power_inter.mean_power > power_blocked.mean_power
        assert arch.ipc(power_inter.thread_counters[0]) == pytest.approx(
            arch.ipc(power_blocked.thread_counters[0]), rel=0.01
        )
