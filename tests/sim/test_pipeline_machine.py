"""Tests for the analytic pipeline model, machine facade, and sensors.

Architecture, machine and the uniform-kernel builder come from the
shared fixtures in ``tests/conftest.py``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MeasurementError
from repro.sim import (
    Kernel,
    KernelInstruction,
    MachineConfig,
    parse_config,
    standard_configurations,
)
from repro.sim.pipeline import CorePipelineModel


@pytest.fixture(scope="module")
def pipeline(power7_arch):
    return CorePipelineModel(power7_arch)


class TestMachineConfig:
    def test_labels(self):
        assert MachineConfig(4, 2).label == "4-2"
        assert parse_config("8-4") == MachineConfig(8, 4)

    def test_threads(self):
        assert MachineConfig(8, 4).threads == 32
        assert not MachineConfig(3, 1).smt_enabled

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(0, 1)
        with pytest.raises(ValueError):
            MachineConfig(1, 3)

    def test_standard_sweep(self):
        configs = standard_configurations(8, (1, 2, 4))
        assert len(configs) == 24
        assert configs[0].label == "1-1"
        assert configs[-1].label == "8-4"


class TestPipelineBounds:
    def test_table3_sustained_ipcs(self, pipeline, small_kernel_factory):
        expectations = {
            "addic": 2.0, "add": 3.5, "mulldo": 1.4, "xvmaddadp": 2.0,
            "stfd": 0.48, "lhaux": 1.0,
        }
        for mnemonic, expected in expectations.items():
            level = "L1" if mnemonic in ("stfd", "lhaux") else None
            activity = pipeline.activity(
                small_kernel_factory(mnemonic, count=512, level=level)
            )
            assert activity.ipc == pytest.approx(expected, rel=0.02), mnemonic

    def test_chain_ipc_is_inverse_latency(
        self, pipeline, power7_arch, small_kernel_factory
    ):
        for mnemonic in ("fadd", "mulld", "subf"):
            activity = pipeline.activity(
                small_kernel_factory(mnemonic, count=512, dep=1)
            )
            expected = 1.0 / power7_arch.props(mnemonic).latency
            assert activity.ipc == pytest.approx(expected, rel=0.02)

    def test_longer_distance_raises_ipc(self, pipeline, small_kernel_factory):
        slow = pipeline.activity(
            small_kernel_factory("fadd", count=512, dep=1)
        ).ipc
        fast = pipeline.activity(
            small_kernel_factory("fadd", count=512, dep=4)
        ).ipc
        assert fast == pytest.approx(4 * slow, rel=0.05)

    def test_memory_bound_dominates_for_mem_streams(
        self, pipeline, small_kernel_factory
    ):
        stream = small_kernel_factory("ld", count=512, level="MEM")
        bounds = pipeline.bounds(stream)
        assert bounds.binding == "memory"
        assert pipeline.activity(stream).ipc < 0.1

    def test_smt_shares_unit_capacity(self, pipeline, small_kernel_factory):
        kernel = small_kernel_factory("addic", count=512)
        single = pipeline.activity(kernel, smt=1).ipc
        doubled = pipeline.activity(kernel, smt=2).ipc
        assert doubled < single
        assert doubled == pytest.approx(single / 2, rel=0.1)

    def test_smt_does_not_hurt_latency_bound_threads(
        self, pipeline, small_kernel_factory
    ):
        chain = small_kernel_factory("fadd", count=512, dep=1)
        assert pipeline.activity(chain, smt=4).ipc == pytest.approx(
            pipeline.activity(chain, smt=1).ipc
        )

    def test_alternation(self, pipeline):
        blocked = Kernel("blocked", tuple(
            [KernelInstruction("subf")] * 8 + [KernelInstruction("fadd")] * 8
        ))
        interleaved = Kernel("interleaved", tuple(
            [KernelInstruction("subf"), KernelInstruction("fadd")] * 8
        ))
        assert pipeline.alternation(interleaved) == 1.0
        assert pipeline.alternation(blocked) < 0.2

    @given(st.integers(1, 31))
    @settings(max_examples=10, deadline=None)
    def test_dependency_bound_monotone_in_distance(
        self, pipeline, small_kernel_factory, distance
    ):
        near = pipeline.bounds(
            small_kernel_factory("fadd", count=64, dep=distance)
        )
        far = pipeline.bounds(
            small_kernel_factory("fadd", count=64, dep=distance + 1)
        )
        assert far.dependency <= near.dependency + 1e-9


class TestMachine:
    def test_run_produces_measurement(self, machine, small_kernel_factory):
        kernel = small_kernel_factory("add", count=512)
        measurement = machine.run(kernel, MachineConfig(2, 2))
        assert measurement.threads == 4
        assert measurement.mean_power > 0
        assert measurement.sample_count == 10_000

    def test_counters_consistent_with_ipc(
        self, machine, power7_arch, small_kernel_factory
    ):
        kernel = small_kernel_factory("addic", count=512)
        measurement = machine.run(kernel, MachineConfig(1, 1))
        assert power7_arch.ipc(
            measurement.thread_counters[0]
        ) == pytest.approx(2.0, rel=0.05)

    def test_power_grows_with_cores(self, machine, small_kernel_factory):
        kernel = small_kernel_factory("xvmaddadp", count=512)
        powers = [
            machine.run(kernel, MachineConfig(cores, 1)).mean_power
            for cores in (1, 2, 4, 8)
        ]
        assert powers == sorted(powers)

    def test_idle_below_any_workload(self, machine, small_kernel_factory):
        idle = machine.run_idle().mean_power
        busy = machine.run(
            small_kernel_factory("add", count=512), MachineConfig(1, 1)
        )
        assert idle < busy.mean_power

    def test_measurements_are_reproducible(
        self, machine, small_kernel_factory
    ):
        kernel = small_kernel_factory("subf", count=512)
        a = machine.run(kernel, MachineConfig(3, 2))
        b = machine.run(kernel, MachineConfig(3, 2))
        assert a.mean_power == b.mean_power

    def test_distinct_kernels_same_name_not_aliased(self, machine):
        a = Kernel("same", (KernelInstruction("addic"),) * 64)
        b = Kernel("same", (KernelInstruction("xvmaddadp"),) * 64)
        config = MachineConfig(1, 1)
        assert (
            machine.run(a, config).mean_power
            != machine.run(b, config).mean_power
        )

    def test_invalid_config_rejected(self, machine, small_kernel_factory):
        with pytest.raises(MeasurementError):
            machine.run(small_kernel_factory("add"), MachineConfig(16, 1))

    def test_non_workload_rejected(self, machine):
        with pytest.raises(MeasurementError):
            machine.run(object(), MachineConfig(1, 1))

    def test_order_changes_power_not_counters(self, machine, power7_arch):
        """Same mix, different order: power moves, activity does not --
        the substrate mechanism behind the paper's 17% observation."""
        blocked = Kernel("ord-blocked", tuple(
            [KernelInstruction("mullw")] * 32
            + [KernelInstruction("xvmaddadp")] * 32
        ) * 4)
        interleaved = Kernel("ord-inter", tuple(
            [KernelInstruction("mullw"), KernelInstruction("xvmaddadp")] * 32
        ) * 4)
        config = MachineConfig(8, 1)
        power_blocked = machine.run(blocked, config)
        power_inter = machine.run(interleaved, config)
        assert power_inter.mean_power > power_blocked.mean_power
        assert power7_arch.ipc(
            power_inter.thread_counters[0]
        ) == pytest.approx(
            power7_arch.ipc(power_blocked.thread_counters[0]), rel=0.01
        )
