"""Property tests for placements, mixed SMT contention, and p-states.

Seeded random exploration (plain ``random.Random``, no hypothesis):
each property is checked over a deterministic family of random kernels
and shapes, so failures reproduce bit-for-bit.

The three contract properties of the placement/p-state layer:

1. a homogeneous placement of kernel K reproduces ``Machine.run(K)``
   bit-for-bit -- same counters, same noise draws;
2. mixed-placement chip power is invariant under permuting co-runners
   within a core (and under permuting whole cores) -- exactly, not
   approximately;
3. the nominal p-state is the identity: configurations carrying an
   explicitly constructed nominal operating point measure bit-for-bit
   like pre-DVFS configurations.
"""

import random

import pytest

from repro.errors import MeasurementError
from repro.sim import (
    Kernel,
    KernelInstruction,
    MachineConfig,
    NOMINAL,
    Placement,
    PState,
)
from repro.sim.pipeline import CorePipelineModel
from repro.sim.power import GroundTruthPowerModel

POOL = (
    "addic", "mulldo", "add", "lwz", "xvmaddadp", "fadd", "stfd", "ld",
    "mullw", "divd",
)
LEVELS = (None, "L1", "L2", "L3", "MEM")
MEMORY_POOL = ("lwz", "stfd", "ld")
CONFIGS = (
    MachineConfig(1, 2),
    MachineConfig(1, 4),
    MachineConfig(2, 2),
    MachineConfig(4, 4),
    MachineConfig(8, 1),
)


def random_kernel(seed, size=None):
    rng = random.Random(seed)
    size = size or rng.randint(4, 96)
    instructions = []
    for index in range(size):
        mnemonic = rng.choice(POOL)
        level = (
            rng.choice(LEVELS) if mnemonic in MEMORY_POOL else None
        )
        distance = (
            rng.randint(1, size - 1)
            if size > 1 and rng.random() < 0.3
            else None
        )
        instructions.append(
            KernelInstruction(
                mnemonic,
                dep_distance=distance,
                source_level=level,
                address=0x4000_0000 + index * 256 if level else None,
            )
        )
    return Kernel(
        name=f"prop-{seed}",
        instructions=tuple(instructions),
        operand_entropy=rng.choice([0.0, 0.5, 1.0]),
    )


def assert_identical(a, b):
    """Bit-for-bit measurement equality, ignoring the per-thread
    workload-name annotation the placement path adds."""
    assert a.workload_name == b.workload_name
    assert a.config == b.config
    assert a.mean_power == b.mean_power
    assert a.power_std == b.power_std
    assert a.sample_count == b.sample_count
    assert a.thread_counters == b.thread_counters


class TestHomogeneousDegeneracy:
    def test_homogeneous_placement_reproduces_run_bit_for_bit(self, machine):
        for seed in range(8):
            kernel = random_kernel(seed)
            config = CONFIGS[seed % len(CONFIGS)]
            plain = machine.run(kernel, config)
            placed = machine.run(
                Placement.homogeneous(kernel, config), config
            )
            assert_identical(plain, placed)
            assert placed.thread_workloads == (kernel.name,) * config.threads

    def test_homogeneous_placement_through_run_many(self, machine):
        kernels = [random_kernel(seed) for seed in range(20, 24)]
        config = MachineConfig(2, 4)
        placements = [
            Placement.homogeneous(kernel, config) for kernel in kernels
        ]
        batched = machine.run_many(placements, config)
        singles = [machine.run(kernel, config) for kernel in kernels]
        for one, many in zip(singles, batched):
            assert_identical(one, many)

    def test_profiled_workload_placement_matches_run(self, machine):
        from repro.workloads import spec_cpu2006

        workload = spec_cpu2006()[0]
        config = MachineConfig(4, 2)
        plain = machine.run(workload, config)
        placed = machine.run(
            Placement.homogeneous(workload, config), config
        )
        assert_identical(plain, placed)


class TestPermutationInvariance:
    def test_within_core_permutation_leaves_power_unchanged(self, machine):
        for seed in range(6):
            rng = random.Random(1000 + seed)
            kernels = [
                random_kernel(100 + 4 * seed + index) for index in range(4)
            ]
            config = MachineConfig(2, 4)
            base = Placement(
                name=f"perm-{seed}",
                core_groups=(tuple(kernels), tuple(reversed(kernels))),
            )
            reference = machine.run(base, config)
            for _ in range(3):
                groups = [list(group) for group in base.core_groups]
                for group in groups:
                    rng.shuffle(group)
                shuffled = Placement(
                    name=f"perm-{seed}",
                    core_groups=tuple(tuple(group) for group in groups),
                )
                permuted = machine.run(shuffled, config)
                assert permuted.mean_power == reference.mean_power
                assert permuted.power_std == reference.power_std
                # Per-thread counters permute with the placement: same
                # multiset, order follows the declaration.
                key = lambda counters: sorted(sorted(c.items()) for c in counters)
                assert key(permuted.thread_counters) == key(
                    reference.thread_counters
                )

    def test_whole_core_permutation_leaves_power_unchanged(self, machine):
        a, b, c, d = (random_kernel(200 + index) for index in range(4))
        config = MachineConfig(2, 2)
        first = Placement("cores", ((a, b), (c, d)))
        second = Placement("cores", ((c, d), (a, b)))
        assert (
            machine.run(first, config).mean_power
            == machine.run(second, config).mean_power
        )

    def test_counters_follow_declaration_order(self, machine):
        fast = random_kernel(301, size=16)
        slow = Kernel(
            "chain", (KernelInstruction("fadd", dep_distance=1),) * 16
        )
        config = MachineConfig(1, 2)
        measurement = machine.run(Placement("ab", ((fast, slow),)), config)
        flipped = machine.run(Placement("ab", ((slow, fast),)), config)
        assert measurement.thread_workloads == (fast.name, "chain")
        assert flipped.thread_workloads == ("chain", fast.name)
        assert measurement.thread_counters[0] == flipped.thread_counters[1]
        assert measurement.thread_counters[1] == flipped.thread_counters[0]


class TestMixedContention:
    def test_mixed_solver_degenerates_to_homogeneous(self, power7_arch):
        pipeline = CorePipelineModel(power7_arch)
        for seed in (11, 13, 17):
            kernel = random_kernel(seed)
            summary = pipeline.summarize(kernel)
            for smt in (2, 4):
                homogeneous = pipeline.activity_from_summary(summary, smt)
                mixed = pipeline.mixed_core_activities([summary] * smt, smt)
                for activity in mixed:
                    assert activity.ipc == pytest.approx(
                        homogeneous.ipc, rel=1e-9
                    )

    def test_latency_bound_thread_immune_to_co_runner(self, machine):
        chain = Kernel(
            "imm-chain", (KernelInstruction("fadd", dep_distance=1),) * 32
        )
        hog = Kernel("imm-hog", (KernelInstruction("addic"),) * 32)
        config = MachineConfig(1, 2)
        solo = machine.run(chain, config)
        mixed = machine.run(Placement("imm", ((chain, hog),)), config)
        assert mixed.thread_ipc(0) == pytest.approx(
            solo.thread_ipc(0), rel=1e-6
        )

    def test_asymmetric_corunner_beats_self_coschedule(self, machine):
        """The SMT story: a compute thread keeps more of its throughput
        next to a memory-bound thread than next to a copy of itself."""
        compute = Kernel("asym-ilp", (KernelInstruction("addic"),) * 64)
        stalled = Kernel(
            "asym-mem",
            tuple(
                KernelInstruction(
                    "ld", source_level="MEM", address=0x5000_0000 + i * 4096
                )
                for i in range(64)
            ),
        )
        config = MachineConfig(1, 4)
        with_self = machine.run(compute, config)
        mixed = machine.run(
            Placement(
                "asym", ((compute, stalled, stalled, stalled),)
            ),
            config,
        )
        assert mixed.thread_ipc(0) > with_self.thread_ipc(0)

    def test_same_named_distinct_workloads_never_alias(self, machine):
        """Two different profiled workloads sharing a name must not be
        collapsed into one homogeneous copy."""
        from repro.workloads.profiles import ActivityProfile, ProfiledWorkload

        def profile(ipc):
            return ActivityProfile(
                name="alias",
                ipc=ipc,
                unit_mix={"FXU": 0.5, "LSU": 0.4},
                memory_per_insn=0.3,
                locality={"L1": 0.9, "L2": 0.06, "L3": 0.03, "MEM": 0.01},
            )

        fast = ProfiledWorkload(profile(2.0))
        slow = ProfiledWorkload(profile(0.2))
        config = MachineConfig(1, 2)
        placement = Placement("alias-mix", ((fast, slow),))
        assert not placement.is_homogeneous
        measurement = machine.run(placement, config)
        ipcs = measurement.thread_ipcs()
        assert ipcs[0] > 4 * ipcs[1]

    def test_repeated_mixed_cores_solved_once(self, machine):
        a = random_kernel(970, size=24)
        b = random_kernel(971, size=24)
        config = MachineConfig(8, 2)
        placement = Placement.round_robin([a, b], config, name="memo-mix")
        machine._mixed_cache.clear()
        measurement = machine.run(placement, config)
        # Eight identical (a, b) cores share one contention solve and
        # one counter dict per distinct thread activity.
        assert len(machine._mixed_cache) == 1
        assert measurement.thread_counters[0] is measurement.thread_counters[2]
        assert measurement.thread_counters[1] is measurement.thread_counters[3]

    def test_placement_shape_validated(self, machine):
        kernel = random_kernel(401)
        with pytest.raises(MeasurementError):
            machine.run(
                Placement.homogeneous(kernel, MachineConfig(2, 2)),
                MachineConfig(4, 2),
            )
        # Ragged core groups construct (heterogeneous topologies need
        # per-cluster widths) but never fit a homogeneous config,
        # whose SMT mode is chip-wide.
        ragged = Placement("ragged", ((kernel, kernel), (kernel,)))
        with pytest.raises(ValueError):
            ragged.validate_against(MachineConfig(2, 2))
        with pytest.raises(MeasurementError):
            machine.run(ragged, MachineConfig(2, 2))


class TestPStateIdentity:
    def test_nominal_pstate_reproduces_pre_dvfs_exactly(self, machine):
        explicit_nominal = PState("nominal", 1.0, 1.0)
        for seed in range(6):
            kernel = random_kernel(500 + seed)
            config = CONFIGS[seed % len(CONFIGS)]
            pre = machine.run(kernel, config)
            post = machine.run(
                kernel, config.with_p_state(explicit_nominal)
            )
            assert_identical(pre, post)

    def test_nominal_pstate_reproduces_mixed_placements_exactly(self, machine):
        config = MachineConfig(2, 2)
        placement = Placement(
            "nom-mix",
            tuple(
                (random_kernel(600 + 2 * core), random_kernel(601 + 2 * core))
                for core in range(2)
            ),
        )
        pre = machine.run(placement, config)
        post = machine.run(
            placement, config.with_p_state(PState("nominal", 1.0, 1.0))
        )
        assert_identical(pre, post)

    def test_frequency_scales_rates_not_ipc(self, machine):
        kernel = random_kernel(700)
        config = MachineConfig(2, 2)
        slow = config.with_p_state(PState("half", 0.5, 1.0))
        nominal = machine.run(kernel, config)
        scaled = machine.run(kernel, slow)
        n0, s0 = nominal.thread_counters[0], scaled.thread_counters[0]
        assert s0["PM_RUN_CYC"] == pytest.approx(0.5 * n0["PM_RUN_CYC"])
        assert s0["PM_RUN_INST_CMPL"] == pytest.approx(
            0.5 * n0["PM_RUN_INST_CMPL"]
        )
        assert scaled.thread_ipc(0) == pytest.approx(nominal.thread_ipc(0))

    def test_voltage_scales_dynamic_power_quadratically(self, power7_arch):
        pipeline = CorePipelineModel(power7_arch)
        power_model = GroundTruthPowerModel(power7_arch)
        kernel = random_kernel(800)
        activity = pipeline.activity(kernel, smt=1)
        config = MachineConfig(4, 1)
        nominal = power_model.chip_power([activity] * 4, config)
        dimmed = power_model.chip_power(
            [activity] * 4,
            config.with_p_state(PState("dim", 1.0, 0.9)),
        )
        dynamic = 4 * power_model.thread_dynamic_power(activity)
        assert dimmed == pytest.approx(
            nominal - dynamic * (1.0 - 0.9 ** 2)
        )
        # Static power never scales with the operating point: an idle
        # chip draws the same watts at any p-state.
        idle_activities = [activity.scaled(0.0)] * 4
        assert power_model.chip_power(
            idle_activities, config.with_p_state(PState("dim", 0.5, 0.7))
        ) == power_model.chip_power(idle_activities, config)

    def test_mixed_smt4_placement_at_non_nominal_p_state_via_run_many(
        self, machine
    ):
        """The acceptance scenario: two distinct kernels sharing one
        SMT-4 core, measured at a non-nominal operating point through
        the batched entry path."""
        compute = random_kernel(950, size=32)
        stalled = Kernel(
            "accept-mem",
            tuple(
                KernelInstruction(
                    "ld", source_level="MEM", address=0x6000_0000 + i * 4096
                )
                for i in range(32)
            ),
        )
        config = MachineConfig(1, 4, PState("p2", 0.85, 0.94))
        placement = Placement(
            "accept-mix", ((compute, stalled, compute, stalled),)
        )
        nominal_config = MachineConfig(1, 4)
        scaled, nominal = machine.run_many(
            [placement, placement], config
        )[0], machine.run(placement, nominal_config)
        assert scaled.config.label == "1-4@p2"
        assert scaled.is_heterogeneous
        assert scaled.mean_power < nominal.mean_power
        assert scaled.thread_counters[0] != scaled.thread_counters[1]
        assert scaled.thread_ipc(0) == pytest.approx(
            nominal.thread_ipc(0)
        )

    def test_lower_operating_points_draw_less_power(self, machine):
        kernel = random_kernel(900)
        from repro.sim import standard_pstates

        config = MachineConfig(8, 2)
        powers = [
            machine.run(kernel, config.with_p_state(p_state)).mean_power
            for p_state in standard_pstates()
        ]
        assert powers == sorted(powers, reverse=True)
