"""Vector plane == scalar reference: bit-exact equivalence properties.

The vectorized measurement plane (:mod:`repro.sim.vector`) must
reproduce the scalar walk *bit for bit* -- Measurements, every counter
reading, chip power and the sensor noise draws -- over arbitrary
kernels, placements, configurations, operating points and windows.
These tests drive both paths (``Machine(vector=True)`` vs
``Machine(vector=False)``) over randomized inputs and assert strict
equality (dataclass ``==`` on Measurement compares every float), plus
a degenerate-batch edge-case suite and draw-level checks of the
batched MT19937 sensor seeding.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import ExperimentPlan, SerialExecutor
from repro.sim import (
    Kernel,
    KernelInstruction,
    Machine,
    MachineConfig,
    Placement,
)
from repro.sim.pstate import get_pstate, standard_pstates
from repro.sim.sensors import MT_BATCH_MIN, PowerSensor, _mt_first_uniform_pairs
from repro.sim.vector import MIN_VECTOR_BATCH
from repro.stressmark.search import build_stressmark
from repro.workloads.spec import spec_cpu2006

_DURATION = 1.0

POOL = (
    "addic", "mulldo", "add", "nor", "lwz", "lxvw4x", "xvmaddadp",
    "fadd", "lhaux", "ldu", "stfd", "stw", "b", "nop", "divd",
)
MEMORY_POOL = ("lwz", "lxvw4x", "ldu", "stfd", "stw", "lhaux")
LEVELS = (None, "L1", "L1", "L2", "L3", "MEM")


def random_kernel(seed, size=None, name=None):
    rng = random.Random(seed)
    size = size or rng.randint(2, 96)
    instructions = []
    for _ in range(size):
        mnemonic = rng.choice(POOL)
        level = rng.choice(LEVELS) if mnemonic in MEMORY_POOL else None
        distance = (
            rng.randint(1, size - 1)
            if rng.random() < 0.4 and size > 1
            else None
        )
        instructions.append(
            KernelInstruction(
                mnemonic,
                dep_distance=distance,
                source_level=level,
                address=(
                    0x1000_0000 + rng.randrange(1 << 20) * 8
                    if level
                    else None
                ),
            )
        )
    return Kernel(
        name=name or f"vrand-{seed}",
        instructions=tuple(instructions),
        operand_entropy=rng.choice([0.0, 0.5, 1.0]),
    )


@pytest.fixture(scope="module")
def machines(power7_arch):
    return Machine(power7_arch, vector=True), Machine(power7_arch, vector=False)


def assert_batch_identical(machines, workloads, config, duration=_DURATION):
    vector, scalar = machines
    fast = vector.run_many(workloads, config, duration)
    reference = scalar.run_many(workloads, config, duration)
    assert fast == reference
    return fast


class TestBitIdentity:
    @given(seed=st.integers(0, 5_000))
    @settings(max_examples=25, deadline=None)
    def test_random_kernel_batches(self, machines, seed):
        """Randomized kernels x configs x p-states: strict equality."""
        rng = random.Random(seed)
        kernels = [
            random_kernel(seed * 100 + index)
            for index in range(MIN_VECTOR_BATCH + rng.randint(0, 8))
        ]
        config = MachineConfig(
            rng.randint(1, 8), rng.choice([1, 2, 4])
        )
        if rng.random() < 0.5:
            config = config.with_p_state(
                rng.choice(standard_pstates())
            )
        duration = rng.choice([0.25, 1.0, 10.0])
        assert_batch_identical(machines, kernels, config, duration)

    def test_heterogeneous_plan_single_pass(self, machines, power7_arch):
        """A whole plan across many configs, p-states and windows
        evaluates in one tensor pass and matches the scalar walk."""
        vector, scalar = machines
        kernels = [random_kernel(9000 + index) for index in range(12)]
        kernels.append(
            build_stressmark(power7_arch, ("mulldo", "lxvw4x"), 96)
        )
        configs = [
            MachineConfig(1, 1),
            MachineConfig(8, 4),
            MachineConfig(3, 2).with_p_state(get_pstate("p2")),
            MachineConfig(8, 1).with_p_state(get_pstate("turbo")),
        ]
        for duration in (0.5, 10.0):
            plan = ExperimentPlan.cross(kernels, configs, duration=duration)
            assert vector.run_plan(plan) == scalar.run_plan(plan)

    def test_mixed_durations_in_one_cell_batch(self, machines):
        """run_cells spans windows; sensor sample counts still match."""
        vector, scalar = machines
        from repro.exec.plan import PlanCell

        kernels = [random_kernel(7000 + index) for index in range(10)]
        cells = [
            PlanCell(kernel, MachineConfig(2, 2), duration)
            for kernel in kernels
            for duration in (0.5, 2.0)
        ]
        assert vector.run_cells(cells) == scalar.run_cells(cells)

    def test_executor_parity_with_scalar_machine(self, power7_arch):
        """SerialExecutor over a vector machine == scalar machine."""
        kernels = [random_kernel(3000 + index) for index in range(16)]
        plan = ExperimentPlan.cross(
            kernels,
            [MachineConfig(8, smt) for smt in (1, 2, 4)],
            duration=_DURATION,
        )
        fast = SerialExecutor(Machine(power7_arch, vector=True)).run(plan)
        reference = SerialExecutor(
            Machine(power7_arch, vector=False)
        ).run(plan)
        assert fast == reference

    def test_same_content_different_name_draws_distinct_noise(
        self, machines
    ):
        base = random_kernel(42, size=24)
        renamed = Kernel(
            name="renamed-twin",
            instructions=base.instructions,
            operand_entropy=base.operand_entropy,
        )
        batch = [base, renamed] * MIN_VECTOR_BATCH
        measurements = assert_batch_identical(
            machines, batch, MachineConfig(2, 2)
        )
        assert measurements[0].mean_power != measurements[1].mean_power

    def test_duplicates_dedupe_to_equal_measurements(self, machines):
        kernel = random_kernel(77, size=24)
        batch = [kernel] * (MIN_VECTOR_BATCH * 2)
        measurements = assert_batch_identical(
            machines, batch, MachineConfig(4, 2)
        )
        assert all(m == measurements[0] for m in measurements)


class TestMixedAndDegenerateBatches:
    def test_mixed_kernel_placement_profile_batch(
        self, machines, small_kernel_factory
    ):
        """Kernels ride the tensor pass; placements and SPEC proxies
        fall back to the scalar walk in place, order preserved."""
        mix = Placement(
            "mix",
            (
                (
                    small_kernel_factory("addic", count=24),
                    small_kernel_factory("ld", count=24, level="MEM"),
                ),
            ),
        )
        batch = (
            [random_kernel(500 + index) for index in range(MIN_VECTOR_BATCH)]
            + [spec_cpu2006()[0]]
            + [mix]
            + [random_kernel(600)]
        )
        assert_batch_identical(machines, batch, MachineConfig(1, 2))

    def test_empty_batch(self, machines):
        vector, scalar = machines
        assert vector.run_many([], MachineConfig(1, 1)) == []
        assert scalar.run_many([], MachineConfig(1, 1)) == []

    def test_empty_plan(self, machines):
        vector, _ = machines
        plan = ExperimentPlan([])
        assert vector.run_plan(plan) == []
        assert SerialExecutor(vector).run(plan) == []

    def test_single_cell_below_threshold_matches(self, machines):
        """Tiny batches decline the tensor pass but stay identical."""
        kernel = random_kernel(321, size=16)
        assert_batch_identical(machines, [kernel], MachineConfig(8, 4))

    def test_single_kernel_run_matches_batch(self, machines):
        vector, scalar = machines
        kernel = random_kernel(654, size=16)
        config = MachineConfig(2, 1)
        direct = vector.run(kernel, config, _DURATION)
        assert direct == scalar.run(kernel, config, _DURATION)
        batched = vector.run_many(
            [kernel] * (MIN_VECTOR_BATCH + 1), config, _DURATION
        )
        assert all(m == direct for m in batched)

    def test_wide_batch_crosses_mt_threshold(self, machines):
        """Batches wide enough for the vectorized MT seeding still
        reproduce the per-cell generator draws exactly."""
        kernels = [
            random_kernel(10_000 + index, size=8)
            for index in range(MT_BATCH_MIN + 16)
        ]
        assert_batch_identical(machines, kernels, MachineConfig(1, 1))


class TestBatchedSensorPlane:
    def test_mt_uniforms_match_cpython(self):
        rng = random.Random(99)
        seeds = [rng.randrange(2**32) for _ in range(512)]
        seeds += [0, 1, 2**32 - 1]
        first, second = _mt_first_uniform_pairs(seeds)
        for seed, u1, u2 in zip(seeds, first.tolist(), second.tolist()):
            reference = random.Random(seed)
            assert (reference.random(), reference.random()) == (u1, u2)

    @given(count=st.integers(1, 40), base_seed=st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_measure_batch_equals_measure(self, count, base_seed):
        sensor = PowerSensor()
        rng = random.Random(base_seed)
        powers = [50.0 + rng.random() * 150.0 for _ in range(count)]
        seeds = [rng.randrange(2**32) for _ in range(count)]
        means, std, samples = sensor.measure_batch(powers, 1.0, seeds)
        for power, seed, mean in zip(powers, seeds, means):
            reference = sensor.measure(power, 1.0, seed)
            assert mean == reference.mean_power
            assert std == reference.power_std
            assert samples == reference.sample_count

    def test_wide_measure_batch_equals_measure(self):
        sensor = PowerSensor()
        rng = random.Random(17)
        count = MT_BATCH_MIN + 32
        powers = [60.0 + rng.random() * 100.0 for _ in range(count)]
        seeds = [rng.randrange(2**32) for _ in range(count)]
        means, _, _ = sensor.measure_batch(powers, 10.0, seeds)
        for power, seed, mean in zip(powers, seeds, means):
            assert mean == sensor.measure(power, 10.0, seed).mean_power


class TestCacheAccounting:
    def test_cache_stats_exposes_bounded_lrus(self, power7_arch):
        machine = Machine(power7_arch, vector=True)
        kernels = [random_kernel(800 + index) for index in range(12)]
        machine.run_many(kernels, MachineConfig(8, 2), _DURATION)
        machine.run_many(kernels, MachineConfig(8, 4), _DURATION)
        stats = machine.cache_stats()
        for name in ("activity", "mixed_core", "summaries", "packed", "stacks"):
            assert name in stats
            assert stats[name]["size"] <= stats[name]["capacity"]
        # The second configuration re-used every packed kernel.
        assert stats["packed"]["hits"] >= len(kernels)
        assert stats["summaries"]["misses"] >= len(kernels)

    def test_lru_caps_and_counts(self):
        from repro.caching import LRUCache

        cache = LRUCache(3, "test")
        for index in range(5):
            cache.put(index, index)
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.get(0) is None and cache.misses == 1
        assert cache.get(4) == 4 and cache.hits == 1
        # Refreshing 2 makes 3 the LRU victim.
        cache.get(2)
        cache.put(5, 5)
        assert 3 not in cache and 2 in cache
        stats = cache.stats()
        assert stats["size"] == 3 and stats["capacity"] == 3


class TestFusedProgramCaches:
    def test_canonical_stack_key_hits_on_permuted_batches(self, power7_arch):
        """Permuting a kernel batch re-uses the compiled stack (memo
        keys canonicalize to sorted content digests, not batch order)."""
        machine = Machine(power7_arch, vector=True)
        scalar = Machine(power7_arch, vector=False)
        kernels = [random_kernel(4200 + index) for index in range(10)]
        config = MachineConfig(4, 2)
        first = machine.run_many(kernels, config, _DURATION)
        assert first == scalar.run_many(kernels, config, _DURATION)
        permuted = list(kernels)
        random.Random(7).shuffle(permuted)
        hits_before = machine.cache_stats()["stacks"]["hits"]
        second = machine.run_many(permuted, config, _DURATION)
        assert machine.cache_stats()["stacks"]["hits"] > hits_before
        assert second == scalar.run_many(permuted, config, _DURATION)

    def test_sensor_draw_constants_cached_across_batches(self, power7_arch):
        """Re-measuring the same cells re-uses cached MT19937 draws."""
        from repro.sim.sensors import draw_cache_stats

        machine = Machine(power7_arch, vector=True)
        kernels = [random_kernel(4400 + index) for index in range(12)]
        config = MachineConfig(8, 1)
        first = machine.run_many(kernels, config, _DURATION)
        hits_before = draw_cache_stats()["hits"]
        assert machine.run_many(kernels, config, _DURATION) == first
        assert draw_cache_stats()["hits"] >= hits_before + len(kernels)

    def test_plan_program_cache_replays_bit_identically(self, power7_arch):
        """run_cells(plan=...) caches the fused program; the cached
        replay produces the same bytes as scalar and as compile-time."""
        machine = Machine(power7_arch, vector=True)
        scalar = Machine(power7_arch, vector=False)
        kernels = [random_kernel(4600 + index) for index in range(9)]
        plan = ExperimentPlan.cross(
            kernels,
            [MachineConfig(2, 2), MachineConfig(4, 1)],
            duration=_DURATION,
        )
        assert machine._vector.cached_program(plan) is None
        first = machine.run_cells(plan.cells, plan=plan)
        program = machine._vector.cached_program(plan)
        assert program is not None
        replay = machine.run_cells(plan.cells, plan=plan)
        assert replay == first
        assert machine._vector.cached_program(plan) is program
        assert first == scalar.run_cells(plan.cells)

    def test_program_cache_is_weak(self, power7_arch):
        """Dropping the plan drops its compiled program."""
        machine = Machine(power7_arch, vector=True)
        plan = ExperimentPlan.cross(
            [random_kernel(4800 + index) for index in range(8)],
            [MachineConfig(4, 2)],
            duration=_DURATION,
        )
        machine.run_cells(plan.cells, plan=plan)
        assert machine._vector.cached_program(plan) is not None
        del plan
        import gc

        gc.collect()
        assert len(machine._vector._programs) == 0
