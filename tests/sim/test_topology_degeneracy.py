"""Single-cluster degeneracy: the old world, spelled as a topology.

The refactor's acceptance bar: every pre-refactor ``MachineConfig`` run
and its one-cluster ``ChipTopology`` spelling must agree *bit for bit*
-- labels, noise seeds and draws, counter readings, plan identities and
store keys -- with the vector plane on and off.  The suite is
randomized (seeded) over kernels, placements, CMP-SMT modes and
operating points.
"""

import random

import pytest

from repro.exec.plan import ExperimentPlan, PlanCell
from repro.sim import (
    ChipTopology,
    Kernel,
    KernelInstruction,
    Machine,
    MachineConfig,
    Placement,
)
from repro.sim.pstate import standard_pstates

_DURATION = 2.0

_POOL = (
    "add", "mulld", "xvmaddadp", "lwz", "stfd", "fadd", "ld", "divw",
    "bc", "vxor",
)
_MEMORY_POOL = {"lwz", "stfd", "ld"}
_LEVELS = ("L1", "L2", "L3", "MEM")


def random_kernel(seed, size=None):
    rng = random.Random(seed)
    size = size or rng.randint(4, 64)
    instructions = []
    for index in range(size):
        mnemonic = rng.choice(_POOL)
        level = rng.choice(_LEVELS) if mnemonic in _MEMORY_POOL else None
        distance = (
            rng.randint(1, size - 1)
            if size > 1 and rng.random() < 0.3
            else None
        )
        instructions.append(
            KernelInstruction(
                mnemonic,
                dep_distance=distance,
                source_level=level,
                address=0x4000_0000 + index * 256 if level else None,
            )
        )
    return Kernel(
        name=f"degen-{seed}",
        instructions=tuple(instructions),
        operand_entropy=rng.choice([0.0, 0.5, 1.0]),
    )


def random_config(rng):
    return MachineConfig(
        cores=rng.randint(1, 8),
        smt=rng.choice((1, 2, 4)),
        p_state=rng.choice(standard_pstates()),
    )


@pytest.fixture(scope="module")
def machines(power7_arch):
    return {
        True: Machine(power7_arch, vector=True),
        False: Machine(power7_arch, vector=False),
    }


class TestRunDegeneracy:
    @pytest.mark.parametrize("vector", [True, False])
    def test_randomized_run_bit_identity(self, machines, vector):
        """100 random (kernel, config) pairs, both spellings."""
        rng = random.Random(1234)
        machine = machines[vector]
        for trial in range(100):
            kernel = random_kernel(rng.randint(0, 10_000))
            config = random_config(rng)
            topology = ChipTopology.from_config(config)
            assert topology.label == config.label
            via_config = machine.run(kernel, config, _DURATION)
            via_topology = machine.run(kernel, topology, _DURATION)
            assert via_config == via_topology, (trial, config.label)
            # The degenerate spelling collapses: same Measurement
            # type, same config object semantics, same noise draws.
            assert via_topology.config == config
            assert via_topology.mean_power == via_config.mean_power
            assert (
                via_topology.thread_counters == via_config.thread_counters
            )

    @pytest.mark.parametrize("vector", [True, False])
    def test_batched_run_many_bit_identity(self, machines, vector):
        rng = random.Random(77)
        machine = machines[vector]
        kernels = [random_kernel(5000 + index) for index in range(12)]
        config = random_config(rng)
        topology = ChipTopology.from_config(config)
        assert machine.run_many(
            kernels, config, _DURATION
        ) == machine.run_many(kernels, topology, _DURATION)

    @pytest.mark.parametrize("vector", [True, False])
    def test_placement_degeneracy(self, machines, vector):
        machine = machines[vector]
        rng = random.Random(9)
        for trial in range(20):
            config = random_config(rng)
            topology = ChipTopology.from_config(config)
            workloads = [
                random_kernel(7000 + trial * 8 + slot)
                for slot in range(config.smt)
            ]
            placement = Placement.round_robin(
                workloads, config, name=f"mix-{trial}"
            )
            spelled = Placement.round_robin(
                workloads, topology, name=f"mix-{trial}"
            )
            assert placement == spelled
            assert machine.run(placement, config, _DURATION) == machine.run(
                spelled, topology, _DURATION
            )

    def test_vector_and_scalar_agree_on_degenerate_spelling(
        self, machines
    ):
        rng = random.Random(31)
        kernels = [random_kernel(8000 + index) for index in range(10)]
        config = random_config(rng)
        topology = ChipTopology.from_config(config)
        assert machines[True].run_many(
            kernels, topology, _DURATION
        ) == machines[False].run_many(kernels, topology, _DURATION)

    def test_idle_degeneracy(self, machines):
        config = MachineConfig(2, 2)
        topology = ChipTopology.from_config(config)
        for machine in machines.values():
            assert machine.run_idle(config, _DURATION) == machine.run_idle(
                topology, _DURATION
            )


class TestPlanDegeneracy:
    def test_cell_identity_and_store_keys_collapse(self, power7_arch):
        rng = random.Random(55)
        digest = power7_arch.content_digest()
        for trial in range(50):
            kernel = random_kernel(9000 + trial)
            config = random_config(rng)
            topology = ChipTopology.from_config(config)
            via_config = PlanCell(kernel, config, _DURATION)
            via_topology = PlanCell(kernel, topology, _DURATION)
            assert via_topology.identity() == via_config.identity()
            assert via_topology.key(
                "POWER7", 0, digest
            ) == via_config.key("POWER7", 0, digest)

    def test_both_spellings_dedup_into_one_cell(self):
        kernel = random_kernel(1)
        config = MachineConfig(4, 2)
        plan = ExperimentPlan(
            [
                PlanCell(kernel, config, _DURATION),
                PlanCell(kernel, ChipTopology.from_config(config), _DURATION),
            ]
        )
        assert plan.size == 1
        assert plan.requested == 2

    def test_heterogeneous_cells_do_not_collapse(self):
        kernel = random_kernel(2)
        from repro.sim import parse_topology

        plan = ExperimentPlan(
            [
                PlanCell(kernel, MachineConfig(4, 2), _DURATION),
                PlanCell(kernel, parse_topology("4-2+4little"), _DURATION),
            ]
        )
        assert plan.size == 2
