"""ChipTopology model: labels, parsing, serialization, march clusters."""

import pytest

from repro.errors import DefinitionError
from repro.isa.registry import load_default_isa
from repro.march import get_architecture, parse_march_text
from repro.sim import (
    ChipTopology,
    CoreCluster,
    MachineConfig,
    parse_topology,
    topology_from_arch,
    topology_ladder,
)
from repro.sim.pstate import NOMINAL, get_pstate
from repro.sim.topology import DEFAULT_CORE_CLASSES


class TestCoreCluster:
    def test_label_grammar(self):
        assert CoreCluster(cores=4, smt=4).label == "4-4"
        assert CoreCluster(cores=4, smt=1).label == "4-1"
        assert CoreCluster("big", 4, 1).label == "4big"
        assert CoreCluster("big", 4, 2).label == "4big-2"
        assert (
            CoreCluster("big", 4, 2, get_pstate("p2")).label == "4big-2@p2"
        )
        assert (
            CoreCluster(cores=2, smt=4, p_state=get_pstate("p3")).label
            == "2-4@p3"
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreCluster(cores=0)
        with pytest.raises(ValueError):
            CoreCluster(cores=1, smt=3)
        with pytest.raises(ValueError):
            CoreCluster(name="big cluster", cores=1)

    def test_threads_and_round_trip(self):
        cluster = CoreCluster(
            "little", 4, 2, get_pstate("p2"), "POWER7_ECO"
        )
        assert cluster.threads == 8
        assert CoreCluster.from_dict(cluster.to_dict()) == cluster


class TestChipTopology:
    def test_label_joins_clusters(self):
        topology = parse_topology("4big-2@p2+4little")
        assert topology.label == "4big-2@p2+4little"
        assert topology.cores == 8
        assert topology.threads == 12
        assert topology.smt_enabled

    def test_needs_distinguishable_clusters(self):
        cluster = CoreCluster("big", 4, 1)
        with pytest.raises(ValueError):
            ChipTopology(clusters=(cluster, cluster))
        with pytest.raises(ValueError):
            ChipTopology(clusters=())

    def test_degenerate_config_round_trip(self):
        config = MachineConfig(4, 2, get_pstate("p2"))
        topology = ChipTopology.from_config(config)
        assert topology.label == config.label
        assert topology.degenerate_config() == config
        # Named or cross-class single clusters are not degenerate.
        assert (
            ChipTopology(
                clusters=(CoreCluster("big", 4, 2),)
            ).degenerate_config()
            is None
        )
        assert (
            ChipTopology(
                clusters=(
                    CoreCluster(cores=4, smt=2, core_class="POWER7_ECO"),
                )
            ).degenerate_config()
            is None
        )

    def test_with_p_state_moves_every_cluster(self):
        topology = parse_topology("4big+4little")
        moved = topology.with_p_state(get_pstate("p2"))
        assert moved.label == "4big@p2+4little@p2"
        per = topology.with_cluster_p_states(
            [get_pstate("turbo"), NOMINAL]
        )
        assert per.label == "4big@turbo+4little"
        with pytest.raises(ValueError):
            topology.with_cluster_p_states([NOMINAL])

    def test_round_trip(self):
        topology = parse_topology("2big-4@turbo+6little-2@p3")
        assert ChipTopology.from_dict(topology.to_dict()) == topology

    def test_cluster_slices(self):
        topology = parse_topology("2big-2+4little")
        slices = topology.cluster_slices()
        assert slices[0][1] == slice(0, 4)
        assert slices[1][1] == slice(4, 8)

    def test_core_classes(self):
        topology = parse_topology("2big+2little+2eco")
        assert topology.core_classes == (None, "POWER7_ECO")


class TestParseTopology:
    def test_default_name_map(self):
        assert DEFAULT_CORE_CLASSES["little"] == "POWER7_ECO"
        topology = parse_topology("4big+4little")
        assert topology.clusters[0].core_class is None
        assert topology.clusters[1].core_class == "POWER7_ECO"

    def test_unnamed_spellings(self):
        assert parse_topology("4-4").degenerate_config() == MachineConfig(
            4, 4
        )
        assert parse_topology("4").degenerate_config() == MachineConfig(4, 1)

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_topology("4huge")
        with pytest.raises(ValueError):
            parse_topology("big4")
        with pytest.raises(ValueError):
            parse_topology("4big@warp9")
        with pytest.raises(ValueError):
            parse_topology("4big-3")

    def test_custom_class_map(self):
        topology = parse_topology(
            "2fast+2slow",
            core_classes={"fast": None, "slow": "POWER7_ECO"},
        )
        assert topology.clusters[1].core_class == "POWER7_ECO"


class TestTopologyLadder:
    def test_ratio_ladder(self):
        ladder = topology_ladder(8, step=2)
        assert [t.label for t in ladder] == [
            "8big",
            "6big+2little",
            "4big+4little",
            "2big+6little",
            "8little",
        ]

    def test_smt_carries(self):
        ladder = topology_ladder(4, step=2, smt=2)
        assert ladder[1].label == "2big-2+2little-2"


_CLUSTERED = """
march MINI

[chip]
cores = 8
smt = 4
frequency_ghz = 3.0
dispatch_width = 6
issue_width = 8

[unit FXU]
pipes = 2
counter = PM_FXU_FIN

[cache L1]
level = 1
size_kb = 32
line_bytes = 128
ways = 8
latency = 2

[memory]
latency = 230
counter = PM_DATA_FROM_LMEM

[counter PM_RUN_CYC]
[counter PM_RUN_INST_CMPL]
[counter PM_FXU_FIN]
[counter PM_LD_REF_L1]
[counter PM_ST_REF_L1]
[counter PM_DATA_FROM_LMEM]

[formula IPC]
expr = PM_RUN_INST_CMPL / PM_RUN_CYC

[cluster big]
core_class = self
cores = 4
smt = 4

[cluster little]
core_class = POWER7_ECO
cores = 4
smt = 2
p_state = p2

[iproperties]
default type:int     | FXU | 2 | 1.0
default type:load    | FXU | 3 | 1.0
default type:store   | FXU | 3 | 1.0
default type:float   | FXU | 6 | 1.0
default type:vector  | FXU | 6 | 1.0
default type:decimal | FXU | 7 | 2.0
default type:branch  | FXU | 2 | 1.0
default type:cr      | FXU | 2 | 1.0
default type:nop     | -   | 1 | 1.0
"""


class TestMarchClusterBlocks:
    def test_cluster_blocks_parse(self):
        arch = parse_march_text(_CLUSTERED, load_default_isa())
        assert len(arch.clusters) == 2
        big, little = arch.clusters
        assert big.core_class == "self" and big.smt == 4
        assert little.core_class == "POWER7_ECO"
        assert little.p_state == "p2"

    def test_default_topology_from_arch(self):
        arch = parse_march_text(_CLUSTERED, load_default_isa())
        topology = topology_from_arch(arch)
        assert topology.label == "4big-4+4little-2@p2"
        assert topology.clusters[0].core_class is None
        assert topology.clusters[1].core_class == "POWER7_ECO"

    def test_homogeneous_arch_has_no_topology(self, power7_arch):
        assert power7_arch.clusters == ()
        assert topology_from_arch(power7_arch) is None

    def test_cluster_exceeding_own_chip_rejected(self):
        bad = _CLUSTERED.replace("cores = 4\nsmt = 4", "cores = 12\nsmt = 4")
        with pytest.raises(DefinitionError):
            parse_march_text(bad, load_default_isa())

    def test_duplicate_cluster_names_rejected(self):
        bad = _CLUSTERED.replace("[cluster little]", "[cluster big]")
        with pytest.raises(DefinitionError):
            parse_march_text(bad, load_default_isa())

    def test_cluster_blocks_join_content_digest(self):
        isa = load_default_isa()
        with_clusters = parse_march_text(_CLUSTERED, isa)
        without = parse_march_text(
            _CLUSTERED[: _CLUSTERED.index("[cluster big]")]
            + _CLUSTERED[_CLUSTERED.index("[iproperties]") :],
            isa,
        )
        assert with_clusters.content_digest() != without.content_digest()


class TestEcoDefinition:
    def test_eco_is_registered(self):
        eco = get_architecture("POWER7_ECO")
        assert eco.chip.max_smt == 2
        assert eco.chip.dispatch_width == 2
        assert eco.chip.energy_scale == 0.55

    def test_energy_scale_repr_hidden(self, power7_arch):
        # The knob must not leak into ChipGeometry's repr: every
        # pre-heterogeneity definition digest (and with it every
        # persisted store key) depends on that repr staying unchanged.
        assert "energy_scale" not in repr(power7_arch.chip)
        assert power7_arch.chip.energy_scale == 1.0

    def test_energy_scale_joins_digest_when_set(self):
        eco_a = get_architecture("POWER7_ECO")
        eco_b = get_architecture("POWER7_ECO")
        assert eco_a.content_digest() == eco_b.content_digest()
        object.__setattr__(eco_b.chip, "energy_scale", 0.7)
        assert eco_a.content_digest() != eco_b.content_digest()
