"""Invariance tests for the steady-state evaluation engine.

The summary-based fast path (:meth:`CorePipelineModel.bounds` /
``activity``) must reproduce the naive per-instruction reference walk
(``reference_bounds`` / ``reference_activity``) to float precision on
arbitrary kernels -- randomized aperiodic bodies, randomized periodic
bodies with declared fingerprints, and the degenerate shapes the
generators emit.  Replicating a periodic kernel must never change its
steady-state rates.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Kernel, KernelInstruction, Machine, MachineConfig
from repro.sim.pipeline import CorePipelineModel

#: Mnemonic pool covering every usage shape: pure FXU, flexible
#: FXU/LSU, pure LSU, pure VSU, cracked LSU+FXU, LSU+2FXU, the
#: compound three-unit stores, branches, and usage-free nops.
POOL = (
    "addic", "mulldo", "add", "nor", "lwz", "lxvw4x", "xvmaddadp",
    "fadd", "lhaux", "ldu", "stfd", "stw", "b", "nop", "divd",
)
LEVELS = (None, "L1", "L1", "L2", "L3", "MEM")


@pytest.fixture(scope="module")
def pipeline(power7_arch):
    return CorePipelineModel(power7_arch)


def random_instruction(rng, size):
    mnemonic = rng.choice(POOL)
    level = rng.choice(LEVELS) if mnemonic in ("lwz", "lxvw4x", "ldu", "stfd", "stw", "lhaux") else None
    distance = None
    if rng.random() < 0.4 and size > 1:
        distance = rng.randint(1, size - 1)
    return KernelInstruction(
        mnemonic,
        dep_distance=distance,
        source_level=level,
        address=0x1000_0000 + rng.randrange(1 << 20) * 8 if level else None,
    )


def random_kernel(seed, size=None):
    rng = random.Random(seed)
    size = size or rng.randint(2, 160)
    return Kernel(
        name=f"rand-{seed}",
        instructions=tuple(
            random_instruction(rng, size) for _ in range(size)
        ),
        operand_entropy=rng.choice([0.0, 0.5, 1.0]),
    )


def random_periodic_kernel(seed):
    """Pattern * repeats + tail, with the fingerprint declared."""
    rng = random.Random(seed)
    period = rng.randint(1, 12)
    repeats = rng.randint(2, 24)
    # Dependency-free pattern slots: positional links do not replicate.
    pattern = tuple(
        KernelInstruction(
            rng.choice(POOL),
            source_level=level,
            address=0x1000_0000 + index * 128 if level else None,
        )
        for index, level in (
            (i, rng.choice(LEVELS) if rng.random() < 0.5 else None)
            for i in range(period)
        )
    )
    # The fingerprint contract places the tail in the remainder slots,
    # so it must stay shorter than one period.
    tail = (KernelInstruction("b"),) if period > 1 and rng.random() < 0.8 else ()
    return Kernel(
        name=f"periodic-{seed}",
        instructions=pattern * repeats + tail,
        operand_entropy=rng.choice([0.0, 1.0]),
        period=period,
    )


def assert_bounds_match(pipeline, kernel, smt):
    fast = pipeline.bounds(kernel, smt)
    reference = pipeline.reference_bounds(kernel, smt)
    for bound in ("dispatch", "unit", "dependency", "memory"):
        assert getattr(fast, bound) == pytest.approx(
            getattr(reference, bound), rel=1e-9, abs=1e-9
        ), (kernel.name, smt, bound)


def assert_activity_matches(pipeline, kernel, smt):
    fast = pipeline.activity(kernel, smt)
    reference = pipeline.reference_activity(kernel, smt)
    assert fast.ipc == pytest.approx(reference.ipc, rel=1e-9)
    assert fast.alternation == pytest.approx(reference.alternation, rel=1e-9)
    assert fast.entropy == reference.entropy
    for name in ("insn_rates", "unit_op_rates", "level_rates"):
        fast_rates = getattr(fast, name)
        reference_rates = getattr(reference, name)
        assert set(fast_rates) == set(reference_rates), (kernel.name, name)
        for key, value in reference_rates.items():
            assert fast_rates[key] == pytest.approx(value, rel=1e-9), (
                kernel.name, name, key,
            )


class TestFastPathInvariance:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_aperiodic_kernels(self, pipeline, seed):
        kernel = random_kernel(seed)
        for smt in (1, 2, 4):
            assert_bounds_match(pipeline, kernel, smt)
        assert_activity_matches(pipeline, kernel, 1)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_periodic_kernels(self, pipeline, seed):
        kernel = random_periodic_kernel(seed)
        kernel.validate_period()
        for smt in (1, 2, 4):
            assert_bounds_match(pipeline, kernel, smt)
        assert_activity_matches(pipeline, kernel, 1)

    def test_dependency_chains(self, pipeline):
        for mnemonic in ("fadd", "mulldo", "lwz"):
            kernel = Kernel(
                name=f"chain-{mnemonic}",
                instructions=tuple(
                    KernelInstruction(mnemonic, dep_distance=1)
                    for _ in range(64)
                ),
            )
            assert_bounds_match(pipeline, kernel, 1)
            assert_activity_matches(pipeline, kernel, 1)

    def test_alternation_matches_on_periodic_blocks(self, pipeline):
        pattern = tuple(
            KernelInstruction(m) for m in ("mulldo", "nop", "xvmaddadp")
        )
        kernel = Kernel(
            name="alt-periodic",
            instructions=pattern * 11 + (KernelInstruction("b"),),
            period=3,
        )
        assert pipeline.alternation(kernel) == pytest.approx(
            pipeline.reference_alternation(kernel), rel=1e-12
        )


class TestReplicationInvariance:
    """Steady-state rates never depend on the replication factor."""

    @given(seed=st.integers(0, 5_000), repeats=st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_ipc_invariant_under_replication(self, pipeline, seed, repeats):
        rng = random.Random(seed)
        pattern = tuple(
            KernelInstruction(
                rng.choice(POOL),
                source_level=("L1" if rng.random() < 0.5 else None),
                address=0x1000_0000,
            )
            if rng.random() < 0.3
            else KernelInstruction(rng.choice(POOL))
            for _ in range(rng.randint(1, 10))
        )
        once = Kernel("once", pattern, period=len(pattern))
        many = Kernel("many", pattern * repeats, period=len(pattern))
        for smt in (1, 2, 4):
            small = pipeline.activity(once, smt)
            big = pipeline.activity(many, smt)
            assert big.ipc == pytest.approx(small.ipc, rel=1e-9)
            for key, value in small.insn_rates.items():
                assert big.insn_rates[key] == pytest.approx(value, rel=1e-9)
            for key, value in small.unit_op_rates.items():
                assert big.unit_op_rates[key] == pytest.approx(value, rel=1e-9)

    def test_bounds_scale_linearly_with_replication(self, pipeline):
        pattern = tuple(
            KernelInstruction(m) for m in ("mulldo", "lxvw4x", "xvnmsubmdp")
        )
        base = pipeline.bounds(Kernel("x1", pattern, period=3))
        for repeats in (4, 16, 64):
            scaled = pipeline.bounds(
                Kernel(f"x{repeats}", pattern * repeats, period=3)
            )
            assert scaled.unit == pytest.approx(base.unit * repeats, rel=1e-9)
            assert scaled.dispatch == pytest.approx(
                base.dispatch * repeats, rel=1e-9
            )


class TestEngineBookkeeping:
    def test_summary_memoized_by_digest(self, power7_arch):
        pipeline = CorePipelineModel(power7_arch)
        kernel = random_kernel(7)
        clone = Kernel(
            name="different-name",
            instructions=kernel.instructions,
            operand_entropy=kernel.operand_entropy,
        )
        assert kernel.digest() == clone.digest()
        assert pipeline.summarize(kernel) is pipeline.summarize(clone)

    def test_digest_distinguishes_content(self):
        a = Kernel("k", (KernelInstruction("addic"),) * 8)
        b = Kernel("k", (KernelInstruction("mulldo"),) * 8)
        c = Kernel("k", (KernelInstruction("addic"),) * 9)
        assert len({a.digest(), b.digest(), c.digest()}) == 3

    def test_validate_period_rejects_broken_fingerprint(self):
        instructions = (
            KernelInstruction("addic"),
            KernelInstruction("addic"),
            KernelInstruction("mulldo"),
            KernelInstruction("addic"),
        )
        kernel = Kernel("broken", instructions, period=1)
        with pytest.raises(ValueError, match="breaks the declared period"):
            kernel.validate_period()

    def test_run_many_equals_run(self, power7_arch):
        machine_a = Machine(power7_arch)
        machine_b = Machine(power7_arch)
        kernels = [random_kernel(seed, size=48) for seed in range(6)]
        config = MachineConfig(4, 2)
        batched = machine_a.run_many(kernels, config)
        singles = [machine_b.run(kernel, config) for kernel in kernels]
        for one, many in zip(singles, batched):
            assert one.mean_power == many.mean_power
            assert one.thread_counters == many.thread_counters
            assert one.workload_name == many.workload_name

    def test_generated_fingerprints_honour_contract(self, power7_arch):
        from repro.march.bootstrap import Bootstrapper
        from repro.sim import Machine
        from repro.stressmark.search import build_stressmark

        machine = Machine(power7_arch)
        bootstrapper = Bootstrapper(power7_arch, machine, loop_size=96)
        for mnemonic in ("addic", "lwz", "stfd", "xvmaddadp"):
            for chained in (False, True):
                kernel = bootstrapper._build(mnemonic, chained=chained)
                kernel.validate_period()
        for loop_size in (12, 64, 500, 4096):
            kernel = build_stressmark(
                power7_arch, ("mulldo", "lxvw4x", "xvnmsubmdp"), loop_size
            )
            kernel.validate_period()

    def test_stressmark_period_boundary_branch(self, power7_arch):
        """(loop_size + 1) multiple of the pattern: the closing branch
        would land inside the last full period, so no fingerprint may
        be declared and the counts must stay exact."""
        from repro.stressmark.search import build_stressmark

        sequence = ("mulldo", "subf", "addic")  # no memory -> pattern 3
        kernel = build_stressmark(power7_arch, sequence, loop_size=8)  # 9 % 3 == 0
        assert kernel.period is None
        counts = kernel.mnemonic_counts()
        assert counts["b"] == 1
        assert counts["mulldo"] == 3 and counts["subf"] == 3
        assert counts["addic"] == 2
        kernel.validate_period()
