"""Tests for counter definitions and the formula language."""

import pytest

from repro.march.counters import (
    CounterFormula,
    FormulaError,
    evaluate_formula,
)


class TestFormulaEvaluation:
    def test_simple_ratio(self):
        formula = CounterFormula("IPC", "PM_RUN_INST_CMPL / PM_RUN_CYC")
        assert formula.evaluate(
            {"PM_RUN_INST_CMPL": 20, "PM_RUN_CYC": 10}
        ) == 2.0

    def test_arithmetic(self):
        value = evaluate_formula("(A + B - C) * 2", {"A": 3, "B": 4, "C": 1})
        assert value == 12.0

    def test_unary_minus(self):
        assert evaluate_formula("-A + 5", {"A": 2}) == 3.0

    def test_constants(self):
        assert evaluate_formula("A * 0.5", {"A": 8}) == 4.0

    def test_zero_denominator_degrades_to_zero(self):
        # Idle windows read zero counters; rates degrade gracefully.
        assert evaluate_formula("A / B", {"A": 0, "B": 0}) == 0.0

    def test_missing_counter_raises(self):
        with pytest.raises(FormulaError, match="unknown counter"):
            evaluate_formula("A + B", {"A": 1})

    def test_counters_listing(self):
        formula = CounterFormula("X", "A + B / (C - 1)")
        assert formula.counters() == frozenset({"A", "B", "C"})


class TestFormulaValidation:
    def test_rejects_calls(self):
        with pytest.raises(FormulaError):
            CounterFormula("bad", "__import__('os')")

    def test_rejects_comparisons(self):
        with pytest.raises(FormulaError):
            CounterFormula("bad", "A > B")

    def test_rejects_power_operator(self):
        with pytest.raises(FormulaError):
            CounterFormula("bad", "A ** 2")

    def test_rejects_strings(self):
        with pytest.raises(FormulaError):
            CounterFormula("bad", "'hello'")

    def test_rejects_syntax_errors(self):
        with pytest.raises(FormulaError):
            CounterFormula("bad", "A +")
