"""Tests for instruction properties, the march parser, and queries."""

import pytest

from repro.errors import DefinitionError, UnknownArchitectureError
from repro.march import get_architecture
from repro.march.parser import parse_march_text
from repro.march.properties import (
    InstructionProperties,
    PropertyDatabase,
    UnitUsage,
    parse_unit_usages,
)
from repro.isa.registry import load_default_isa


class TestUnitUsages:
    def test_parse_single(self):
        usages = parse_unit_usages("FXU")
        assert usages == (UnitUsage(units=("FXU",), ops=1.0),)

    def test_parse_flexible(self):
        usages = parse_unit_usages("FXU/LSU")
        assert usages[0].is_flexible
        assert usages[0].units == ("FXU", "LSU")

    def test_parse_composed_with_ops(self):
        usages = parse_unit_usages("LSU,FXU:2")
        assert usages[0].units == ("LSU",)
        assert usages[1].ops == 2.0

    def test_parse_empty(self):
        assert parse_unit_usages("-") == ()

    def test_bad_spec(self):
        with pytest.raises(ValueError):
            parse_unit_usages("/LSU")

    def test_str_round_trip(self):
        for spec in ("FXU", "FXU/LSU", "LSU,FXU:2"):
            usages = parse_unit_usages(spec)
            rendered = ",".join(str(u) for u in usages)
            assert parse_unit_usages(rendered) == usages


class TestInstructionProperties:
    def test_stresses(self):
        props = InstructionProperties(
            "lhaux", parse_unit_usages("LSU,FXU:2"), latency=3,
            inv_throughput=2,
        )
        assert props.stresses("LSU")
        assert props.stresses("FXU")
        assert not props.stresses("VSU")
        assert props.units == ("LSU", "FXU")
        assert props.total_ops == 3.0

    def test_bootstrap_write_back(self):
        props = InstructionProperties(
            "add", parse_unit_usages("FXU/LSU"), 2, 1.143
        )
        updated = props.with_bootstrap(epi=0.5, avg_power=10.0)
        assert updated.epi == 0.5
        assert props.epi is None  # original untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            InstructionProperties("x", (), latency=0, inv_throughput=1)


class TestPropertyDatabase:
    def test_stressing_query(self):
        db = PropertyDatabase([
            InstructionProperties("a", parse_unit_usages("FXU"), 1, 1),
            InstructionProperties("b", parse_unit_usages("VSU"), 1, 1),
        ])
        assert [p.mnemonic for p in db.stressing("FXU")] == ["a"]

    def test_update_unknown_raises(self):
        db = PropertyDatabase()
        props = InstructionProperties("a", parse_unit_usages("FXU"), 1, 1)
        with pytest.raises(Exception):
            db.update(props)

    def test_bootstrapped_flag(self):
        props = InstructionProperties("a", parse_unit_usages("FXU"), 1, 1)
        db = PropertyDatabase([props])
        assert not db.bootstrapped
        db.update(props.with_bootstrap(1.0, 1.0))
        assert db.bootstrapped


class TestPower7Definition:
    @pytest.fixture(scope="class")
    def arch(self):
        return get_architecture("POWER7")

    def test_chip_geometry(self, arch):
        assert arch.chip.max_cores == 8
        assert arch.chip.max_smt == 4
        assert arch.chip.smt_modes() == (1, 2, 4)
        assert arch.chip.max_hardware_threads == 32

    def test_units(self, arch):
        assert arch.unit("FXU").pipes == 2
        assert arch.unit("LSU").counter == "PM_LSU_FIN"
        with pytest.raises(KeyError):
            arch.unit("GPU")

    def test_hierarchy(self, arch):
        assert arch.memory_level_names() == ("L1", "L2", "L3", "MEM")
        assert arch.cache("L1").size_bytes == 32 * 1024
        assert arch.cache("L2").size_bytes == 256 * 1024
        assert arch.cache("L3").size_bytes == 4096 * 1024
        assert arch.memory.latency > arch.cache("L3").latency

    def test_every_instruction_has_properties(self, arch):
        for instruction in arch.isa:
            assert arch.props(instruction.mnemonic) is not None

    def test_table3_unit_mappings(self, arch):
        assert arch.props("lhaux").usages[1].ops == 2  # LSU and 2FXU
        assert arch.props("stfdux").units == ("LSU", "VSU", "FXU")
        assert arch.props("add").usages[0].is_flexible  # FXU or LSU
        assert arch.stresses("xvmaddadp", "VSU")
        assert not arch.stresses("xvmaddadp", "FXU")

    def test_fresh_instances_are_independent(self):
        a = get_architecture("POWER7")
        b = get_architecture("POWER7")
        a.isa.remove("add")
        assert "add" in b.isa

    def test_unknown_architecture(self):
        with pytest.raises(UnknownArchitectureError):
            get_architecture("ALPHA21264")

    def test_ipc_formula(self, arch):
        assert arch.ipc({"PM_RUN_INST_CMPL": 6, "PM_RUN_CYC": 3}) == 2.0


class TestMarchParserErrors:
    def _parse(self, text):
        return parse_march_text(text, load_default_isa())

    def test_missing_header(self):
        with pytest.raises(DefinitionError, match="march <name>"):
            self._parse("[chip]\ncores = 1\n")

    def test_missing_chip_keys(self):
        with pytest.raises(DefinitionError):
            self._parse("march X\n[chip]\ncores = 1\n")

    def test_unknown_unit_in_properties(self):
        text = (
            "march X\n[chip]\ncores = 1\nsmt = 1\nfrequency_ghz = 1\n"
            "dispatch_width = 4\nissue_width = 4\n"
            "[cache L1]\nlevel = 1\nsize_kb = 32\nline_bytes = 128\n"
            "ways = 8\nlatency = 2\n[memory]\nlatency = 100\n"
            "[counter PM_RUN_CYC]\n[counter PM_RUN_INST_CMPL]\n"
            "[formula IPC]\nexpr = PM_RUN_INST_CMPL / PM_RUN_CYC\n"
            "[iproperties]\ndefault type:int | GPU | 1 | 1\n"
        )
        with pytest.raises(DefinitionError, match="unknown unit"):
            self._parse(text)

    def test_uncovered_instructions_rejected(self):
        text = (
            "march X\n[chip]\ncores = 1\nsmt = 1\nfrequency_ghz = 1\n"
            "dispatch_width = 4\nissue_width = 4\n"
            "[unit FXU]\npipes = 2\ncounter = PM_FXU_FIN\n"
            "[cache L1]\nlevel = 1\nsize_kb = 32\nline_bytes = 128\n"
            "ways = 8\nlatency = 2\n[memory]\nlatency = 100\n"
            "[counter PM_RUN_CYC]\n[counter PM_RUN_INST_CMPL]\n"
            "[formula IPC]\nexpr = PM_RUN_INST_CMPL / PM_RUN_CYC\n"
            "[iproperties]\ndefault type:int | FXU | 1 | 1\n"
        )
        with pytest.raises(DefinitionError, match="without properties"):
            self._parse(text)

    def test_missing_ipc_formula(self):
        text = (
            "march X\n[chip]\ncores = 1\nsmt = 1\nfrequency_ghz = 1\n"
            "dispatch_width = 4\nissue_width = 4\n"
            "[cache L1]\nlevel = 1\nsize_kb = 32\nline_bytes = 128\n"
            "ways = 8\nlatency = 2\n[memory]\nlatency = 100\n"
            "[iproperties]\n"
        )
        with pytest.raises(DefinitionError, match="IPC"):
            self._parse(text)
