"""Tests for the analytical set-associative cache model, including the
property-based validation against the functional hierarchy simulator --
the central correctness claim of paper section 2.1.3."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CacheModelError
from repro.march import get_architecture
from repro.march.cache_model import SetAssociativeCacheModel
from repro.sim.hierarchy import simulate_hit_distribution


@pytest.fixture(scope="module")
def arch():
    return get_architecture("POWER7")


@pytest.fixture(scope="module")
def model(arch):
    return SetAssociativeCacheModel.for_architecture(arch)


class TestPlanning:
    def test_pure_levels(self, model):
        for level in ("L1", "L2", "L3", "MEM"):
            plan = model.plan({level: 1.0}, slot_count=256)
            assert plan.predicted[level] == 1.0
            assert len(plan.slots) == 256

    def test_weights_validation(self, model):
        with pytest.raises(CacheModelError, match="sum to 1"):
            model.plan({"L1": 0.5}, 128)
        with pytest.raises(CacheModelError, match="non-negative"):
            model.plan({"L1": 1.5, "L2": -0.5}, 128)
        with pytest.raises(CacheModelError, match="unknown levels"):
            model.plan({"L9": 1.0}, 128)

    def test_too_few_slots_rejected(self, model):
        with pytest.raises(CacheModelError, match="at least"):
            model.plan({"L1": 0.99, "L2": 0.01}, 128)

    def test_slot_levels_parallel_slots(self, model):
        plan = model.plan({"L1": 0.5, "L2": 0.5}, 200)
        assert len(plan.slot_levels) == len(plan.slots) == 200
        assert plan.slot_levels.count("L2") == 100

    def test_line_pools_disjoint_at_l1(self, model, arch):
        plan = model.plan(
            {"L1": 0.25, "L2": 0.25, "L3": 0.25, "MEM": 0.25}, 512
        )
        l1 = arch.cache("L1")
        sets_by_level = {
            level: {l1.set_of(address) for address in pool}
            for level, pool in plan.lines.items()
        }
        levels = list(sets_by_level)
        for i, a in enumerate(levels):
            for b in levels[i + 1:]:
                assert not (sets_by_level[a] & sets_by_level[b]), (a, b)

    def test_l1_pool_spread_for_smt(self, model, arch):
        """L1 streams keep <= 2 lines per set so SMT sharing cannot
        thrash them (4 threads x 2 lines = 8-way associativity)."""
        plan = model.plan({"L1": 1.0}, 512)
        l1 = arch.cache("L1")
        per_set: dict[int, int] = {}
        for address in plan.lines["L1"]:
            per_set[l1.set_of(address)] = per_set.get(l1.set_of(address), 0) + 1
        assert max(per_set.values()) <= 2

    def test_deterministic_given_seed(self, model):
        a = model.plan({"L1": 0.5, "L3": 0.5}, 256, seed=9)
        b = model.plan({"L1": 0.5, "L3": 0.5}, 256, seed=9)
        assert a.slots == b.slots

    def test_footprint(self, model, arch):
        plan = model.plan({"MEM": 1.0}, 64)
        line = arch.cache("L1").line_bytes
        assert plan.footprint_bytes(line) == len(plan.lines["MEM"]) * line


class TestModelConstraints:
    def test_uniform_line_size_required(self, arch):
        from repro.march.caches import CacheGeometry
        caches = (
            arch.caches[0],
            CacheGeometry("L2", 2, 256 * 1024, 64, 8, 8),
        )
        with pytest.raises(CacheModelError, match="uniform line size"):
            SetAssociativeCacheModel(caches, arch.memory)

    def test_minimum_lines(self, model):
        assert model.minimum_lines("L1") == 1
        assert model.minimum_lines("L2") == 16
        assert model.minimum_lines("MEM") == 16
        with pytest.raises(CacheModelError, match="unknown level"):
            model.minimum_lines("L9")


class TestAgainstFunctionalSimulation:
    """The paper's claim: the plan *statically ensures* the measured
    distribution.  Verified against LRU caches with prefetching on."""

    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        seed=st.integers(0, 2 ** 16),
    )
    def test_any_mix_matches(self, arch, model, data, seed):
        # Draw a random mix over the hierarchy levels with feasible
        # slot shares (>= 16 lines per deep stream on 512 slots).
        levels = ["L1", "L2", "L3", "MEM"]
        active = data.draw(
            st.lists(st.sampled_from(levels), min_size=1, max_size=4,
                     unique=True)
        )
        raw = [
            data.draw(st.floats(0.15, 1.0, allow_nan=False))
            for _ in active
        ]
        total = sum(raw)
        weights = {
            level: value / total for level, value in zip(active, raw)
        }
        plan = model.plan(weights, slot_count=512, seed=seed)
        simulated = simulate_hit_distribution(
            arch.caches, arch.memory, plan.slots
        )
        for level in levels:
            assert simulated.get(level, 0.0) == pytest.approx(
                plan.predicted.get(level, 0.0), abs=0.02
            ), (weights, level)

    def test_prefetcher_does_not_break_misses(self, arch, model):
        """Randomized tags defeat the stride prefetcher: planned MEM
        misses stay misses even with prefetching enabled."""
        plan = model.plan({"MEM": 1.0}, 256, seed=3)
        with_prefetch = simulate_hit_distribution(
            arch.caches, arch.memory, plan.slots, prefetch=True
        )
        assert with_prefetch["MEM"] > 0.98

    def test_sequential_stream_would_be_prefetched(self, arch):
        """Contrast: a naive sequential stride stream IS converted to
        hits by the prefetcher -- the reason the model randomizes."""
        line = arch.caches[0].line_bytes
        stream = [0x4000_0000 + i * line for i in range(256)]
        result = simulate_hit_distribution(
            arch.caches, arch.memory, stream, prefetch=True,
        )
        assert result["L1"] > 0.5
