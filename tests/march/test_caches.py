"""Tests for cache geometry and address-field decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.march.caches import AddressFields, CacheGeometry, MemoryLevel


def l1() -> CacheGeometry:
    return CacheGeometry(
        name="L1", level=1, size_bytes=32 * 1024, line_bytes=128,
        ways=8, latency=2,
    )


class TestCacheGeometry:
    def test_sets(self):
        assert l1().sets == 32

    def test_fields(self):
        fields = l1().fields
        assert fields.offset_bits == 7
        assert fields.set_bits == 5
        assert fields.tag_shift == 12

    def test_set_of(self):
        cache = l1()
        assert cache.set_of(0) == 0
        assert cache.set_of(128) == 1
        assert cache.set_of(128 * 32) == 0  # wraps at sets

    def test_rejects_nonmultiple_size(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheGeometry("X", 1, 1000, 128, 8, 2)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry("X", 1, 96 * 100, 96, 100, 2)

    def test_str_mentions_geometry(self):
        assert "32KB 8-way" in str(l1())


class TestAddressFields:
    def test_compose_round_trips(self):
        fields = AddressFields(offset_bits=7, set_bits=5)
        address = fields.compose(tag=0x1234, set_index=17, offset=42)
        assert fields.tag(address) == 0x1234
        assert fields.set_index(address) == 17
        assert address % 128 == 42

    def test_compose_validates_ranges(self):
        fields = AddressFields(offset_bits=7, set_bits=5)
        with pytest.raises(ValueError):
            fields.compose(tag=1, set_index=32)
        with pytest.raises(ValueError):
            fields.compose(tag=1, set_index=0, offset=128)

    @given(
        tag=st.integers(0, 2 ** 20 - 1),
        set_index=st.integers(0, 31),
        offset=st.integers(0, 127),
    )
    def test_compose_extract_inverse(self, tag, set_index, offset):
        fields = AddressFields(offset_bits=7, set_bits=5)
        address = fields.compose(tag, set_index, offset)
        assert fields.tag(address) == tag
        assert fields.set_index(address) == set_index

    def test_line_address_strips_offset(self):
        fields = AddressFields(offset_bits=7, set_bits=5)
        assert fields.line_address(130) == fields.line_address(129)
        assert fields.line_address(128) != fields.line_address(127)


class TestMemoryLevel:
    def test_defaults(self):
        level = MemoryLevel(latency=230, counter="PM_DATA_FROM_LMEM")
        assert level.name == "MEM"
        assert level.latency == 230
