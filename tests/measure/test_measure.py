"""Tests for measurements, the runner, and trace analysis.

Machine and kernel construction come from the shared fixtures in
``tests/conftest.py``.
"""

import numpy as np
import pytest

from repro.measure import MeasurementRunner, analyze_trace
from repro.measure.measurement import Measurement
from repro.measure.traces import segment_phases
from repro.sim import MachineConfig, get_pstate
from repro.sim.sensors import PowerSensor, stable_seed


@pytest.fixture(scope="module")
def kernel(small_kernel_factory):
    return lambda: small_kernel_factory("add", count=64)


class TestMeasurement:
    def test_totals_and_rates(self, machine, kernel):
        measurement = machine.run(kernel(), MachineConfig(2, 2), duration=5.0)
        totals = measurement.total_counters()
        per_thread = measurement.thread_counters[0]
        assert totals["PM_RUN_CYC"] == pytest.approx(
            4 * per_thread["PM_RUN_CYC"]
        )
        rates = measurement.thread_rates()
        assert rates["PM_RUN_CYC"] == pytest.approx(3e9)

    def test_thread_count_validation(self):
        with pytest.raises(ValueError, match="per-thread"):
            Measurement(
                workload_name="x", config=MachineConfig(2, 2),
                duration=1.0, thread_counters=({},),
                mean_power=1.0, power_std=0.1, sample_count=10,
            )


class TestRunner:
    def test_sweep_covers_configs(self, machine, kernel):
        runner = MeasurementRunner(machine, duration=1.0)
        sweep = runner.run_sweep([kernel()])
        assert len(sweep) == 24
        for config, measurements in sweep.items():
            assert measurements[0].config == config

    def test_sweep_crosses_p_states(self, machine, kernel):
        runner = MeasurementRunner(machine, duration=1.0)
        p_states = (get_pstate("nominal"), get_pstate("p2"))
        sweep = runner.run_sweep([kernel()], p_states=p_states)
        assert len(sweep) == 48
        labels = [config.label for config in sweep]
        assert "1-1" in labels and "1-1@p2" in labels
        nominal = sweep[MachineConfig(8, 1)][0]
        scaled = sweep[MachineConfig(8, 1).with_p_state(p_states[1])][0]
        assert scaled.mean_power < nominal.mean_power

    def test_sweep_preserves_explicit_p_states(self, machine, kernel):
        """Caller-provided operating points must be measured as given,
        not silently reset to nominal."""
        runner = MeasurementRunner(machine, duration=1.0)
        throttled = MachineConfig(2, 2).with_p_state(get_pstate("p2"))
        sweep = runner.run_sweep([kernel()], configs=[throttled])
        assert list(sweep) == [throttled]
        assert sweep[throttled][0].config.label == "2-2@p2"

    def test_sweep_deduplicates_collapsing_configs(self, machine, kernel):
        runner = MeasurementRunner(machine, duration=1.0)
        config = MachineConfig(1, 1)
        sweep = runner.run_sweep(
            [kernel()],
            configs=[config, config.with_p_state(get_pstate("nominal"))],
            p_states=(get_pstate("nominal"),),
        )
        assert len(sweep) == 1

    def test_baseline(self, machine):
        runner = MeasurementRunner(machine, duration=1.0)
        baseline = runner.baseline()
        assert baseline.workload_name == "<idle>"
        assert baseline.total_counters()["PM_RUN_CYC"] == 0


class TestSensors:
    def test_stable_seed_is_process_independent(self):
        assert stable_seed("a", 1, 2.0) == stable_seed("a", 1, 2.0)
        assert stable_seed("a") != stable_seed("b")

    def test_trace_statistics_match_summary(self):
        sensor = PowerSensor()
        summary = sensor.measure(100.0, duration=10.0, seed=42)
        trace = sensor.synthesize_trace(100.0, duration=10.0, seed=42)
        assert trace.size == summary.sample_count == 10_000
        # Same run offset applies to both paths.
        assert float(np.mean(trace)) == pytest.approx(
            summary.mean_power, abs=0.05
        )

    def test_quantisation(self):
        sensor = PowerSensor()
        trace = sensor.synthesize_trace(80.0, duration=0.1, seed=1)
        milliwatts = trace * 1000
        assert np.allclose(milliwatts, np.round(milliwatts))


class TestTraces:
    def test_analyze(self):
        trace = np.array([10.0, 12.0, 11.0, 13.0])
        stats = analyze_trace(trace)
        assert stats.mean == pytest.approx(11.5)
        assert stats.minimum == 10.0
        assert stats.maximum == 13.0
        assert stats.sample_count == 4

    def test_stability_improves_with_samples(self):
        rng = np.random.default_rng(3)
        short = analyze_trace(rng.normal(100, 0.5, 10))
        long = analyze_trace(rng.normal(100, 0.5, 10_000))
        assert long.standard_error < short.standard_error
        assert long.is_stable()

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            analyze_trace(np.array([]))

    def test_phase_segmentation(self):
        trace = np.concatenate([
            np.full(1000, 100.0), np.full(1000, 120.0), np.full(1000, 95.0),
        ])
        phases = segment_phases(trace, window=100, threshold=1.5)
        assert len(phases) == 3
        means = [phase[2] for phase in phases]
        assert means[0] == pytest.approx(100.0)
        assert means[1] == pytest.approx(120.0)
        assert means[2] == pytest.approx(95.0)
