"""Tests for stressmark construction, sets, and reporting."""

import pytest

from repro.errors import SearchError
from repro.march import get_architecture
from repro.stressmark.expert import (
    EXPERT_INSTRUCTIONS,
    expert_dse_set,
    expert_manual_set,
)
from repro.stressmark.report import (
    OrderSpread,
    best_sequence,
    order_spread_analysis,
    summarize_set,
)
from repro.stressmark.search import (
    build_stressmark,
    covering_sequences,
    point_to_sequence,
    sequence_space,
)


@pytest.fixture(scope="module")
def arch():
    return get_architecture("POWER7")


class TestBuildStressmark:
    def test_replicates_sequence(self, arch):
        kernel = build_stressmark(
            arch, ("mulldo", "lxvw4x", "xvnmsubmdp"), loop_size=12
        )
        mnemonics = [ins.mnemonic for ins in kernel.instructions[:-1]]
        assert mnemonics == ["mulldo", "lxvw4x", "xvnmsubmdp"] * 4
        assert kernel.instructions[-1].mnemonic == "b"

    def test_memory_slots_l1_resident(self, arch):
        kernel = build_stressmark(arch, ("lxvw4x",), loop_size=64)
        for ins in kernel.instructions[:-1]:
            assert ins.source_level == "L1"
            assert ins.address is not None

    def test_no_dependencies(self, arch):
        kernel = build_stressmark(arch, ("mulldo", "mullw"), loop_size=32)
        assert all(ins.dep_distance is None for ins in kernel.instructions)

    def test_empty_sequence_rejected(self, arch):
        with pytest.raises(ValueError):
            build_stressmark(arch, ())


class TestSequenceSpaces:
    def test_space_size(self):
        space = sequence_space(("a", "b", "c"))
        assert space.size == 3 ** 6

    def test_point_decoding(self):
        space = sequence_space(("a", "b"))
        point = next(space.points())
        assert point_to_sequence(point) == ("a",) * 6

    def test_covering_sequences_is_540(self):
        # The paper's "540 possible combinations": 3^6 minus sequences
        # that drop one of the three instructions.
        sequences = covering_sequences(("a", "b", "c"))
        assert len(sequences) == 540
        for sequence in sequences:
            assert set(sequence) == {"a", "b", "c"}

    def test_expert_sets(self):
        assert len(expert_dse_set()) == 540
        manual = expert_manual_set()
        assert len(manual) >= 3
        for pattern in manual:
            assert set(pattern) <= set(EXPERT_INSTRUCTIONS)


class TestReporting:
    def _rows(self):
        return [
            (("a",), 1, 100.0, 2.0),
            (("b",), 1, 110.0, 2.0),
            (("c",), 1, 90.0, 1.5),
            (("a",), 2, 105.0, 1.8),
        ]

    def test_summary(self):
        summary = summarize_set("X", self._rows(), baseline_power=100.0)
        assert summary.minimum == pytest.approx(0.9)
        assert summary.maximum == pytest.approx(1.1)
        assert summary.count == 4

    def test_best_sequence(self):
        assert best_sequence(self._rows()) == ("b",)

    def test_order_spread_at_max_ipc(self):
        spread = order_spread_analysis(self._rows(), 100.0, smt=1)
        # Only the two IPC-2.0 rows qualify.
        assert spread.sequences_at_max_ipc == 2
        assert spread.min_normalized == pytest.approx(1.0)
        assert spread.max_normalized == pytest.approx(1.1)
        assert spread.spread_percent == pytest.approx(10.0)

    def test_order_spread_percent_guard(self):
        spread = OrderSpread(1, 0.0, 0.0)
        assert spread.spread_percent == 0.0

    def test_empty_sets_rejected(self):
        with pytest.raises(SearchError):
            summarize_set("X", [], 100.0)
        with pytest.raises(SearchError):
            best_sequence([])
        with pytest.raises(SearchError):
            order_spread_analysis(self._rows(), 100.0, smt=4)
