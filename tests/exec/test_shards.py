"""Shard scheduler: determinism, failover, probing, store merge.

The acceptance property of :class:`~repro.exec.shards.ShardedExecutor`
is *bit-identity under any partition*: a plan sharded by cell-key
prefix across 1/2/4 serve replicas (plus the local lane) must
reproduce one-shot serial execution byte for byte -- on both
measurement planes, across randomized topology/placement/p-state
plans, and even when a replica is killed mid-run (its cells fail over
to the local plane, which is invisible in the bytes because
measurements are pure functions of content).
"""

import json
import random
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.exec import (
    ExperimentPlan,
    MeasurementService,
    PlanCell,
    ResultStore,
    SerialExecutor,
    ShardedExecutor,
    build_server,
)
from repro.exec.shards import parse_shard_endpoints
from repro.sim import Machine, MachineConfig, Placement, get_pstate
from repro.sim.topology import parse_topology

_DURATION = 1.0


def _start(service):
    server = build_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_port}"


@pytest.fixture()
def replicas():
    """Four store-less serial serve replicas on ephemeral ports."""
    servers = []
    urls = []
    services = []
    for _ in range(4):
        service = MeasurementService(store=None)
        server, url = _start(service)
        servers.append(server)
        urls.append(url)
        services.append(service)
    yield urls
    for server in servers:
        server.shutdown()
        server.server_close()
    for service in services:
        service.close()


def _random_plan(rng, make_kernel) -> ExperimentPlan:
    """Randomized kernel/topology/p-state plans (placement rides along)."""
    kernels = [
        make_kernel("add", count=24),
        make_kernel("mulld", count=24, dep=4),
        make_kernel("lxvw4x", count=24, level="L1"),
        make_kernel("ld", count=24, level="MEM"),
    ]
    workloads = rng.sample(kernels, rng.randint(2, 4))
    configs = rng.sample(
        [
            MachineConfig(1, 1),
            MachineConfig(2, 2),
            MachineConfig(4, 1),
            parse_topology("2big+2little"),
            parse_topology("2big-2@p2+2little"),
        ],
        rng.randint(1, 3),
    )
    p_states = (
        [get_pstate(name) for name in rng.sample(["turbo", "nominal", "p3"], 2)]
        if rng.random() < 0.5
        else None
    )
    plan = ExperimentPlan.cross(
        workloads, configs, p_states=p_states, duration=_DURATION
    )
    if rng.random() < 0.5:
        mix = Placement("mix", ((kernels[0],), (kernels[3],)))
        extra = PlanCell(mix, MachineConfig(2, 1), _DURATION)
        plan = ExperimentPlan(list(plan.cells) + [extra])
    return plan


def _bytes_of(measurements) -> str:
    return json.dumps(
        [m.to_dict() for m in measurements], sort_keys=True
    )


class TestShardDeterminism:
    @pytest.mark.parametrize("vector", [True, False])
    def test_randomized_plans_bit_identical_across_shard_counts(
        self, replicas, power7_arch, small_kernel_factory, vector
    ):
        """1/2/4-replica sharded execution == one-shot serial, bytes."""
        rng = random.Random(20120808)
        serial_machine = Machine(power7_arch, vector=vector)
        for round_number in range(3):
            plan = _random_plan(rng, small_kernel_factory)
            expected = _bytes_of(SerialExecutor(serial_machine).run(plan))
            for count in (1, 2, 4):
                executor = ShardedExecutor(
                    Machine(power7_arch, vector=vector), replicas[:count]
                )
                try:
                    got = _bytes_of(executor.run(plan))
                finally:
                    executor.close()
                assert got == expected, (
                    f"round {round_number}: {count}-shard run diverged "
                    "from serial"
                )

    def test_remote_only_routing_matches_serial(
        self, replicas, power7_arch, small_kernel_factory
    ):
        """local=False routes every cell remotely, same bytes."""
        plan = _random_plan(random.Random(7), small_kernel_factory)
        machine = Machine(power7_arch)
        expected = _bytes_of(SerialExecutor(machine).run(plan))
        executor = ShardedExecutor(machine, replicas[:2], local=False)
        try:
            report = executor.execute(plan)
        finally:
            executor.close()
        assert report.ok
        assert _bytes_of(report.measurements) == expected


class _DyingHandler(BaseHTTPRequestHandler):
    """A replica that probes healthy, then dies mid-plan-stream.

    ``POST /probe`` answers honestly (it *can* rebuild the bundled
    definitions), so the scheduler routes cells to it; ``POST /plans``
    streams the run header and then tears the connection down -- the
    footprint of a replica killed mid-run.
    """

    protocol_version = "HTTP/1.1"

    def log_message(self, *args) -> None:  # noqa: A003 - silence
        pass

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        length = int(self.headers.get("Content-Length", "0"))
        body = json.loads(self.rfile.read(length))
        if self.path.rstrip("/") == "/probe":
            from repro.exec.service import MeasurementService

            payload = json.dumps(
                MeasurementService(store=None).probe(body)
            ).encode()
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)
            return
        # /plans: start streaming, then die before any cell lands.
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        header = json.dumps(
            {"service": "repro-serve-v1", "run": "dead", "cells": 0}
        ).encode() + b"\n"
        self.wfile.write(b"%x\r\n" % len(header) + header + b"\r\n")
        self.wfile.flush()
        # shutdown (not just close) forces the FIN out even though
        # rfile/wfile still hold references to the socket -- the
        # client must observe a torn stream, not a stuck one.
        self.connection.shutdown(socket.SHUT_RDWR)
        self.close_connection = True


@pytest.fixture()
def dying_replica():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _DyingHandler)
    server.daemon_threads = True
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield f"http://127.0.0.1:{server.server_port}"
    server.shutdown()
    server.server_close()


class TestShardFailover:
    @pytest.mark.parametrize("vector", [True, False])
    def test_killed_shard_mid_run_bit_identical(
        self, replicas, dying_replica, power7_arch, small_kernel_factory,
        vector,
    ):
        """A replica dying mid-run costs time, never bytes."""
        plan = _random_plan(random.Random(99), small_kernel_factory)
        machine = Machine(power7_arch, vector=vector)
        expected = _bytes_of(SerialExecutor(machine).run(plan))
        executor = ShardedExecutor(
            machine, [replicas[0], dying_replica]
        )
        try:
            report = executor.execute(plan)
        finally:
            executor.close()
        assert report.ok
        assert _bytes_of(report.measurements) == expected
        assert report.fault_counters.get("shard_failovers", 0) >= 1

    def test_dead_endpoint_excluded_up_front(
        self, power7_arch, small_kernel_factory
    ):
        """An unreachable endpoint is excluded; the run completes."""
        plan = _random_plan(random.Random(3), small_kernel_factory)
        machine = Machine(power7_arch)
        expected = _bytes_of(SerialExecutor(machine).run(plan))
        executor = ShardedExecutor(
            machine, ["http://127.0.0.1:1"]  # nothing listens there
        )
        try:
            got = _bytes_of(executor.run(plan))
        finally:
            executor.close()
        assert got == expected

    def test_digest_unsound_replica_excluded(
        self, replicas, power7_arch, small_kernel_factory, monkeypatch
    ):
        """A replica that cannot rebuild the definitions takes no cells."""
        from repro.exec.client import ServiceClient

        plan = _random_plan(random.Random(4), small_kernel_factory)
        machine = Machine(power7_arch)
        expected = _bytes_of(SerialExecutor(machine).run(plan))
        monkeypatch.setattr(
            ServiceClient,
            "probe",
            lambda self, arch, digest, classes=None: {"ok": False},
        )
        executor = ShardedExecutor(machine, replicas[:2])
        try:
            got = _bytes_of(executor.run(plan))
        finally:
            executor.close()
        assert got == expected


class TestShardStoreMerge:
    def test_results_merge_into_local_store_and_serve_warm(
        self, replicas, power7_arch, small_kernel_factory, tmp_path
    ):
        """Remote-measured cells persist locally; re-runs are warm."""
        plan = _random_plan(random.Random(12), small_kernel_factory)
        machine = Machine(power7_arch)
        expected = _bytes_of(SerialExecutor(machine).run(plan))

        store = ResultStore(tmp_path / "store")
        executor = ShardedExecutor(machine, replicas[:2], store=store)
        try:
            got = _bytes_of(executor.run(plan))
        finally:
            executor.close()
        assert got == expected

        # Warm re-run: every cell serves from the merged store with
        # zero measurement calls on a machine that forbids them.
        cold_machine = Machine(power7_arch)

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("measurement invoked on a warm run")

        cold_machine.run = cold_machine.run_many = forbid
        cold_machine.run_cells = forbid
        warm_executor = ShardedExecutor(
            cold_machine,
            replicas[:2],
            store=ResultStore(tmp_path / "store"),
        )
        try:
            warm = _bytes_of(warm_executor.run(plan))
        finally:
            warm_executor.close()
        assert warm == expected


class TestShardPlumbing:
    def test_parse_shard_endpoints(self):
        assert parse_shard_endpoints(
            " http://a:1 ,http://b:2,, "
        ) == ["http://a:1", "http://b:2"]

    def test_parse_shard_endpoints_normalizes_and_dedupes(self):
        # Trailing slashes are noise, and the same (host, port) listed
        # twice -- with or without an explicit scheme -- is one replica:
        # double-routing it would silently halve the fabric's width.
        assert parse_shard_endpoints(
            "http://a:1/,a:1,http://a:1,http://b:2/"
        ) == ["http://a:1", "http://b:2"]
        assert parse_shard_endpoints("a:1,b:2,a:1") == ["a:1", "b:2"]

    def test_needs_an_endpoint_or_local(self, power7_arch):
        with pytest.raises(ValueError):
            ShardedExecutor(Machine(power7_arch), [], local=False)

    def test_probe_endpoint_verdicts(self, power7_arch):
        """The service-side probe compares content digests exactly."""
        service = MeasurementService(store=None)
        digest = power7_arch.content_digest()
        good = service.probe({"arch": "POWER7", "digest": digest})
        assert good["ok"] and good["arch_ok"]
        bad = service.probe({"arch": "POWER7", "digest": digest ^ 1})
        assert not bad["ok"]
        unknown = service.probe({"arch": "NOPE", "digest": 0})
        assert not unknown["ok"]
        classes = service.probe(
            {
                "arch": "POWER7",
                "digest": digest,
                "classes": {"POWER7_ECO": 0},
            }
        )
        assert classes["arch_ok"] and not classes["ok"]
        assert classes["classes"] == {"POWER7_ECO": False}
