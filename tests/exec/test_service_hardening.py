"""Service hardening: run registry, admission control, drain, healing.

The robustness properties layered onto the campaign service:

* **durable run history** -- the flock'd ``<store>/registry.jsonl``
  survives journal GC *and* server restarts: a fresh service on the
  same store lists every past run, and entries left ``running`` by a
  dead process are reconciled against their journals on start;
* **admission control** -- bearer-token auth (401), request/cell
  budgets and injected rejections answer 429 + ``Retry-After``, drain
  answers 503, and the client layers retry transparently with capped
  deterministic backoff -- always byte-identical to an un-throttled
  run, because measurements are pure and the store dedupes;
* **self-healing shards** -- a replica that goes down trips its
  circuit breaker open (cells fail over locally), and once it comes
  back the cooldown-gated half-open probe re-admits it mid-campaign.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.exec import (
    ExperimentPlan,
    MeasurementService,
    RemoteExecutor,
    RunRegistry,
    SerialExecutor,
    ServiceClient,
    build_server,
)
from repro.exec import faults
from repro.exec.faults import FaultPlan
from repro.exec.journal import RunJournal, run_id
from repro.exec.registry import plan_digest
from repro.exec.shards import ShardedExecutor, _CircuitBreaker
from repro.sim import Machine, MachineConfig

_DURATION = 1.0


def _start(service):
    server = build_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_port}"


def _plan(make_kernel, count=24) -> ExperimentPlan:
    return ExperimentPlan.cross(
        [make_kernel("add", count=count), make_kernel("mulld", count=count)],
        [MachineConfig(1, 1), MachineConfig(2, 2)],
        duration=_DURATION,
    )


# -- run registry --------------------------------------------------------------


class TestRunRegistry:
    def test_record_replay_and_summary(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record("r1", "running", cells=4, plan="p")
        registry.record("r1", "complete", measured=4)
        registry.record("r2", "running", cells=2)
        assert len(registry) == 2 and "r1" in registry
        assert registry.get("r1")["state"] == "complete"
        assert registry.get("r1")["cells"] == 4  # earlier fields merge
        summary = registry.summary()
        assert summary["runs"] == 2
        assert summary["complete"] == 1 and summary["running"] == 1
        # A fresh instance replays the same view from disk.
        replayed = RunRegistry(tmp_path)
        assert [r["run"] for r in replayed.runs()] == ["r1", "r2"]
        assert replayed.get("r1")["measured"] == 4

    def test_torn_tail_is_skipped(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record("r1", "complete", measured=1)
        with registry.path.open("ab") as handle:
            handle.write(b'{"registry": "repro-registry-v1", "run": "r2"')
        replayed = RunRegistry(tmp_path)
        assert len(replayed) == 1
        assert replayed.get("r1")["state"] == "complete"

    def test_recover_reconciles_stale_running_entries(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.record("dead", "running", cells=3)
        registry.record("fine", "complete", measured=1)
        # A run whose journal has a completion trailer really finished;
        # only its registry append was lost.
        journal = RunJournal(tmp_path, "landed")
        journal.start(1, "p")
        journal.mark_done(["k"])
        journal.complete(1, {})
        registry.record("landed", "running", cells=1)
        corrected = registry.recover(tmp_path)
        assert corrected == 2
        assert registry.get("dead")["state"] == "interrupted"
        assert registry.get("dead")["recovered"] is True
        assert registry.get("landed")["state"] == "complete"
        assert registry.get("fine")["state"] == "complete"
        # Recovery is durable, not just in-memory.
        assert RunRegistry(tmp_path).get("dead")["state"] == "interrupted"

    def test_compact_collapses_to_one_line_per_run(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for attempt in range(3):
            registry.record("r1", "running", attempt=attempt)
            registry.record("r1", "complete", measured=attempt)
        assert registry.compact() == 5
        lines = [
            json.loads(line)
            for line in registry.path.read_bytes().splitlines()
            if line
        ]
        assert len(lines) == 1
        assert lines[0]["state"] == "complete" and lines[0]["measured"] == 2
        assert RunRegistry(tmp_path).get("r1")["state"] == "complete"

    def test_registry_survives_service_restart(
        self, tmp_path, small_kernel_factory, power7_arch
    ):
        plan = _plan(small_kernel_factory)
        keys = None
        service = MeasurementService(store=tmp_path / "store")
        try:
            lines = []
            trailer = service.submit(
                plan_request(plan), lambda: lines.append
            )
            keys = [
                service._engine("POWER7", 0, None).executor.key_of(cell)
                for cell in plan.cells
            ]
            assert trailer["complete"] is True
        finally:
            service.close()
        run = run_id(keys)
        # A brand-new service on the same store remembers the run even
        # though its journal was garbage-collected on completion.
        reborn = MeasurementService(store=tmp_path / "store")
        try:
            listing = reborn.runs_listing()
            assert [r["run"] for r in listing["runs"]] == [run]
            record = reborn.registry.get(run)
            assert record["state"] == "complete"
            assert record["plan_digest"] == plan_digest(keys)
            status, _ = reborn.run_status(run)
            assert status["found"] is True and status["state"] == "complete"
        finally:
            reborn.close()


def plan_request(plan, **extra):
    from repro.exec.serialize import plan_to_dict

    request = plan_to_dict(plan)
    request.update(extra)
    return request


# -- admission control ---------------------------------------------------------


class TestAdmissionControl:
    def test_token_auth(self, tmp_path, small_kernel_factory):
        service = MeasurementService(store=tmp_path / "store", token="s3cret")
        server, url = _start(service)
        try:
            # /health stays open (load balancers probe unauthenticated).
            assert ServiceClient(url, token=None).health()["ok"] is True
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(url, token=None).stats()
            assert excinfo.value.status == 401
            with pytest.raises(ServiceError) as excinfo:
                ServiceClient(url, token="wrong").runs()
            assert excinfo.value.status == 401
            authed = ServiceClient(url, token="s3cret")
            assert authed.stats()["admission"]["auth"] is True
            plan = ExperimentPlan.single(
                small_kernel_factory("add", count=24),
                MachineConfig(1, 1),
                _DURATION,
            )
            report = RemoteExecutor(authed).execute(plan)
            assert report.ok
            assert service._counters["auth_failures"] == 2
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_request_budget_answers_429_and_retry_succeeds(
        self, tmp_path, small_kernel_factory, power7_arch
    ):
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24),
            MachineConfig(1, 1),
            _DURATION,
        )
        baseline = SerialExecutor(Machine(power7_arch)).run(plan)
        service = MeasurementService(
            store=tmp_path / "store", max_requests=1, retry_after=0.05
        )
        server, url = _start(service)
        try:
            # Saturate the budget, as a stuck request would.
            service._admit("occupier", 0)
            with pytest.raises(ServiceError) as excinfo:
                RemoteExecutor(url, retries=0).execute(plan)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == pytest.approx(0.05)
            assert excinfo.value.transient
            # With retry budget, the client rides out the backpressure
            # window transparently -- and the bytes are identical.
            releaser = threading.Timer(0.2, service._release, args=(0,))
            releaser.start()
            try:
                report = RemoteExecutor(url, retries=4).execute(plan)
            finally:
                releaser.join()
            assert report.ok
            assert list(report.measurements) == baseline
            assert service._counters["rejected_requests"] >= 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_cell_budget_rejects_second_plan_not_first(self, tmp_path):
        service = MeasurementService(
            store=tmp_path / "store", max_inflight_cells=10
        )
        try:
            # An oversized plan admits against an empty budget...
            service._admit("big", 50)
            # ...but the next submission bounces until it drains.
            with pytest.raises(ServiceError) as excinfo:
                service._admit("next", 1)
            assert excinfo.value.status == 429
            service._release(50)
            service._admit("next", 1)
            service._release(1)
        finally:
            service.close()

    def test_injected_rejection_is_deterministic_and_retryable(
        self, tmp_path, small_kernel_factory, power7_arch
    ):
        plan = _plan(small_kernel_factory)
        baseline = SerialExecutor(Machine(power7_arch)).run(plan)
        with faults.injected(FaultPlan(seed=3).arm("reject")):
            service = MeasurementService(store=tmp_path / "store")
            server, url = _start(service)
            try:
                with pytest.raises(ServiceError) as excinfo:
                    RemoteExecutor(url, retries=0).execute(plan)
                assert excinfo.value.status == 429
                # The reject site is transient (times=1): the same
                # submission retried passes admission and the response
                # byte-matches the serial baseline.
                report = RemoteExecutor(url, retries=2).execute(plan)
                assert report.ok
                assert list(report.measurements) == baseline
                assert service._counters["rejected_requests"] >= 1
            finally:
                server.shutdown()
                server.server_close()
                service.close()

    def test_drain_rejects_with_503_and_goes_idle(
        self, tmp_path, small_kernel_factory
    ):
        plan = _plan(small_kernel_factory)
        service = MeasurementService(store=tmp_path / "store")
        server, url = _start(service)
        try:
            report = RemoteExecutor(url, retries=0).execute(plan)
            assert report.ok
            service.drain()
            assert ServiceClient(url).health()["draining"] is True
            with pytest.raises(ServiceError) as excinfo:
                RemoteExecutor(url, retries=0).execute(plan)
            assert excinfo.value.status == 503
            assert excinfo.value.transient
            assert service.wait_idle(timeout=5.0) is True
            assert service._counters["drain_rejected"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_stalled_service_stream_is_still_bit_identical(
        self, tmp_path, small_kernel_factory, power7_arch
    ):
        plan = _plan(small_kernel_factory)
        baseline = SerialExecutor(Machine(power7_arch)).run(plan)
        with faults.injected(
            FaultPlan(seed=1).arm("stall"),
        ) as armed:
            armed.stall_s = 0.2
            service = MeasurementService(store=tmp_path / "store")
            server, url = _start(service)
            try:
                report = RemoteExecutor(url).execute(plan)
            finally:
                server.shutdown()
                server.server_close()
                service.close()
        assert report.ok
        assert list(report.measurements) == baseline


class TestClientRetries:
    def test_idempotent_gets_retry_through_transient_failures(
        self, monkeypatch
    ):
        client = ServiceClient("http://127.0.0.1:1", retries=3)
        calls = {"n": 0}

        def flaky(method, path, body=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ServiceError("connection reset", status=503)
            return {"ok": True}

        monkeypatch.setattr(client, "_json_once", flaky)
        monkeypatch.setattr("repro.exec.client.time.sleep", lambda s: None)
        assert client.health() == {"ok": True}
        assert calls["n"] == 3

    def test_post_never_retries_and_terminal_errors_propagate(
        self, monkeypatch
    ):
        client = ServiceClient("http://127.0.0.1:1", retries=3)
        calls = {"n": 0}

        def always_down(method, path, body=None):
            calls["n"] += 1
            raise ServiceError("boom", status=503)

        monkeypatch.setattr(client, "_json_once", always_down)
        monkeypatch.setattr("repro.exec.client.time.sleep", lambda s: None)
        with pytest.raises(ServiceError):
            client.probe("POWER7", 0)
        assert calls["n"] == 1  # POST: no transparent retry
        calls["n"] = 0
        with pytest.raises(ServiceError):
            client.stats()
        assert calls["n"] == 4  # GET: 1 + retries attempts

    def test_non_transient_errors_never_retry(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:1", retries=3)
        calls = {"n": 0}

        def bad_request(method, path, body=None):
            calls["n"] += 1
            raise ServiceError("nope", status=404)

        monkeypatch.setattr(client, "_json_once", bad_request)
        with pytest.raises(ServiceError):
            client.runs()
        assert calls["n"] == 1


# -- circuit breakers ----------------------------------------------------------


class TestCircuitBreaker:
    def test_state_machine(self):
        breaker = _CircuitBreaker(threshold=2, cooldown=0.05)
        assert breaker.admits() and breaker.state == "closed"
        breaker.record_failure()
        assert breaker.admits()  # one failure: still closed
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opened == 1
        assert not breaker.admits()
        time.sleep(0.06)
        assert breaker.admits()  # cooldown elapsed: half-open probe
        assert breaker.state == "half-open"
        breaker.record_failure()  # probe failed: straight back open
        assert breaker.state == "open" and breaker.opened == 2
        time.sleep(0.06)
        assert breaker.admits()
        breaker.record_success()
        assert breaker.state == "closed" and breaker.consecutive == 0
        assert breaker.to_dict()["failures"] == 3

    def test_downed_replica_rejoins_mid_campaign(
        self, tmp_path, small_kernel_factory, power7_arch
    ):
        plans = [
            ExperimentPlan.single(
                small_kernel_factory("add", count=24 + 8 * n),
                MachineConfig(1, 1),
                _DURATION,
            )
            for n in range(3)
        ]
        baseline = [
            SerialExecutor(Machine(power7_arch)).run(plan) for plan in plans
        ]
        # Reserve a port for the replica without serving on it yet.
        import socket

        probe_sock = socket.socket()
        probe_sock.bind(("127.0.0.1", 0))
        port = probe_sock.getsockname()[1]
        probe_sock.close()

        executor = ShardedExecutor(
            Machine(power7_arch),
            [f"http://127.0.0.1:{port}"],
            store=None,
            local=True,
            request_timeout=2.0,
            breaker_threshold=1,
            breaker_cooldown=0.2,
        )
        shard = executor._shards[0]
        # Replica down: the first plan trips the breaker open and every
        # cell fails over to the local plane.
        first = executor.execute(plans[0])
        assert first.ok
        assert list(first.measurements) == baseline[0]
        assert shard.breaker.state == "open"
        # Still inside the cooldown: the breaker admits nothing (no
        # probe round trip is even attempted against the dead port).
        second = executor.execute(plans[1])
        assert list(second.measurements) == baseline[1]

        # The replica comes back; after the cooldown, the half-open
        # probe re-admits it mid-campaign.
        replica_service = MeasurementService()
        server = build_server(replica_service, port=port)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            time.sleep(0.25)
            third = executor.execute(plans[2])
            assert list(third.measurements) == baseline[2]
            assert shard.breaker.state == "closed"
            stats = executor.replica_stats()
            assert stats[0]["opened"] >= 1
            assert stats[0]["state"] == "closed"
            assert stats[0]["successes"] >= 1
        finally:
            executor.close()
            server.shutdown()
            server.server_close()
            replica_service.close()


# -- kill -9 the server --------------------------------------------------------


def _serve_env(fault_spec: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_TOKEN", None)
    if fault_spec:
        env["REPRO_FAULTS"] = fault_spec
    return env


def _spawn_server(store_dir, fault_spec=None):
    """``python -m repro serve`` on an ephemeral port; (process, url)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            str(store_dir),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_serve_env(fault_spec),
    )
    # The banner line carries the bound ephemeral port.
    banner = process.stdout.readline()
    assert "campaign service on " in banner, banner
    url = banner.split("campaign service on ", 1)[1].split()[0]
    return process, url


class TestServerKillNineRestart:
    def test_sigkilled_server_restarts_and_resumes_warm(
        self, tmp_path, power7_arch
    ):
        """The tentpole acceptance: kill -9 ``repro serve`` mid-run,
        restart it on the same store, and the restarted server (a) lists
        the interrupted run in ``GET /runs`` via the recovered registry,
        and (b) serves the resubmitted plan with zero re-measurement of
        warm cells, byte-identical to a one-shot serial execution."""
        from repro.march import get_architecture
        from repro.workloads import daxpy_kernels

        store_dir = tmp_path / "store"
        arch = get_architecture("POWER7")
        plan = ExperimentPlan.cross(
            [daxpy_kernels(arch, loop_size=96)[0]],
            [
                MachineConfig(1, 1), MachineConfig(2, 1), MachineConfig(2, 2),
                MachineConfig(4, 1), MachineConfig(4, 2), MachineConfig(4, 4),
            ],
            duration=_DURATION,
        )
        keys = [
            SerialExecutor(Machine(arch)).key_of(cell) for cell in plan.cells
        ]
        run = run_id(keys)

        # First server: paced (each measured batch sleeps 0.5 s) so it
        # is killable between durable batches.
        process, url = _spawn_server(store_dir, "slow:1,slow_s:0.5")
        failure: list = []

        def submit_and_die():
            try:
                RemoteExecutor(url, retries=0).execute(plan)
            except ServiceError:
                pass  # the stream dies with the server -- expected
            except Exception as exc:  # pragma: no cover - diagnostics
                failure.append(exc)

        client_thread = threading.Thread(target=submit_and_die, daemon=True)
        try:
            client_thread.start()
            from repro.exec import ResultStore

            deadline = time.monotonic() + 60
            while len(ResultStore(store_dir)) < 2:
                assert time.monotonic() < deadline, "no progress to kill"
                assert process.poll() is None, process.communicate()[1]
                time.sleep(0.05)
            os.kill(process.pid, signal.SIGKILL)
            process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate()
        assert process.returncode == -signal.SIGKILL
        client_thread.join(timeout=30)
        assert not failure, failure
        persisted = len(ResultStore(store_dir))
        assert 2 <= persisted < len(plan.cells)
        # The kill -9 left the registry's last word at "running".
        assert RunRegistry(store_dir).get(run)["state"] == "running"

        # Second server, same store, no faults: start-up recovery
        # reconciles the stale entry, GET /runs lists the interruption.
        process, url = _spawn_server(store_dir)
        try:
            client = ServiceClient(url)
            listing = client.runs()
            record = {r["run"]: r for r in listing["runs"]}[run]
            assert record["state"] == "interrupted"
            assert record["recovered"] is True
            assert listing["journals"]["interrupted"] == 1

            # Resubmit: the warm cells serve from the store with zero
            # re-measurement, the rest measure, and the whole response
            # is byte-identical to a one-shot serial run.
            report = RemoteExecutor(url).execute(plan)
            assert report.ok
            stats = client.stats()
            assert stats["service"]["warm_cells"] == persisted
            assert stats["service"]["measured_cells"] == (
                len(plan.cells) - persisted
            )
            assert client.runs()["registry"]["complete"] == 1
            clean = SerialExecutor(Machine(power7_arch)).run(plan)
            assert list(report.measurements) == clean
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                out, err = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
                out, err = process.communicate()
        # SIGTERM is the drain path: exit 0, drain banner printed.
        assert process.returncode == 0, (out, err)
        assert "drained" in out
