"""Plan wire forms preserve content identity exactly.

The campaign service's correctness rests on one property: a plan cell
rebuilt from its JSON wire form has the same workload fingerprint and
therefore the same content-addressed store key -- and the same noise
draws, so the same measurement bytes -- as the original.  These tests
pin the round trip for every workload kind, both configuration shapes
and a full plan, through an actual ``json.dumps``/``loads`` cycle (the
bytes that really cross the socket).
"""

import json

import pytest

from repro.errors import MeasurementError
from repro.exec import ExperimentPlan, PlanCell, SerialExecutor
from repro.exec.plan import workload_fingerprint
from repro.exec.serialize import (
    cell_from_dict,
    cell_to_dict,
    plan_from_dict,
    plan_to_dict,
    profile_from_dict,
    profile_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from repro.sim import Machine, MachineConfig, Placement, get_pstate
from repro.sim.topology import parse_topology
from repro.workloads import spec_cpu2006

_DURATION = 1.0


def _wire(data: dict) -> dict:
    """Round-trip through real JSON bytes, as the socket does."""
    return json.loads(json.dumps(data))


class TestWorkloadRoundTrip:
    def test_kernel(self, small_kernel_factory):
        kernel = small_kernel_factory("lxvw4x", count=24, level="L1")
        rebuilt = workload_from_dict(_wire(workload_to_dict(kernel)))
        assert workload_fingerprint(rebuilt) == workload_fingerprint(kernel)

    def test_placement(self, small_kernel_factory):
        mix = Placement(
            "mix",
            (
                (
                    small_kernel_factory("addic", count=24),
                    small_kernel_factory("ld", count=24, level="MEM"),
                ),
            ),
        )
        rebuilt = workload_from_dict(_wire(workload_to_dict(mix)))
        assert workload_fingerprint(rebuilt) == workload_fingerprint(mix)

    def test_profiled_workload(self):
        mcf = spec_cpu2006()[5]
        rebuilt = workload_from_dict(_wire(workload_to_dict(mcf)))
        # The fingerprint hashes repr(profile): the rebuilt profile
        # must be repr-identical (field order, int smt keys and all).
        assert repr(rebuilt.profile) == repr(mcf.profile)
        assert workload_fingerprint(rebuilt) == workload_fingerprint(mcf)

    def test_profile_smt_keys_restored_as_ints(self):
        profile = spec_cpu2006()[0].profile
        rebuilt = profile_from_dict(_wire(profile_to_dict(profile)))
        assert rebuilt == profile
        assert all(isinstance(way, int) for way in rebuilt.smt_scaling)

    def test_opaque_workload_is_rejected(self):
        class Opaque:
            name = "mystery"

        with pytest.raises(MeasurementError):
            workload_to_dict(Opaque())

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(MeasurementError):
            workload_from_dict({"kind": "hologram"})


class TestCellAndPlanRoundTrip:
    def test_cell_key_is_preserved(self, machine, small_kernel_factory):
        executor = SerialExecutor(machine)
        cell = PlanCell(
            small_kernel_factory("add", count=24),
            MachineConfig(2, 2, p_state=get_pstate("p2")),
            _DURATION,
        )
        rebuilt = cell_from_dict(_wire(cell_to_dict(cell)))
        assert executor.key_of(rebuilt) == executor.key_of(cell)

    def test_topology_cell_key_is_preserved(
        self, machine, small_kernel_factory
    ):
        executor = SerialExecutor(machine)
        cell = PlanCell(
            small_kernel_factory("add", count=24),
            parse_topology("2big-2@p2+2little"),
            _DURATION,
        )
        rebuilt = cell_from_dict(_wire(cell_to_dict(cell)))
        assert executor.key_of(rebuilt) == executor.key_of(cell)

    def test_malformed_cell_is_rejected(self):
        with pytest.raises(MeasurementError):
            cell_from_dict({"workload": {"kind": "kernel"}})

    def test_plan_round_trip_measures_identically(
        self, power7_arch, small_kernel_factory
    ):
        plan = ExperimentPlan.cross(
            [
                small_kernel_factory("add", count=24),
                spec_cpu2006()[5],
            ],
            [MachineConfig(1, 1), MachineConfig(2, 2)],
            p_states=[get_pstate("nominal"), get_pstate("p3")],
            duration=_DURATION,
        )
        rebuilt = plan_from_dict(_wire(plan_to_dict(plan)))
        assert rebuilt.size == plan.size
        original = SerialExecutor(Machine(power7_arch)).run(plan)
        again = SerialExecutor(Machine(power7_arch)).run(rebuilt)
        assert original == again

    def test_plan_without_cells_is_rejected(self):
        with pytest.raises(MeasurementError):
            plan_from_dict({"cells": None})
