"""Result-store round trips and warm-run semantics.

Covers the serialization satellite (serialize -> JSON -> deserialize
-> *identical* objects for PState, MachineConfig, Kernel, Placement and
Measurement) and the acceptance property that a warm store serves a
whole campaign -- including the Figure-9 stressmark search -- with
zero ``Machine.run``/``run_many`` invocations.
"""

import json

import pytest

from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
)
from repro.measure.measurement import Measurement
from repro.sim import (
    Kernel,
    Machine,
    MachineConfig,
    Placement,
    PState,
    get_pstate,
)
from repro.stressmark.search import build_stressmark, covering_sequences
from repro.workloads import spec_cpu2006

_DURATION = 1.0


def _json_round_trip(payload):
    return json.loads(json.dumps(payload))


class TestSerializationRoundTrips:
    def test_pstate(self):
        p_state = get_pstate("p2")
        assert PState.from_dict(_json_round_trip(p_state.to_dict())) == p_state

    def test_machine_config(self):
        config = MachineConfig(4, 2).with_p_state(get_pstate("turbo"))
        rebuilt = MachineConfig.from_dict(_json_round_trip(config.to_dict()))
        assert rebuilt == config
        assert rebuilt.label == "4-2@turbo"

    def test_aperiodic_kernel_exact(self, small_kernel_factory):
        kernel = small_kernel_factory("ld", count=24, dep=3, level="L2")
        rebuilt = Kernel.from_dict(_json_round_trip(kernel.to_dict()))
        assert rebuilt == kernel
        assert rebuilt.digest() == kernel.digest()

    def test_periodic_kernel_preserves_digest(self, power7_arch):
        kernel = build_stressmark(
            power7_arch, ("mulldo", "lxvw4x", "xvnmsubmdp"), 96
        )
        rebuilt = Kernel.from_dict(_json_round_trip(kernel.to_dict()))
        assert rebuilt.period == kernel.period
        assert rebuilt.digest() == kernel.digest()
        assert rebuilt == kernel

    def test_placement(self, small_kernel_factory):
        placement = Placement(
            "mix",
            (
                (
                    small_kernel_factory("addic", count=24),
                    small_kernel_factory("ld", count=24, level="MEM"),
                ),
            ),
        )
        rebuilt = Placement.from_dict(_json_round_trip(placement.to_dict()))
        assert rebuilt == placement
        assert rebuilt.canonical_salt() == placement.canonical_salt()

    def test_placement_with_protocol_workload_rejected(self):
        placement = Placement("spec", ((spec_cpu2006()[0],),))
        with pytest.raises(TypeError, match="only kernel placements"):
            placement.to_dict()

    def test_measurement_bit_identical(self, machine, small_kernel_factory):
        config = MachineConfig(2, 2).with_p_state(get_pstate("p2"))
        measurement = machine.run(
            small_kernel_factory("fmadd", count=24), config, _DURATION
        )
        rebuilt = Measurement.from_dict(
            _json_round_trip(measurement.to_dict())
        )
        assert rebuilt == measurement

    def test_placement_measurement_round_trip(
        self, machine, small_kernel_factory
    ):
        config = MachineConfig(1, 2)
        mix = Placement(
            "mix",
            (
                (
                    small_kernel_factory("addic", count=24),
                    small_kernel_factory("ld", count=24, level="MEM"),
                ),
            ),
        )
        measurement = machine.run(mix, config, _DURATION)
        rebuilt = Measurement.from_dict(
            _json_round_trip(measurement.to_dict())
        )
        assert rebuilt == measurement
        assert rebuilt.thread_workloads == measurement.thread_workloads
        assert rebuilt.is_heterogeneous


class TestResultStore:
    def test_put_get_contains(self, machine, small_kernel_factory, tmp_path):
        store = ResultStore(tmp_path / "store")
        measurement = machine.run(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        assert store.get("ab" * 16) is None
        store.put("ab" * 16, measurement)
        assert "ab" * 16 in store
        assert store.get("ab" * 16) == measurement
        assert len(store) == 1
        assert store.keys() == ["ab" * 16]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        shard = store.shard_dir / "cd.jsonl"
        shard.write_text("{not json\n")
        assert store.get("cd" * 16) is None

    def test_format_mismatch_is_a_miss(self, machine, small_kernel_factory, tmp_path):
        store = ResultStore(tmp_path)
        measurement = machine.run(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        store.put("ef" * 16, measurement)
        shard = store.shard_dir / "ef.jsonl"
        payload = json.loads(shard.read_text())
        payload["format"] = "something-else"
        shard.write_text(json.dumps(payload) + "\n")
        assert ResultStore(tmp_path).get("ef" * 16) is None

    def test_put_many_one_append_per_shard(
        self, machine, small_kernel_factory, tmp_path
    ):
        """A batched write is O(batch): the cells land as appended
        lines in their shard files, and rewriting a key appends a
        newer line that wins on read."""
        store = ResultStore(tmp_path)
        first = machine.run(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        second = machine.run(
            small_kernel_factory("mulld", count=24),
            MachineConfig(1, 1),
            _DURATION,
        )
        store.put_many([("ab" * 16, first), ("ab" + "cd" * 15 + "ef", second)])
        shard = store.shard_dir / "ab.jsonl"
        assert len(shard.read_text().splitlines()) == 2
        store.put_many([("ab" * 16, second)])  # overwrite appends
        assert len(shard.read_text().splitlines()) == 3
        assert store.get("ab" * 16) == second
        assert ResultStore(tmp_path).get("ab" * 16) == second
        assert len(store) == 2

    def test_appends_visible_across_store_objects(
        self, machine, small_kernel_factory, tmp_path
    ):
        """Two campaigns sharing one directory see each other's writes:
        a miss re-scans the shard tail before giving up."""
        writer = ResultStore(tmp_path)
        reader = ResultStore(tmp_path)
        measurement = machine.run(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        assert reader.get("ab" * 16) is None  # prime the shard index
        writer.put("ab" * 16, measurement)
        assert reader.get("ab" * 16) == measurement

    def test_torn_tail_is_repaired_and_skipped(
        self, machine, small_kernel_factory, tmp_path
    ):
        """A crashed writer's partial trailing line neither corrupts
        later appends nor is ever served."""
        store = ResultStore(tmp_path)
        measurement = machine.run(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        shard = store.shard_dir / "ab.jsonl"
        shard.write_bytes(b'{"format": "repro-result-v1", "key": "ab')
        store.put("ab" * 16, measurement)
        assert store.get("ab" * 16) == measurement
        assert ResultStore(tmp_path).get("ab" * 16) == measurement

    def test_reader_waits_out_partially_visible_append(
        self, machine, small_kernel_factory, tmp_path
    ):
        """A reader racing a concurrent append must not skip past the
        torn tail: once the remaining bytes land, the entry is found."""
        writer = ResultStore(tmp_path)
        reader = ResultStore(tmp_path)
        measurement = machine.run(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        writer.put("ab" * 16, measurement)
        shard = writer.shard_dir / "ab.jsonl"
        full = shard.read_bytes()
        # Simulate the reader observing only half the append...
        shard.write_bytes(full[: len(full) // 2])
        assert reader.get("ab" * 16) is None
        # ...then the rest of the write becomes visible.
        shard.write_bytes(full)
        assert reader.get("ab" * 16) == measurement

    def test_legacy_per_cell_files_still_served(
        self, machine, small_kernel_factory, tmp_path
    ):
        """Stores written by the pre-shard layout stay warm."""
        store = ResultStore(tmp_path)
        measurement = machine.run(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        legacy = tmp_path / "ab" / ("ab" * 16 + ".json")
        legacy.parent.mkdir(parents=True)
        legacy.write_text(
            json.dumps(
                {
                    "format": "repro-result-v1",
                    "key": "ab" * 16,
                    "measurement": measurement.to_dict(),
                }
            )
        )
        assert store.get("ab" * 16) == measurement
        assert "ab" * 16 in store
        assert len(store) == 1 and store.keys() == ["ab" * 16]


def _forbid_measurement(machine):
    """Make any machine measurement path raise loudly."""

    def explode(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("Machine measurement invoked on a warm run")

    machine.run = explode
    machine.run_many = explode
    machine.run_cells = explode
    machine._measure = explode


class TestWarmRuns:
    def test_warm_plan_never_touches_the_machine(
        self, power7_arch, small_kernel_factory, tmp_path
    ):
        kernels = [
            small_kernel_factory("add", count=24),
            small_kernel_factory("mulld", count=24),
        ]
        plan = ExperimentPlan.cross(
            kernels + [spec_cpu2006()[0]],
            [MachineConfig(1, 1), MachineConfig(8, 4)],
            duration=_DURATION,
        )
        store = ResultStore(tmp_path / "store")
        cold = SerialExecutor(Machine(power7_arch), store=store).run(plan)

        warm_machine = Machine(power7_arch)
        _forbid_measurement(warm_machine)
        warm = SerialExecutor(warm_machine, store=store).run(plan)
        assert warm == cold
        assert store.hits == plan.size

    def test_store_shared_between_serial_and_parallel(
        self, power7_arch, small_kernel_factory, tmp_path
    ):
        plan = ExperimentPlan.cross(
            [small_kernel_factory("add", count=24)],
            [MachineConfig(2, 2), MachineConfig(4, 4)],
            duration=_DURATION,
        )
        store = ResultStore(tmp_path / "store")
        cold = ParallelExecutor(
            Machine(power7_arch), workers=2, chunk_size=1, store=store
        ).run(plan)
        warm_machine = Machine(power7_arch)
        _forbid_measurement(warm_machine)
        warm = SerialExecutor(warm_machine, store=store).run(plan)
        assert warm == cold

    def test_fig9_stressmark_warm_run_zero_machine_runs(
        self, power7_arch, tmp_path
    ):
        """The acceptance criterion, at reduced scale: a warm store
        re-run of the Figure-9 search flow performs zero Machine.run
        calls and reproduces the cold results exactly."""
        from repro.stressmark import stressmark_search

        sequences = covering_sequences(("mulldo", "lxvw4x", "xvnmsubmdp"))[:12]
        store = ResultStore(tmp_path / "store")
        cold_machine = Machine(power7_arch)
        cold = stressmark_search(
            cold_machine,
            sequences,
            loop_size=96,
            duration=_DURATION,
            executor=SerialExecutor(cold_machine, store=store),
        )

        warm_machine = Machine(power7_arch)
        _forbid_measurement(warm_machine)
        warm = stressmark_search(
            warm_machine,
            sequences,
            loop_size=96,
            duration=_DURATION,
            executor=SerialExecutor(warm_machine, store=store),
        )
        assert warm == cold


class TestInterruptedRuns:
    def test_progress_is_durable_mid_campaign(
        self, power7_arch, small_kernel_factory, tmp_path
    ):
        """A campaign killed partway keeps everything measured so far:
        persistence happens per batch, not after the whole miss set."""
        machine = Machine(power7_arch)
        kernel = small_kernel_factory("add", count=24)
        plan = ExperimentPlan.cross(
            [kernel],
            [MachineConfig(1, 1), MachineConfig(2, 2)],
            duration=_DURATION,
        )
        store = ResultStore(tmp_path / "store")
        original = machine.run_many

        def dies_on_second_config(workloads, config, duration):
            if config == MachineConfig(2, 2):
                raise KeyboardInterrupt
            return original(workloads, config, duration)

        machine.run_many = dies_on_second_config
        with pytest.raises(KeyboardInterrupt):
            SerialExecutor(machine, store=store).run(plan)
        # The first configuration's cell survived the interruption...
        assert len(store) == 1
        # ...and a re-run only measures the missing one.
        machine.run_many = original
        SerialExecutor(machine, store=store).run(plan)
        assert store.hits == 1 and len(store) == 2


class TestArchDigestKeys:
    def test_cell_keys_stable_across_processes(self, tmp_path):
        """Hash randomization must never shift store keys: a store is
        only useful if a new process computes the same keys."""
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            """
            from repro.exec.plan import PlanCell
            from repro.march import get_architecture
            from repro.sim import MachineConfig
            from repro.stressmark.search import build_stressmark
            from repro.workloads import spec_cpu2006

            arch = get_architecture("POWER7")
            kernel = build_stressmark(arch, ("mulldo", "lxvw4x"), 64)
            digest = arch.content_digest()
            cells = [
                PlanCell(kernel, MachineConfig(2, 2), 1.0),
                PlanCell(spec_cpu2006()[0], MachineConfig(8, 4), 1.0),
            ]
            print(";".join(cell.key("POWER7", 0, digest) for cell in cells))
            """
        )

        def run_once(seed: str) -> str:
            import os

            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            return result.stdout.strip()

        assert run_once("1") == run_once("2")

    def test_definition_edit_invalidates_store(
        self, small_kernel_factory, tmp_path
    ):
        """Editing the architecture definition must shift cell keys so
        stale persisted measurements are never served."""
        import dataclasses

        from repro.march import get_architecture

        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        store = ResultStore(tmp_path / "store")
        SerialExecutor(Machine(get_architecture("POWER7")), store=store).run(plan)

        edited_arch = get_architecture("POWER7")
        prop = edited_arch.properties.get("add")
        edited_arch.properties.add(
            dataclasses.replace(prop, latency=prop.latency + 1.0)
        )
        edited_store_view = SerialExecutor(Machine(edited_arch), store=store)
        edited_store_view.run(plan)
        # The edited machine measured afresh instead of aliasing.
        assert store.misses >= 1 and len(store) == 2

    def test_bootstrap_write_back_keeps_keys_stable(
        self, small_kernel_factory, tmp_path
    ):
        """epi/avg_power write-backs are not machine physics and must
        not invalidate the store mid-session."""
        from repro.march import get_architecture

        arch = get_architecture("POWER7")
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        store = ResultStore(tmp_path / "store")
        SerialExecutor(Machine(arch), store=store).run(plan)
        arch.properties.add(
            arch.properties.get("add").with_bootstrap(epi=1.0, avg_power=9.0)
        )
        warm_machine = Machine(arch)
        _forbid_measurement(warm_machine)
        SerialExecutor(warm_machine, store=store).run(plan)
        assert len(store) == 1


class TestBootstrapThroughEngine:
    def test_warm_store_bootstrap_zero_machine_runs(self, tmp_path):
        from repro.march import get_architecture
        from repro.march.bootstrap import Bootstrapper

        store = ResultStore(tmp_path / "store")
        mnemonics = ["add", "mulld"]

        cold_arch = get_architecture("POWER7")
        cold_machine = Machine(cold_arch)
        cold = Bootstrapper(
            cold_arch,
            cold_machine,
            loop_size=64,
            duration=_DURATION,
            executor=SerialExecutor(cold_machine, store=store),
        ).run(mnemonics)

        warm_arch = get_architecture("POWER7")
        warm_machine = Machine(warm_arch)
        _forbid_measurement(warm_machine)
        warm = Bootstrapper(
            warm_arch,
            warm_machine,
            loop_size=64,
            duration=_DURATION,
            executor=SerialExecutor(warm_machine, store=store),
        ).run(mnemonics)
        assert warm == cold

    def test_executor_path_matches_default_path(self):
        from repro.march import get_architecture
        from repro.march.bootstrap import Bootstrapper

        arch_a = get_architecture("POWER7")
        machine_a = Machine(arch_a)
        default_path = Bootstrapper(
            arch_a, machine_a, loop_size=64, duration=_DURATION
        ).run(["add"])

        arch_b = get_architecture("POWER7")
        machine_b = Machine(arch_b)
        engine_path = Bootstrapper(
            arch_b,
            machine_b,
            loop_size=64,
            duration=_DURATION,
            executor=SerialExecutor(machine_b),
        ).run(["add"])
        assert engine_path == default_path


class TestRunnerBaselineMemoization:
    def test_idle_measured_once_per_config_and_window(self, power7_arch):
        from repro.measure import MeasurementRunner

        machine = Machine(power7_arch)
        calls = []
        original = machine.run_idle

        def counting(config=None, duration=10.0):
            calls.append((config, duration))
            return original(config, duration)

        machine.run_idle = counting
        runner = MeasurementRunner(machine, duration=_DURATION)
        first = runner.baseline()
        assert runner.baseline() is first
        assert len(calls) == 1
        runner.baseline(MachineConfig(8, 4))
        runner.baseline(MachineConfig(8, 4))
        assert len(calls) == 2

    def test_run_sweep_equal_config_ladder_first_wins(self, power7_arch):
        """A same-scale duplicate ladder entry cannot be represented in
        the config-keyed result dict; it must be skipped without being
        measured (the pre-engine behaviour)."""
        from repro.measure import MeasurementRunner
        from repro.sim import PState
        from tests.conftest import make_uniform_kernel

        machine = Machine(power7_arch)
        runner = MeasurementRunner(machine, duration=_DURATION)
        batches = []
        original = machine.run_cells

        def counting(cells, plan=None):
            batches.extend(
                sorted({cell.config.label for cell in cells})
            )
            return original(cells, plan=plan)

        machine.run_cells = counting
        sweep = runner.run_sweep(
            [make_uniform_kernel("add", count=24)],
            configs=[MachineConfig(8, 1)],
            p_states=[PState("a", 0.9, 0.9), PState("b", 0.9, 0.9)],
        )
        assert batches == ["8-1@a"]
        assert [config.label for config in sweep] == ["8-1@a"]

    def test_same_scale_p_state_baselines_stay_distinct(self, power7_arch):
        from repro.measure import MeasurementRunner
        from repro.sim import PState

        runner = MeasurementRunner(Machine(power7_arch), duration=_DURATION)
        eco = MachineConfig(1, 1).with_p_state(PState("eco", 0.8, 0.9))
        slow = MachineConfig(1, 1).with_p_state(PState("slow", 0.8, 0.9))
        # Equal configs (scales compare), different noise labels: the
        # memo must not serve one point's idle draws for the other.
        assert runner.baseline(eco) != runner.baseline(slow)
        assert runner.baseline(slow).config.label == "1-1@slow"
