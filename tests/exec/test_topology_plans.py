"""Topology cells through the execution engine: keys, stores, validation."""

import pytest

from repro.errors import MeasurementError, PlanValidationError, ReproError
from repro.exec.executors import ParallelExecutor, SerialExecutor
from repro.exec.plan import ExperimentPlan, PlanCell
from repro.exec.store import ResultStore
from repro.measure.measurement import Measurement
from repro.measure.runner import MeasurementRunner
from repro.sim import (
    Machine,
    MachineConfig,
    parse_topology,
    topology_ladder,
)
from repro.workloads.mixes import hi_ilp_kernel, memory_bound_kernel

_DURATION = 2.0


@pytest.fixture()
def kernels():
    return [hi_ilp_kernel(64), memory_bound_kernel(64)]


@pytest.fixture()
def topology():
    return parse_topology("2big-2@p2+2little")


class TestTopologyKeys:
    def test_key_folds_cluster_shape_and_digests(self, kernels, topology):
        cell = PlanCell(kernels[0], topology, _DURATION)
        base = cell.key("POWER7", 0, 1, {None: 1, "POWER7_ECO": 2})
        assert cell.key("POWER7", 0, 1, {None: 1, "POWER7_ECO": 3}) != base
        moved = PlanCell(
            kernels[0], parse_topology("2big-2@p3+2little"), _DURATION
        )
        assert moved.key("POWER7", 0, 1, {None: 1, "POWER7_ECO": 2}) != base

    def test_executor_resolves_cluster_digests(
        self, power7_arch, kernels, topology, tmp_path
    ):
        machine = Machine(power7_arch)
        executor = SerialExecutor(
            machine, store=ResultStore(tmp_path / "store")
        )
        plan = ExperimentPlan.cross(kernels, [topology], duration=_DURATION)
        first = executor.run(plan)
        # A fresh executor over the same store must compute identical
        # keys (digests are content-derived, not object-derived).
        warm_machine = Machine(power7_arch)

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("machine invoked on warm run")

        warm_machine.run = warm_machine.run_many = forbid
        warm_machine.run_cells = forbid
        warm = SerialExecutor(
            warm_machine, store=ResultStore(tmp_path / "store")
        ).run(plan)
        assert warm == first


class TestTopologySerialization:
    def test_measurement_round_trip(self, power7_arch, kernels, topology):
        measurement = Machine(power7_arch).run(
            kernels[0], topology, _DURATION
        )
        rebuilt = Measurement.from_dict(measurement.to_dict())
        assert rebuilt == measurement
        assert rebuilt.config == topology

    def test_parallel_matches_serial(self, power7_arch, kernels):
        configs = list(topology_ladder(4, step=2)) + [MachineConfig(2, 2)]
        plan = ExperimentPlan.cross(kernels, configs, duration=_DURATION)
        serial = SerialExecutor(Machine(power7_arch)).run(plan)
        with ParallelExecutor(Machine(power7_arch), workers=2) as executor:
            parallel = executor.run(plan)
        assert parallel == serial


class TestPlanValidation:
    def test_executor_rejects_infeasible_plan_upfront(
        self, power7_arch, kernels
    ):
        machine = Machine(power7_arch)
        bad = ExperimentPlan.cross(
            kernels,
            [MachineConfig(2, 2), parse_topology("4little-4")],
            duration=_DURATION,
        )
        calls = []
        machine.run_cells = lambda cells: calls.append(cells)
        with pytest.raises(PlanValidationError) as excinfo:
            SerialExecutor(machine).run(bad)
        # Clear, actionable, and raised before any measurement.
        assert "SMT-4" in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)
        assert not calls

    def test_oversized_cmp_config_fails_at_plan_time(
        self, power7_arch, kernels
    ):
        plan = ExperimentPlan.cross(
            kernels, [MachineConfig(12, 2)], duration=_DURATION
        )
        with pytest.raises(PlanValidationError) as excinfo:
            plan.validate_against(Machine(power7_arch))
        assert "12 cores" in str(excinfo.value)

    def test_unknown_core_class_fails_at_plan_time(
        self, power7_arch, kernels
    ):
        from repro.sim import ChipTopology, CoreCluster

        plan = ExperimentPlan.cross(
            kernels,
            [
                ChipTopology(
                    clusters=(
                        CoreCluster("odd", 1, 1, core_class="NOSUCH"),
                    )
                )
            ],
            duration=_DURATION,
        )
        with pytest.raises(PlanValidationError):
            plan.validate_against(Machine(power7_arch))

    def test_runner_sweep_fails_fast(self, power7_arch, kernels):
        runner = MeasurementRunner(
            Machine(power7_arch), duration=_DURATION
        )
        with pytest.raises(PlanValidationError):
            runner.run_sweep(kernels, configs=[parse_topology("9little")])

    def test_valid_plan_passes(self, power7_arch, kernels, topology):
        plan = ExperimentPlan.cross(kernels, [topology], duration=_DURATION)
        assert plan.validate_against(Machine(power7_arch)) is plan

    def test_machine_validate_config_public(self, power7_arch, topology):
        machine = Machine(power7_arch)
        machine.validate_config(topology)
        with pytest.raises(MeasurementError):
            machine.validate_config(parse_topology("4little-4"))


class TestTopologySweeps:
    def test_run_sweep_over_ladder(self, power7_arch, kernels):
        runner = MeasurementRunner(Machine(power7_arch), duration=_DURATION)
        ladder = topology_ladder(4, step=2)
        sweep = runner.run_sweep(kernels, configs=ladder)
        assert list(sweep) == list(ladder)
        for topology, measurements in sweep.items():
            assert len(measurements) == len(kernels)
            assert all(m.config == topology for m in measurements)

    def test_mixed_ladder_with_p_states(self, power7_arch, kernels):
        from repro.sim.pstate import NOMINAL, get_pstate

        runner = MeasurementRunner(Machine(power7_arch), duration=_DURATION)
        configs = [MachineConfig(2, 2), parse_topology("1big+1little")]
        sweep = runner.run_sweep(
            kernels, configs=configs, p_states=[NOMINAL, get_pstate("p2")]
        )
        labels = [config.label for config in sweep]
        assert labels == [
            "2-2",
            "1big+1little",
            "2-2@p2",
            "1big@p2+1little@p2",
        ]

    def test_baseline_memoized_per_topology(self, power7_arch, topology):
        runner = MeasurementRunner(Machine(power7_arch), duration=_DURATION)
        first = runner.baseline(topology)
        assert runner.baseline(topology) is first
        assert len(first.thread_counters) == topology.threads
