"""Store integrity: checksums, verify/scrub, real crashed-writer tails.

Every new shard line carries a content checksum; reads verify it, so a
tampered or torn record is quarantined (counted, logged, re-measured)
instead of silently serving wrong bytes.  ``verify`` audits without
touching anything; ``scrub`` repairs in place.  The crashed-writer
tests use *real* subprocess writers dying mid-append.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.exec import (
    ExperimentPlan,
    ResultStore,
    SerialExecutor,
)
from repro.exec import faults
from repro.exec.faults import FaultPlan
from repro.exec.store import record_checksum, render_record
from repro.sim import Machine, MachineConfig

_DURATION = 1.0


@pytest.fixture()
def measurement(machine, small_kernel_factory):
    return machine.run(
        small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
    )


class TestChecksums:
    def test_new_records_are_checksummed(self, measurement, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 16, measurement)
        (line,) = (store.shard_dir / "ab.jsonl").read_bytes().splitlines()
        payload = json.loads(line)
        assert payload["sum"] == record_checksum(
            "ab" * 16, payload["measurement"]
        )
        assert line + b"\n" == render_record("ab" * 16, measurement.to_dict())

    def test_checksum_survives_json_round_trip(self, measurement):
        """Shortest-repr float round-tripping: the checksum recomputed
        from a *parsed* record matches the one computed at write time."""
        original = measurement.to_dict()
        reparsed = json.loads(json.dumps(original))
        assert record_checksum("k", reparsed) == record_checksum("k", original)

    def test_legacy_lines_without_checksum_still_served(
        self, measurement, tmp_path
    ):
        store = ResultStore(tmp_path)
        legacy_line = (
            json.dumps(
                {
                    "format": "repro-result-v1",
                    "key": "ab" * 16,
                    "measurement": measurement.to_dict(),
                }
            ).encode()
            + b"\n"
        )
        (store.shard_dir / "ab.jsonl").write_bytes(legacy_line)
        assert store.get("ab" * 16) == measurement
        report = store.verify()
        assert report.ok
        assert report.legacy_lines == 1 and report.checksummed == 0

    def test_tampered_record_is_a_counted_miss(self, measurement, tmp_path):
        writer = ResultStore(tmp_path)
        writer.put("ab" * 16, measurement)
        shard = writer.shard_dir / "ab.jsonl"
        payload = json.loads(shard.read_bytes())
        payload["measurement"]["mean_power"] += 1.0  # bit-rot stand-in
        shard.write_bytes(json.dumps(payload).encode() + b"\n")
        store = ResultStore(tmp_path)
        assert store.get("ab" * 16) is None
        assert store.fault_stats()["checksum_failures"] == 1
        report = store.verify()
        assert not report.ok and report.checksum_mismatches == 1

    def test_corrupt_fault_roundtrip_remeasures_bit_identically(
        self, power7_arch, small_kernel_factory, tmp_path
    ):
        """End to end: a lying record (valid JSON, wrong payload) is
        caught on read and re-measured to the fault-free bytes."""
        kernel = small_kernel_factory("mulld", count=24)
        plan = ExperimentPlan.single(kernel, MachineConfig(1, 1), _DURATION)
        clean = SerialExecutor(Machine(power7_arch)).run(plan)
        with faults.injected(FaultPlan(seed=1).arm("corrupt")):
            SerialExecutor(
                Machine(power7_arch), store=ResultStore(tmp_path)
            ).run(plan)
        assert ResultStore(tmp_path).verify().checksum_mismatches == 1
        # The warm re-run detects the lie, re-measures, overwrites.
        store = ResultStore(tmp_path)
        rerun = SerialExecutor(Machine(power7_arch), store=store).run(plan)
        assert rerun == clean
        assert store.fault_stats()["checksum_failures"] == 1
        assert ResultStore(tmp_path).get(store.keys()[0]) == clean[0]


class TestVerifyScrub:
    @pytest.fixture()
    def damaged_store(self, measurement, tmp_path):
        """One shard carrying every damage class at once."""
        store = ResultStore(tmp_path)
        store.put("ab" * 16, measurement)  # valid, checksummed
        store.put("ab" * 16, measurement)  # superseded duplicate
        shard = store.shard_dir / "ab.jsonl"
        with shard.open("ab") as handle:
            handle.write(
                json.dumps(
                    {
                        "format": "repro-result-v1",
                        "key": "ab" + "cd" * 15 + "ef",
                        "measurement": measurement.to_dict(),
                    }
                ).encode()
                + b"\n"
            )  # legacy line, no checksum
            handle.write(b"{not json at all\n")  # corrupt line
            tampered = json.loads(
                render_record("ab" + "11" * 15, measurement.to_dict())
            )
            tampered["measurement"]["mean_power"] += 5.0
            handle.write(json.dumps(tampered).encode() + b"\n")  # mismatch
            handle.write(b'{"format": "repro-result-v1", "key": "ab')  # torn
        return ResultStore(tmp_path)

    def test_verify_classifies_every_damage(self, damaged_store):
        report = damaged_store.verify()
        assert not report.ok
        assert report.shards == 1
        assert report.checksummed == 2  # the duplicate pair
        assert report.legacy_lines == 1
        assert report.corrupt_lines == 1
        assert report.checksum_mismatches == 1
        assert report.torn_tails == 1
        # Distinct keys *seen*, including the unservable mismatched one.
        assert report.keys == 3
        assert "torn tail" in "; ".join(report.problems)

    def test_verify_is_read_only(self, damaged_store):
        shard = damaged_store.shard_dir / "ab.jsonl"
        before = shard.read_bytes()
        damaged_store.verify()
        assert shard.read_bytes() == before

    def test_scrub_repairs_and_compacts(self, damaged_store, measurement):
        report = damaged_store.scrub()
        assert report.dropped >= 3  # corrupt + mismatch + torn remnant
        assert report.compacted == 1  # the superseded duplicate
        after = ResultStore(damaged_store.root)
        clean = after.verify()
        assert clean.ok
        assert clean.legacy_lines == 0  # legacy upgraded to checksummed
        assert clean.keys == 2
        # Surviving measurements are byte-identical.
        assert after.get("ab" * 16) == measurement
        assert after.get("ab" + "cd" * 15 + "ef") == measurement
        # The mismatched record is gone (re-measures next run).
        assert after.get("ab" + "11" * 15) is None

    def test_scrub_clean_store_is_a_no_op(self, measurement, tmp_path):
        store = ResultStore(tmp_path)
        store.put("ab" * 16, measurement)
        shard = store.shard_dir / "ab.jsonl"
        before = shard.read_bytes()
        report = store.scrub()
        assert report.dropped == 0 and report.compacted == 0
        assert shard.read_bytes() == before


class TestIoErrorAccounting:
    def test_get_oserror_counted_and_warned_once_per_shard(
        self, measurement, tmp_path, caplog
    ):
        store = ResultStore(tmp_path)
        store.put("ab" * 16, measurement)
        store.put("ab" + "cd" * 15 + "ef", measurement)
        with faults.injected(FaultPlan().arm("io", times=1)):
            with caplog.at_level("WARNING", logger="repro.exec.store"):
                assert store.get("ab" * 16) is None
                assert store.get("ab" + "cd" * 15 + "ef") is None
        assert store.fault_stats()["io_errors"] == 2
        warnings = [
            record
            for record in caplog.records
            if "store I/O error" in record.getMessage()
        ]
        assert len(warnings) == 1  # warn-once per shard, count them all
        # The faults were transient: the records are still served.
        assert store.get("ab" * 16) == measurement


_WRITER_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.exec import ResultStore
    from repro.march import get_architecture
    from repro.sim import Machine, MachineConfig
    from repro.workloads import daxpy_kernels

    arch = get_architecture("POWER7")
    machine = Machine(arch)
    kernel = daxpy_kernels(arch, loop_size=96)[0]
    measurement = machine.run(kernel, MachineConfig(1, 1), 1.0)
    store = ResultStore(sys.argv[1])
    for key in sys.argv[2:]:
        store.put(key, measurement)
    print("DONE")
    """
)


def _writer_env(fault_spec: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    env.pop("REPRO_FAULTS", None)
    if fault_spec:
        env["REPRO_FAULTS"] = fault_spec
    return env


def _expected_measurement(power7_arch):
    from repro.workloads import daxpy_kernels

    machine = Machine(power7_arch)
    kernel = daxpy_kernels(power7_arch, loop_size=96)[0]
    return machine.run(kernel, MachineConfig(1, 1), _DURATION)


class TestConcurrentWriters:
    def test_no_record_lost_or_duplicated_under_contention(
        self, power7_arch, tmp_path
    ):
        """Two real writer processes interleaving appends on the same
        shards: every record lands exactly once and parses cleanly."""
        keys_a = [f"{i:02x}" + "aa" * 15 for i in range(16)]
        keys_b = [f"{i:02x}" + "bb" * 15 for i in range(16)]
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), *keys],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=_writer_env(),
            )
            for keys in (keys_a, keys_b)
        ]
        for writer in writers:
            stdout, stderr = writer.communicate(timeout=120)
            assert writer.returncode == 0, stderr
            assert "DONE" in stdout
        store = ResultStore(tmp_path)
        assert sorted(store.keys()) == sorted(keys_a + keys_b)
        expected = _expected_measurement(power7_arch)
        for key in keys_a + keys_b:
            assert store.get(key) == expected
        report = store.verify()
        assert report.ok and report.records == 32 and report.keys == 32

    def test_writer_killed_mid_append_loses_only_its_own_record(
        self, power7_arch, tmp_path
    ):
        """Satellite: a writer dying mid-append (the ``torn`` fault is
        a deterministic kill -9 mid-write) leaves a torn tail that the
        next writer repairs -- nothing else is lost, nothing duplicated.
        """
        torn_key = "ab" * 16
        victim = subprocess.run(
            [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), torn_key],
            capture_output=True,
            text=True,
            env=_writer_env("torn:1"),
            timeout=120,
        )
        assert victim.returncode == 109  # died inside the append
        report = ResultStore(tmp_path).verify()
        assert report.torn_tails == 1 and report.records == 0

        # A later writer on the same shard repairs the tail in passing.
        survivor_key = "ab" + "cd" * 15 + "ef"
        survivor = subprocess.run(
            [sys.executable, "-c", _WRITER_SCRIPT, str(tmp_path), survivor_key],
            capture_output=True,
            text=True,
            env=_writer_env(),
            timeout=120,
        )
        assert survivor.returncode == 0, survivor.stderr

        store = ResultStore(tmp_path)
        expected = _expected_measurement(power7_arch)
        assert store.get(survivor_key) == expected
        # The victim's record never finished: it re-measures next run.
        assert store.get(torn_key) is None
        report = store.verify()
        assert report.torn_tails == 0  # tail terminated by the repair
        assert report.corrupt_lines == 1  # the dead half-record
        assert report.records == 1 and report.keys == 1
        # Scrub removes the remnant entirely.
        assert store.scrub().dropped == 1
        final = ResultStore(tmp_path)
        assert final.verify().ok
        assert final.get(survivor_key) == expected
