"""Crash-safe resume: kill -9 a campaign, rerun, measure only the rest.

The journal satellite's acceptance test uses a *real* SIGKILL against a
real store-backed campaign subprocess -- no cooperative shutdown, no
mocked signals -- then asserts the rerun serves every already-persisted
cell from the store and the run journal records the interruption.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.exec import (
    ExperimentPlan,
    ResultStore,
    RunJournal,
    SerialExecutor,
    run_id,
)
from repro.exec.journal import audit_journals, gc_journals
from repro.exec.report import CellFailure
from repro.sim import Machine, MachineConfig

_DURATION = 1.0


class TestRunJournalUnit:
    def test_run_id_content_addressed(self):
        assert run_id(["a", "b"]) == run_id(["a", "b"])
        assert run_id(["a", "b"]) != run_id(["b", "a"])
        assert len(run_id(["a"])) == 24  # hex of 12 bytes

    def test_fresh_journal_lifecycle(self, tmp_path):
        journal = RunJournal(tmp_path, "deadbeef")
        assert not journal.resumed and not journal.completed
        journal.start(4, "test plan")
        journal.mark_done(["k1", "k2"])
        journal.mark_done(["k2", "k3"])  # k2 deduplicated
        journal.complete(3, {"retries": 1})
        lines = [
            json.loads(line)
            for line in (tmp_path / "journal" / "deadbeef.jsonl")
            .read_text()
            .splitlines()
        ]
        assert lines[0]["journal"] == "repro-run-v1"
        assert lines[1]["done"] == ["k1", "k2"]
        assert lines[2]["done"] == ["k3"]
        assert lines[3] == {
            "complete": True,
            "counters": {"retries": 1},
            "measured": 3,
        }

    def test_interrupted_journal_resumes(self, tmp_path):
        first = RunJournal(tmp_path, "cafe")
        first.start(4, "plan")
        first.mark_done(["k1", "k2"])
        # No complete line: the campaign died here.
        second = RunJournal(tmp_path, "cafe")
        assert second.resumed
        assert second.done == {"k1", "k2"}
        second.start(4, "plan")
        second.mark_done(["k3", "k4"])
        second.complete(2, {})
        third = RunJournal(tmp_path, "cafe")
        assert third.completed and not third.resumed
        assert third.done == {"k1", "k2", "k3", "k4"}

    def test_torn_journal_line_is_skipped(self, tmp_path):
        journal = RunJournal(tmp_path, "beef")
        journal.start(2, "plan")
        journal.mark_done(["k1"])
        path = tmp_path / "journal" / "beef.jsonl"
        with path.open("ab") as handle:
            handle.write(b'{"done": ["k2"')  # kill -9 mid-append
        reloaded = RunJournal(tmp_path, "beef")
        assert reloaded.done == {"k1"}
        assert reloaded.resumed

    def test_quarantine_memory(self, tmp_path):
        journal = RunJournal(tmp_path, "f00d")
        journal.start(1, "plan")
        failure = CellFailure(
            workload_name="bad",
            config_label="1-1",
            duration=1.0,
            attempts=3,
            kind="FaultInjectedError",
            message="poisoned",
        )
        journal.mark_quarantined([failure])
        reloaded = RunJournal(tmp_path, "f00d")
        assert [
            CellFailure.from_dict(entry) for entry in reloaded.prior_failures
        ] == [failure]

    def test_audit_counts_complete_and_interrupted(self, tmp_path):
        done = RunJournal(tmp_path, "aaaa")
        done.start(1, "plan")
        done.complete(1, {})
        RunJournal(tmp_path, "bbbb").start(1, "plan")
        assert audit_journals(tmp_path) == {
            "runs": 2,
            "complete": 1,
            "interrupted": 1,
        }
        assert audit_journals(tmp_path / "missing") == {
            "runs": 0,
            "complete": 0,
            "interrupted": 0,
        }

    def test_unwritable_journal_never_breaks_execution(
        self, power7_arch, small_kernel_factory, tmp_path, monkeypatch
    ):
        """The journal is observability, not a second store: losing it
        must not fail the campaign."""
        store = ResultStore(tmp_path / "store")
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        import pathlib

        original_open = pathlib.Path.open

        def journal_volume_unwritable(self, *args, **kwargs):
            if self.parent.name == "journal":
                raise OSError("injected: journal volume unwritable")
            return original_open(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "open", journal_volume_unwritable)
        measurements = SerialExecutor(
            Machine(power7_arch), store=store
        ).run(plan)
        assert len(measurements) == 1 and len(store) == 1


class TestJournalGC:
    """Retention: completed-run journals must not accumulate forever.

    The original engine never reclaimed journals -- a long-lived
    process (the campaign service) completing thousands of runs against
    one store grew ``<store>/journal/`` without bound.  The fix:
    :func:`gc_journals` drops exactly the journals that carry nothing
    the store does not -- completed, nothing quarantined, every done
    cell durable -- and keeps everything else (the crash-resume and
    quarantine records).
    """

    def _store_with(self, tmp_path, keys):
        """A real store holding one durable record per key."""
        from repro.measure.measurement import Measurement

        store = ResultStore(tmp_path / "store")
        measurement = Measurement(
            workload_name="w",
            config=MachineConfig(1, 1),
            duration=_DURATION,
            thread_counters=({"instructions": 1.0},),
            mean_power=1.0,
            power_std=0.1,
            sample_count=1000,
        )
        store.put_many((key, measurement) for key in keys)
        return store

    def test_completed_durable_journal_is_reclaimed(self, tmp_path):
        store = self._store_with(tmp_path, ["k1", "k2"])
        journal = RunJournal(store.root, "aaaa")
        journal.start(2, "plan")
        journal.mark_done(["k1", "k2"])
        journal.complete(2, {})
        assert gc_journals(store) == 1
        assert not journal.path.exists()
        # Idempotent: nothing left to reclaim.
        assert gc_journals(store) == 0

    def test_interrupted_journal_is_kept(self, tmp_path):
        store = self._store_with(tmp_path, ["k1"])
        journal = RunJournal(store.root, "bbbb")
        journal.start(2, "plan")
        journal.mark_done(["k1"])  # no complete line: crashed here
        assert gc_journals(store) == 0
        assert journal.path.exists()

    def test_completed_journal_with_missing_cell_is_kept(self, tmp_path):
        """A completed run whose store record vanished (external
        compaction, disk loss) keeps its journal: it is now the only
        resume record."""
        store = self._store_with(tmp_path, ["k1"])
        journal = RunJournal(store.root, "cccc")
        journal.start(2, "plan")
        journal.mark_done(["k1", "k-gone"])
        journal.complete(2, {})
        assert gc_journals(store) == 0
        assert journal.path.exists()

    def test_quarantined_journal_is_kept(self, tmp_path):
        store = self._store_with(tmp_path, ["k1"])
        journal = RunJournal(store.root, "dddd")
        journal.start(1, "plan")
        journal.mark_done(["k1"])
        journal.mark_quarantined(
            [
                CellFailure(
                    workload_name="bad",
                    config_label="1-1",
                    duration=_DURATION,
                    attempts=3,
                    kind="FaultInjectedError",
                    message="poisoned",
                )
            ]
        )
        journal.complete(0, {})
        assert gc_journals(store) == 0
        assert journal.path.exists()

    def test_real_campaign_journal_is_reclaimable(
        self, power7_arch, small_kernel_factory, tmp_path
    ):
        """End to end: the journal a store-backed run writes satisfies
        the retention rule and is reclaimed; the store still serves
        the cells warm afterwards."""
        store = ResultStore(tmp_path / "store")
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24),
            MachineConfig(1, 1),
            _DURATION,
        )
        executor = SerialExecutor(Machine(power7_arch), store=store)
        first = executor.run(plan)
        assert audit_journals(store.root)["complete"] == 1
        assert gc_journals(store) == 1
        assert audit_journals(store.root)["runs"] == 0
        # Resume-by-store still works without the journal.
        again = SerialExecutor(Machine(power7_arch), store=store).run(plan)
        assert again == first
        assert store.hits == 1

    def test_store_scrub_cli_reclaims_journals(
        self, power7_arch, small_kernel_factory, tmp_path, capsys
    ):
        from repro.__main__ import main

        store = ResultStore(tmp_path / "store")
        SerialExecutor(Machine(power7_arch), store=store).run(
            ExperimentPlan.single(
                small_kernel_factory("add", count=24),
                MachineConfig(1, 1),
                _DURATION,
            )
        )
        store.close()
        assert main(["store", "scrub", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "1 completed run journal(s) reclaimed" in out
        assert audit_journals(tmp_path / "store")["runs"] == 0


def _campaign_script(store_dir: str) -> str:
    """A store-backed serial sweep, paced so it can be killed mid-run."""
    return textwrap.dedent(
        f"""
        from repro.exec import ExperimentPlan, ResultStore, SerialExecutor
        from repro.march import get_architecture
        from repro.sim import Machine, MachineConfig
        from repro.workloads import daxpy_kernels

        arch = get_architecture("POWER7")
        machine = Machine(arch)
        plan = ExperimentPlan.cross(
            [daxpy_kernels(arch, loop_size=96)[0]],
            [
                MachineConfig(1, 1), MachineConfig(2, 1), MachineConfig(2, 2),
                MachineConfig(4, 1), MachineConfig(4, 2), MachineConfig(4, 4),
            ],
            duration=1.0,
        )
        SerialExecutor(machine, store=ResultStore({store_dir!r})).run(plan)
        print("COMPLETED")
        """
    )


def _subprocess_env(fault_spec: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    env.pop("REPRO_FAULTS", None)
    if fault_spec:
        env["REPRO_FAULTS"] = fault_spec
    return env


class TestKillNineResume:
    def test_sigkilled_campaign_resumes_from_store(self, tmp_path):
        store_dir = tmp_path / "store"
        # Each configuration batch sleeps 0.5 s before measuring, so
        # the campaign is killable between durable batches.
        process = subprocess.Popen(
            [sys.executable, "-c", _campaign_script(str(store_dir))],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=_subprocess_env("slow:1,slow_s:0.5"),
        )
        try:
            deadline = time.monotonic() + 60
            while len(ResultStore(store_dir)) < 2:
                assert time.monotonic() < deadline, "no progress to kill"
                if process.poll() is not None:  # pragma: no cover
                    pytest.fail(
                        "campaign finished before it could be killed: "
                        + process.communicate()[1]
                    )
                time.sleep(0.05)
            os.kill(process.pid, signal.SIGKILL)
            process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.communicate()
        assert process.returncode == -signal.SIGKILL

        persisted = len(ResultStore(store_dir))
        assert 2 <= persisted < 6

        # The journal knows the run died mid-flight.
        audit = audit_journals(store_dir)
        assert audit == {"runs": 1, "complete": 0, "interrupted": 1}
        (journal_path,) = (store_dir / "journal").glob("*.jsonl")
        interrupted = RunJournal(store_dir, journal_path.stem)
        assert interrupted.resumed
        assert 1 <= len(interrupted.done) <= persisted

        # The rerun (same plan, same store) measures only the rest.
        from repro.march import get_architecture
        from repro.workloads import daxpy_kernels

        arch = get_architecture("POWER7")
        machine = Machine(arch)
        plan = ExperimentPlan.cross(
            [daxpy_kernels(arch, loop_size=96)[0]],
            [
                MachineConfig(1, 1), MachineConfig(2, 1), MachineConfig(2, 2),
                MachineConfig(4, 1), MachineConfig(4, 2), MachineConfig(4, 4),
            ],
            duration=_DURATION,
        )
        store = ResultStore(store_dir)
        executor = SerialExecutor(machine, store=store)
        report = executor.execute(plan)
        assert report.ok
        assert store.hits == persisted
        assert store.misses == 6 - persisted

        # Same run id as the killed attempt; now journaled complete.
        assert audit_journals(store_dir) == {
            "runs": 1,
            "complete": 1,
            "interrupted": 0,
        }

        # And the measurements are bit-identical to a fault-free run.
        clean = SerialExecutor(Machine(get_architecture("POWER7"))).run(plan)
        assert list(report) == clean
