"""Persistent compacted store index: sidecar write, trust, and heal.

The sidecar (``shards/<xx>.idx``) is an accelerator, never an
authority: a fresh store instance seeds its in-memory offsets from it
instead of rescanning the shard JSONL, but every serve still verifies
the key and checksum at the recorded offset.  These tests pin the
trust rules -- offset-validated against shard size and mtime, torn or
stale sidecars fall back to a scan and heal in place -- and the
counters that make cold-start behaviour observable.
"""

import json
import os

import pytest

from repro.exec import ResultStore
from repro.exec.store import INDEX_FORMAT
from repro.sim import MachineConfig

_DURATION = 1.0


@pytest.fixture()
def measurement(machine, small_kernel_factory):
    return machine.run(
        small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
    )


def _keys(prefix: str, count: int) -> list[str]:
    return [prefix + format(n, "030x") for n in range(count)]


def _populate(root, measurement, keys) -> ResultStore:
    store = ResultStore(root)
    store.put_many([(key, measurement) for key in keys])
    return store


class TestSidecarLifecycle:
    def test_append_writes_sidecar(self, tmp_path, measurement):
        store = _populate(tmp_path, measurement, _keys("ab", 3))
        sidecar = store.shard_dir / "ab.idx"
        assert sidecar.exists()
        assert store.index_appends == 1
        lines = sidecar.read_bytes().splitlines()
        assert json.loads(lines[0]) == {"format": INDEX_FORMAT}
        entries = [json.loads(line) for line in lines[1:-1]]
        assert [entry[0] for entry in entries] == _keys("ab", 3)
        commit = json.loads(lines[-1])
        shard = store.shard_dir / "ab.jsonl"
        assert commit["commit"] == [0, shard.stat().st_size]
        assert commit["mtime_ns"] == shard.stat().st_mtime_ns

    def test_cold_open_serves_from_sidecar(self, tmp_path, measurement):
        keys = _keys("ab", 4) + _keys("cd", 2)
        _populate(tmp_path, measurement, keys)
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(keys)
        assert len(warm) == len(keys)
        assert warm.get(keys[0]) == measurement
        stats = warm.snapshot_stats()["index"]
        assert stats["hits"] == 2
        assert stats["misses"] == 0
        assert stats["rebuilds"] == 0

    def test_successive_batches_extend_one_sidecar(
        self, tmp_path, measurement
    ):
        keys = _keys("ab", 4)
        store = _populate(tmp_path, measurement, keys[:2])
        store.put_many([(key, measurement) for key in keys[2:]])
        assert store.index_appends == 2
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(keys)
        assert warm.index_hits == 1 and warm.index_misses == 0

    def test_missing_sidecar_heals_on_read(self, tmp_path, measurement):
        _populate(tmp_path, measurement, _keys("ab", 3))
        sidecar = tmp_path / "shards" / "ab.idx"
        sidecar.unlink()
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(_keys("ab", 3))
        assert warm.index_misses == 1
        assert warm.index_rebuilds == 1
        assert sidecar.exists()
        third = ResultStore(tmp_path)
        assert len(third) == 3
        assert third.index_hits == 1

    def test_scrub_rewrites_sidecar(self, tmp_path, measurement, machine):
        keys = _keys("ab", 2)
        store = _populate(tmp_path, measurement, keys)
        store.put(keys[0], measurement)  # superseded duplicate
        report = store.scrub()
        assert report.ok
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(keys)
        assert warm.index_hits == 1 and warm.index_misses == 0
        assert warm.verify().ok

    def test_rebuild_index_command(self, tmp_path, measurement):
        keys = _keys("ab", 2) + _keys("cd", 1)
        _populate(tmp_path, measurement, keys)
        for sidecar in (tmp_path / "shards").glob("*.idx"):
            sidecar.unlink()
        store = ResultStore(tmp_path)
        assert store.rebuild_index() == 2
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(keys)
        assert warm.index_hits == 2 and warm.index_misses == 0


class TestSidecarDistrust:
    def test_partial_coverage_scans_tail_and_heals(
        self, tmp_path, measurement
    ):
        keys = _keys("ab", 2)
        _populate(tmp_path, measurement, keys[:1])
        sidecar = tmp_path / "shards" / "ab.idx"
        frozen = sidecar.read_bytes()
        later = _populate(tmp_path, measurement, keys[1:])
        assert later.get(keys[1]) == measurement
        # Regress the sidecar to its one-record snapshot: still a valid
        # committed prefix, just short of the shard's current size.
        sidecar.write_bytes(frozen)
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(keys)
        assert warm.get(keys[1]) == measurement
        assert warm.index_hits == 1  # the prefix was still useful...
        assert warm.index_rebuilds == 1  # ...and the heal re-snapshotted
        third = ResultStore(tmp_path)
        assert third.keys() == sorted(keys)
        assert third.index_hits == 1 and third.index_rebuilds == 0

    def test_torn_sidecar_tail_keeps_committed_prefix(
        self, tmp_path, measurement
    ):
        keys = _keys("ab", 2)
        store = _populate(tmp_path, measurement, keys[:1])
        committed = (tmp_path / "shards" / "ab.idx").read_bytes()
        store.put(keys[1], measurement)
        sidecar = tmp_path / "shards" / "ab.idx"
        torn = sidecar.read_bytes()[: len(committed) + 7]  # mid-entry crash
        sidecar.write_bytes(torn)
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(keys)
        assert warm.get(keys[1]) == measurement
        assert warm.index_hits == 1 and warm.index_rebuilds == 1

    def test_rewritten_shard_distrusts_stale_sidecar(
        self, tmp_path, measurement
    ):
        keys = _keys("ab", 2)
        _populate(tmp_path, measurement, keys)
        shard = tmp_path / "shards" / "ab.jsonl"
        # Out-of-band truncation to the first record: the sidecar's
        # commit now overruns the shard and must be thrown away whole.
        lines = shard.read_bytes().splitlines(keepends=True)
        shard.write_bytes(lines[0])
        warm = ResultStore(tmp_path)
        assert warm.keys() == [keys[0]]
        assert warm.get(keys[1]) is None
        assert warm.index_stale == 1 and warm.index_misses == 1

    def test_same_size_rewrite_distrusted_via_mtime(
        self, tmp_path, measurement
    ):
        keys = _keys("ab", 1)
        _populate(tmp_path, measurement, keys)
        shard = tmp_path / "shards" / "ab.jsonl"
        data = shard.read_bytes()
        shard.write_bytes(data)  # same bytes, new mtime
        os.utime(shard, ns=(0, shard.stat().st_mtime_ns + 1_000_000_000))
        warm = ResultStore(tmp_path)
        assert warm.keys() == keys  # scan fallback still serves
        assert warm.index_stale == 1

    def test_garbage_sidecar_falls_back_to_scan(self, tmp_path, measurement):
        keys = _keys("ab", 2)
        _populate(tmp_path, measurement, keys)
        (tmp_path / "shards" / "ab.idx").write_bytes(b"not an index\n")
        warm = ResultStore(tmp_path)
        assert warm.keys() == sorted(keys)
        assert warm.get(keys[0]) == measurement
        assert warm.index_stale == 1 and warm.index_misses == 1
        assert warm.index_rebuilds == 1

    def test_sidecar_never_overrides_read_verification(
        self, tmp_path, measurement
    ):
        # Even a trusted sidecar only accelerates the seek: a record
        # tampered in place is still caught by the checksum on get().
        keys = _keys("ab", 1)
        _populate(tmp_path, measurement, keys)
        shard = tmp_path / "shards" / "ab.jsonl"
        data = shard.read_bytes()
        mtime = shard.stat().st_mtime_ns
        shard.write_bytes(data.replace(b'"mean_power": ', b'"mean_powex": '))
        os.utime(shard, ns=(mtime, mtime))  # hide the rewrite entirely
        warm = ResultStore(tmp_path)
        assert warm.get(keys[0]) is None  # the serve refused the record
        assert warm.index_hits == 1  # even though the sidecar was trusted
        assert warm.checksum_failures + warm.corrupt_records >= 1


class TestVerifyReportsIndex:
    def test_clean_store_counts_sidecars(self, tmp_path, measurement):
        _populate(tmp_path, measurement, _keys("ab", 2) + _keys("cd", 1))
        report = ResultStore(tmp_path).verify()
        assert report.ok
        assert report.index_sidecars == 2
        assert report.index_stale == 0
        assert "index: 2 sidecar(s)" in report.describe()

    def test_stale_sidecar_reported_not_fatal(self, tmp_path, measurement):
        keys = _keys("ab", 2)
        _populate(tmp_path, measurement, keys[:1])
        frozen = (tmp_path / "shards" / "ab.idx").read_bytes()
        _populate(tmp_path, measurement, keys[1:])
        (tmp_path / "shards" / "ab.idx").write_bytes(frozen)
        report = ResultStore(tmp_path).verify()
        assert report.ok  # staleness heals on read; data is intact
        assert report.index_stale == 1
        assert any(
            "will rebuild on next read" in problem
            for problem in report.problems
        )
