"""Experiment-plan semantics: fingerprints, deduplication, cell keys."""

import pytest

from repro.exec.plan import ExperimentPlan, PlanCell, workload_fingerprint
from repro.sim import MachineConfig, Placement, get_pstate
from repro.sim.config import standard_configurations
from repro.workloads import spec_cpu2006


class TestFingerprints:
    def test_kernel_identity_is_name_plus_digest(self, small_kernel_factory):
        kernel = small_kernel_factory("add", count=32)
        same_content = small_kernel_factory("add", count=32)
        assert workload_fingerprint(kernel) == workload_fingerprint(same_content)

    def test_same_name_different_content_distinct(self, small_kernel_factory):
        a = small_kernel_factory("add", count=32)
        b = small_kernel_factory("mulld", count=32)
        object.__setattr__(b, "name", a.name)
        assert workload_fingerprint(a) != workload_fingerprint(b)

    def test_profiled_workloads_fingerprint_by_content(self):
        suite = spec_cpu2006()
        prints = {workload_fingerprint(w) for w in suite}
        assert len(prints) == len(suite)
        # A fresh adapter around the same profile is the same cell.
        assert workload_fingerprint(spec_cpu2006()[0]) == workload_fingerprint(
            suite[0]
        )

    def test_placed_profiles_fingerprint_by_content(self):
        import dataclasses

        from repro.workloads import ProfiledWorkload
        from repro.workloads.spec import spec_profile

        profile = spec_profile("mcf")
        faster = dataclasses.replace(profile, ipc=2.5)
        original = Placement("mix", ((ProfiledWorkload(profile),) * 2,))
        modified = Placement("mix", ((ProfiledWorkload(faster),) * 2,))
        # Same placement name, same workload name ('mcf'), different
        # physics: the cells must never alias.
        assert workload_fingerprint(original) != workload_fingerprint(modified)

    def test_fingerprint_override_hook(self):
        class Custom:
            name = "custom"

            def fingerprint(self):
                return ("custom", 42)

        assert workload_fingerprint(Custom()) == ("custom", 42)

    def test_placement_declaration_order_matters(self, small_kernel_factory):
        compute = small_kernel_factory("addic", count=32)
        stalled = small_kernel_factory("ld", count=32, level="MEM")
        forward = Placement("mix", ((compute, stalled),))
        reverse = Placement("mix", ((stalled, compute),))
        # Same physics (canonical salt), but per-thread counters keep
        # declaration order, so the cells must stay distinct.
        assert forward.canonical_salt() == reverse.canonical_salt()
        assert workload_fingerprint(forward) != workload_fingerprint(reverse)


class TestPlan:
    def test_cross_shape_and_order(self, small_kernel_factory):
        kernels = [
            small_kernel_factory("add", count=16),
            small_kernel_factory("mulld", count=16),
        ]
        configs = [MachineConfig(1, 1), MachineConfig(2, 2)]
        plan = ExperimentPlan.cross(kernels, configs, duration=1.0)
        assert plan.size == plan.requested == 4
        # Configuration-major, workloads innermost.
        assert [cell.config for cell in plan.cells] == [
            configs[0], configs[0], configs[1], configs[1],
        ]

    def test_cross_p_state_major(self, small_kernel_factory):
        kernel = small_kernel_factory("add", count=16)
        plan = ExperimentPlan.cross(
            [kernel],
            [MachineConfig(1, 1), MachineConfig(2, 1)],
            p_states=(get_pstate("nominal"), get_pstate("p2")),
        )
        labels = [cell.config.label for cell in plan.cells]
        assert labels == ["1-1", "2-1", "1-1@p2", "2-1@p2"]

    def test_same_scale_p_states_stay_distinct(
        self, machine, small_kernel_factory
    ):
        """PState equality ignores the name, but the name seeds sensor
        noise through the label -- same-scale, differently-named points
        are distinct physical measurements and must not dedup."""
        from repro.exec import SerialExecutor
        from repro.sim import PState

        kernel = small_kernel_factory("add", count=24)
        eco = MachineConfig(1, 1).with_p_state(PState("eco", 0.8, 0.9))
        slow = MachineConfig(1, 1).with_p_state(PState("slow", 0.8, 0.9))
        assert eco == slow  # scales compare equal by design...
        plan = ExperimentPlan.cross([kernel], [eco, slow], duration=1.0)
        assert plan.size == 2  # ...but the cells never alias
        measured = SerialExecutor(machine).run(plan)
        assert measured[0] == machine.run(kernel, eco, 1.0)
        assert measured[1] == machine.run(kernel, slow, 1.0)
        assert measured[0].mean_power != measured[1].mean_power

    def test_duplicates_collapse_and_expand(self, small_kernel_factory):
        kernel = small_kernel_factory("add", count=16)
        copy = small_kernel_factory("add", count=16)
        config = MachineConfig(1, 1)
        plan = ExperimentPlan(
            [
                PlanCell(kernel, config, 1.0),
                PlanCell(copy, config, 1.0),
                PlanCell(kernel, config, 2.0),
            ]
        )
        assert plan.size == 2 and plan.requested == 3
        expanded = plan.expand(["first", "second"])
        assert expanded == ["first", "first", "second"]

    def test_empty_plan_executes_to_empty(self, machine):
        from repro.exec import SerialExecutor

        plan = ExperimentPlan([])
        assert plan.size == plan.requested == 0
        assert SerialExecutor(machine).run(plan) == []

    def test_expand_length_checked(self, small_kernel_factory):
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=16), MachineConfig(1, 1)
        )
        with pytest.raises(ValueError, match="unique results"):
            plan.expand([])


class TestCellKeys:
    def test_key_is_deterministic_and_content_addressed(
        self, small_kernel_factory
    ):
        kernel = small_kernel_factory("add", count=16)
        cell = PlanCell(kernel, MachineConfig(2, 2), 1.0)
        assert cell.key("POWER7", 0) == cell.key("POWER7", 0)
        rebuilt = PlanCell(
            small_kernel_factory("add", count=16), MachineConfig(2, 2), 1.0
        )
        assert rebuilt.key("POWER7", 0) == cell.key("POWER7", 0)

    def test_key_separates_every_axis(self, small_kernel_factory):
        kernel = small_kernel_factory("add", count=16)
        base = PlanCell(kernel, MachineConfig(2, 2), 1.0)
        variants = [
            PlanCell(kernel, MachineConfig(2, 4), 1.0),
            PlanCell(kernel, MachineConfig(2, 2), 2.0),
            PlanCell(
                kernel,
                MachineConfig(2, 2).with_p_state(get_pstate("p2")),
                1.0,
            ),
            PlanCell(small_kernel_factory("mulld", count=16), MachineConfig(2, 2), 1.0),
        ]
        keys = {base.key("POWER7", 0)}
        keys.update(cell.key("POWER7", 0) for cell in variants)
        assert len(keys) == len(variants) + 1
        # Machine identity separates too.
        assert base.key("POWER7", 1) != base.key("POWER7", 0)
        assert base.key("OTHER", 0) != base.key("POWER7", 0)

    def test_full_sweep_keys_unique(self, small_kernel_factory):
        kernels = [
            small_kernel_factory(mnemonic, count=16)
            for mnemonic in ("add", "mulld", "ld")
        ]
        plan = ExperimentPlan.cross(
            kernels, standard_configurations(), duration=1.0
        )
        keys = {cell.key("POWER7", 0) for cell in plan.cells}
        assert len(keys) == plan.size == 72
