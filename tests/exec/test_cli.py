"""``python -m repro`` CLI: argument plumbing and engine integration."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_engine_options_shared(self):
        for command in ("sweep", "campaign", "stressmark"):
            args = build_parser().parse_args(
                [command, "--parallel", "2", "--store", "x", "--duration", "1"]
            )
            assert args.parallel == 2
            assert args.store == "x"
            assert args.duration == 1.0


class TestSweepCommand:
    def test_sweep_runs_and_reports(self, capsys, tmp_path):
        code = main(
            [
                "sweep",
                "--workloads",
                "daxpy",
                "--configs",
                "1-1,2-2@p2",
                "--loop-size",
                "96",
                "--duration",
                "1",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1-1" in out and "2-2@p2" in out
        assert "daxpy" in out
        assert "0 cells warm" in out

    def test_sweep_warm_rerun_serves_from_store(self, capsys, tmp_path):
        argv = [
            "sweep",
            "--workloads",
            "daxpy",
            "--configs",
            "1-1",
            "--loop-size",
            "96",
            "--duration",
            "1",
            "--store",
            str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # Same numbers, zero fresh measurements.
        assert cold.splitlines()[1] == warm.splitlines()[1]
        assert "0 measured this run" in warm

    def test_sweep_parallel_matches_serial(self, capsys, tmp_path):
        base = [
            "sweep",
            "--workloads",
            "daxpy",
            "--configs",
            "2-1,2-2,2-4",
            "--loop-size",
            "96",
            "--duration",
            "1",
        ]
        assert main(base) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--parallel", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestHeterogeneousSweepCommand:
    def test_topology_sweep_runs_and_reports(self, capsys):
        code = main(
            [
                "sweep",
                "--workloads",
                "daxpy",
                "--topology",
                "2big,1big+1little,2little",
                "--loop-size",
                "96",
                "--duration",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2big" in out and "1big+1little" in out and "2little" in out

    def test_no_vector_matches_vector(self, capsys):
        base = [
            "sweep",
            "--workloads",
            "daxpy",
            "--topology",
            "2big+2little,4little",
            "--loop-size",
            "96",
            "--duration",
            "1",
        ]
        assert main(base) == 0
        fast = capsys.readouterr().out
        assert main(base + ["--no-vector"]) == 0
        scalar = capsys.readouterr().out
        # --no-vector pins the scalar reference path; results must be
        # bit-identical, so the report reads the same.
        assert fast == scalar

    def test_cache_stats_reported(self, capsys):
        code = main(
            [
                "sweep",
                "--workloads",
                "daxpy",
                "--topology",
                "1big+1little",
                "--loop-size",
                "96",
                "--duration",
                "1",
                "--cache-stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "=== cache stats ===" in out
        assert "summaries" in out

    def test_bad_topology_spec_errors_clearly(self, capsys):
        with pytest.raises(ValueError) as excinfo:
            main(
                [
                    "sweep",
                    "--workloads",
                    "daxpy",
                    "--topology",
                    "2mega",
                    "--duration",
                    "1",
                ]
            )
        assert "unknown cluster name" in str(excinfo.value)

    def test_new_flags_available_on_every_subcommand(self):
        for command in ("sweep", "campaign", "stressmark"):
            args = build_parser().parse_args(
                [command, "--no-vector", "--cache-stats"]
            )
            assert args.no_vector and args.cache_stats


class TestStoreCommand:
    def _populate(self, tmp_path):
        argv = [
            "sweep",
            "--workloads",
            "daxpy",
            "--configs",
            "1-1",
            "--loop-size",
            "96",
            "--duration",
            "1",
            "--store",
            str(tmp_path / "store"),
        ]
        assert main(argv) == 0

    def test_verify_clean_store(self, capsys, tmp_path):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "verify", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "checksummed" in out
        assert "journals: 1 run(s), 1 complete, 0 interrupted" in out

    def test_verify_flags_damage_then_scrub_repairs(self, capsys, tmp_path):
        self._populate(tmp_path)
        store_dir = tmp_path / "store"
        shard = next((store_dir / "shards").glob("??.jsonl"))
        with shard.open("ab") as handle:
            handle.write(b"{garbage\n")
        capsys.readouterr()
        assert main(["store", "verify", "--store", str(store_dir)]) == 1
        captured = capsys.readouterr()
        assert "CORRUPTION" in captured.out
        assert "scrub" in captured.err
        assert main(["store", "scrub", "--store", str(store_dir)]) == 0
        assert "dropped" in capsys.readouterr().out
        assert main(["store", "verify", "--store", str(store_dir)]) == 0

    def test_store_dir_from_environment(self, capsys, tmp_path, monkeypatch):
        self._populate(tmp_path)
        capsys.readouterr()
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        assert main(["store", "verify"]) == 0

    def test_missing_store_dir_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "verify"]) == 2
        assert "no store directory" in capsys.readouterr().err
