"""Fault-injection harness unit contracts.

The harness only earns its keep if its decisions are *deterministic*:
the same seed must fire the same faults at the same sites in every
process of every run, or a failing chaos test cannot be reproduced.
"""

import os

import pytest

from repro.errors import FaultInjectedError, MeasurementError
from repro.exec import faults
from repro.exec.faults import FaultPlan, parse_faults
from repro.exec.plan import ExperimentPlan
from repro.sim import MachineConfig

_DURATION = 1.0


class TestParsing:
    def test_site_tokens(self):
        plan = parse_faults("crash:0.25,io:1,hang:0.5:3")
        assert plan.specs["crash"].probability == 0.25
        assert plan.specs["crash"].times == 1  # transient default
        assert plan.specs["io"].probability == 1.0
        assert plan.specs["hang"].times == 3
        assert not plan.wants("slow")

    def test_transient_vs_unbounded_defaults(self):
        plan = parse_faults("torn:1,poison:1,slow:1")
        assert plan.specs["torn"].times == 1
        assert plan.specs["poison"].times > 1_000_000
        assert plan.specs["slow"].times > 1_000_000

    def test_scalar_tokens(self):
        plan = parse_faults("seed:42,hang_s:0.25,slow_s:0.01,crash:1")
        assert plan.seed == 42
        assert plan.hang_s == 0.25
        assert plan.slow_s == 0.01

    def test_bare_site_defaults_to_certainty(self):
        assert parse_faults("crash").specs["crash"].probability == 1.0

    def test_empty_tokens_ignored(self):
        plan = parse_faults(" crash:1 , ,io:0.5, ")
        assert set(plan.specs) == {"crash", "io"}

    @pytest.mark.parametrize(
        "spec",
        [
            "segfault:1",          # unknown site
            "crash:nope",          # non-numeric probability
            "crash:2.0",           # probability out of range
            "crash:1:0",           # times cap below 1
            "seed:xyz",            # non-integer seed
            "hang_s",              # missing value
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(MeasurementError):
            parse_faults(spec)


class TestDeterminism:
    def test_decisions_are_pure_in_seed_site_key(self):
        first = FaultPlan(seed=7).arm("crash", probability=0.5, times=99)
        second = FaultPlan(seed=7).arm("crash", probability=0.5, times=99)
        keys = [f"chunk:{n}" for n in range(64)]
        decisions = [first.fire("crash", key, attempt=0) for key in keys]
        assert decisions == [
            second.fire("crash", key, attempt=0) for key in keys
        ]
        # A fair-ish split: the draw really varies with the key.
        assert 8 < sum(decisions) < 56

    def test_seed_changes_decisions(self):
        keys = [f"chunk:{n}" for n in range(64)]

        def pattern(seed):
            plan = FaultPlan(seed=seed).arm("io", probability=0.5, times=99)
            return [plan.fire("io", key, attempt=0) for key in keys]

        assert pattern(1) != pattern(2)

    def test_times_cap_with_explicit_attempts(self):
        plan = FaultPlan().arm("crash", times=2)
        assert plan.fire("crash", "k", attempt=0)
        assert plan.fire("crash", "k", attempt=1)
        assert not plan.fire("crash", "k", attempt=2)  # transient: recovers

    def test_times_cap_with_internal_counter(self):
        plan = FaultPlan().arm("io")  # transient, times=1
        assert plan.fire("io", "get:a")
        assert not plan.fire("io", "get:a")  # second attempt succeeds
        assert plan.fire("io", "get:b")  # independent key, own counter

    def test_render_round_trips(self):
        plan = (
            FaultPlan(seed=9, hang_s=0.5, slow_s=0.01)
            .arm("crash", probability=0.25)
            .arm("hang", probability=1.0, times=2)
            .arm("slow")
        )
        rebuilt = parse_faults(plan.render())
        assert rebuilt.seed == plan.seed
        assert rebuilt.specs == plan.specs
        assert rebuilt.hang_s == plan.hang_s
        assert rebuilt.slow_s == plan.slow_s


class TestActions:
    def test_io_error_raises_oserror(self):
        plan = FaultPlan().arm("io")
        with pytest.raises(OSError, match="injected"):
            plan.maybe_io_error("put:0")

    def test_poison_raises_fault_injected_error(self):
        plan = FaultPlan().arm("poison")
        with pytest.raises(FaultInjectedError):
            plan.maybe_poison("cell:xyz")

    def test_unarmed_sites_are_inert(self):
        plan = FaultPlan().arm("crash")
        plan.maybe_io_error("put:0")
        plan.maybe_poison("cell:xyz")
        plan.maybe_slow("batch:1-1")


class TestActivation:
    def test_no_plan_no_env_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.install(None)
        assert faults.active() is None

    def test_injected_installs_and_sets_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        plan = FaultPlan(seed=3).arm("io")
        with faults.injected(plan):
            assert faults.active() is plan
            inherited = parse_faults(os.environ["REPRO_FAULTS"])
            assert inherited.seed == 3 and inherited.wants("io")
        assert faults.active() is None
        assert "REPRO_FAULTS" not in os.environ

    def test_env_spec_parsed_and_memoized(self, monkeypatch):
        faults.install(None)
        monkeypatch.setenv("REPRO_FAULTS", "seed:5,crash:0.5")
        first = faults.active()
        assert first.seed == 5 and first.wants("crash")
        assert faults.active() is first  # memoized per spec string
        monkeypatch.setenv("REPRO_FAULTS", "seed:6,crash:0.5")
        assert faults.active().seed == 6


class TestSiteKeys:
    def test_cell_and_chunk_keys_track_content(self, small_kernel_factory):
        kernel = small_kernel_factory("add", count=24)
        other = small_kernel_factory("mulld", count=24)
        plan = ExperimentPlan.cross(
            [kernel, other], [MachineConfig(1, 1)], duration=_DURATION
        )
        cells = plan.cells
        assert faults.cell_key(cells[0]) != faults.cell_key(cells[1])
        # Stable across plan objects carrying the same content.
        again = ExperimentPlan.cross(
            [kernel, other], [MachineConfig(1, 1)], duration=_DURATION
        )
        assert faults.cell_key(cells[0]) == faults.cell_key(again.cells[0])
        assert faults.chunk_key(cells) == faults.chunk_key(again.cells)
        assert faults.chunk_key(cells[:1]) != faults.chunk_key(cells)
