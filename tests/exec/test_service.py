"""Campaign service: equivalence, single-flight dedup, warm serving, chaos.

The acceptance properties of ``python -m repro serve``:

* **equivalence** -- a plan submitted over HTTP streams back
  bit-identical measurements (same bytes, same noise draws, same store
  keys) to a one-shot in-process ``SerialExecutor.run``, on both the
  vectorized and the scalar measurement plane, across randomized
  topology/placement/p-state plans;
* **at-most-once** -- concurrent clients submitting overlapping plans
  trigger each distinct cell's measurement exactly once (single-flight
  dedup), every client still receives complete results;
* **warm serving** -- a re-submitted plan is answered entirely from
  the result store with *zero* ``Machine`` measurement calls;
* **chaos** -- a faulted campaign through the server completes with
  zero quarantined cells and byte-identical results.
"""

import random
import threading

import pytest

from repro.errors import ServiceError
from repro.exec import (
    ExperimentPlan,
    MeasurementService,
    PlanCell,
    RemoteExecutor,
    SerialExecutor,
    ServiceClient,
    build_server,
)
from repro.exec import faults
from repro.exec.faults import FaultPlan
from repro.exec.plan import workload_fingerprint
from repro.exec.serialize import plan_to_dict
from repro.sim import Machine, MachineConfig, Placement, get_pstate
from repro.sim.topology import parse_topology
from repro.workloads import spec_cpu2006

_DURATION = 1.0


# -- plumbing ------------------------------------------------------------------


def _start(service):
    """Serve ``service`` on an ephemeral port; return (server, url)."""
    server = build_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_port}"


@pytest.fixture()
def served(tmp_path):
    """A store-backed serial service listening on localhost."""
    service = MeasurementService(store=tmp_path / "store", flight_timeout=60.0)
    server, url = _start(service)
    yield service, url
    server.shutdown()
    server.server_close()
    service.close()


def _instrument(machine):
    """Count every measurement entering ``machine``, by cell identity.

    ``run_many`` and ``run_cells`` are the only executor entry points
    and are independent (neither calls the other), so wrapping both
    observes every physical measurement the service performs.
    """
    measured: list[tuple] = []
    lock = threading.Lock()
    original_many, original_cells = machine.run_many, machine.run_cells

    def counting_many(workloads, config, duration=10.0):
        workloads = list(workloads)
        with lock:
            measured.extend(
                (workload_fingerprint(w), config.label, duration)
                for w in workloads
            )
        return original_many(workloads, config, duration)

    def counting_cells(cells):
        cells = list(cells)
        with lock:
            measured.extend(
                (workload_fingerprint(w), config.label, duration)
                for w, config, duration in cells
            )
        return original_cells(cells)

    machine.run_many = counting_many
    machine.run_cells = counting_cells
    return measured


def _random_plan(rng, make_kernel) -> ExperimentPlan:
    """One randomized plan: workload kinds x configs/topologies x DVFS."""
    kernels = [
        make_kernel("add", count=24),
        make_kernel("mulld", count=24, dep=4),
        make_kernel("lxvw4x", count=24, level="L1"),
        make_kernel("ld", count=24, level="MEM"),
    ]
    workloads = rng.sample(kernels, rng.randint(1, 3))
    if rng.random() < 0.5:
        workloads.append(spec_cpu2006()[rng.randrange(6)])
    configs = rng.sample(
        [
            MachineConfig(1, 1),
            MachineConfig(2, 2),
            MachineConfig(4, 1),
            parse_topology("2big+2little"),
            parse_topology("2big-2@p2+2little"),
        ],
        rng.randint(1, 2),
    )
    p_states = (
        [get_pstate(name) for name in rng.sample(["turbo", "nominal", "p3"], 2)]
        if rng.random() < 0.5
        else None
    )
    plan = ExperimentPlan.cross(
        workloads, configs, p_states=p_states, duration=_DURATION
    )
    if rng.random() < 0.5:
        # A placement cell must match its configuration's geometry
        # exactly, so it rides along on its own 2x1 scenario.
        mix = Placement("mix", ((kernels[0],), (kernels[3],)))
        extra = PlanCell(mix, MachineConfig(2, 1), _DURATION)
        plan = ExperimentPlan(list(plan.cells) + [extra])
    return plan


# -- equivalence ---------------------------------------------------------------


class TestServedEquivalence:
    def test_randomized_plans_bit_identical_both_planes(
        self, served, power7_arch, small_kernel_factory
    ):
        """Property: for random plans, server responses equal one-shot
        serial execution exactly, with the vector plane on and off."""
        service, url = served
        rng = random.Random(20120212)
        for round_number in range(4):
            plan = _random_plan(rng, small_kernel_factory)
            vector = round_number % 2 == 0
            local = SerialExecutor(
                Machine(power7_arch, vector=vector)
            ).run(plan)
            remote = RemoteExecutor(url, vector=vector).run(plan)
            assert remote == local, f"round {round_number} diverged"

    def test_streamed_lines_carry_store_keys(
        self, served, machine, small_kernel_factory
    ):
        """Response lines carry the same content-addressed keys the
        local engine computes, in a complete header/cells/trailer
        stream."""
        service, url = served
        plan = ExperimentPlan.cross(
            [small_kernel_factory("add", count=24)],
            [MachineConfig(1, 1), MachineConfig(2, 2)],
            duration=_DURATION,
        )
        local = SerialExecutor(machine)
        expected = {local.key_of(cell) for cell in plan.cells}
        lines = list(ServiceClient(url).submit(plan))
        header, cells, trailer = lines[0], lines[1:-1], lines[-1]
        assert header["cells"] == plan.size
        assert {line["key"] for line in cells} == expected
        assert trailer["complete"] and trailer["measured"] == plan.size

    def test_seeded_machines_are_distinct_tenants(
        self, served, power7_arch, small_kernel_factory
    ):
        service, url = served
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24),
            MachineConfig(2, 2),
            _DURATION,
        )
        seed0 = RemoteExecutor(url, seed=0).run(plan)[0]
        seed7 = RemoteExecutor(url, seed=7).run(plan)[0]
        assert seed0 == SerialExecutor(Machine(power7_arch, seed=0)).run(plan)[0]
        assert seed7 == SerialExecutor(Machine(power7_arch, seed=7)).run(plan)[0]
        assert seed0 != seed7


# -- warm serving and dedup ----------------------------------------------------


class TestWarmAndSingleFlight:
    def test_warm_requery_performs_zero_measurements(
        self, served, small_kernel_factory
    ):
        service, url = served
        plan = ExperimentPlan.cross(
            [
                small_kernel_factory("add", count=24),
                small_kernel_factory("mulld", count=24),
            ],
            [MachineConfig(1, 1), MachineConfig(2, 2)],
            duration=_DURATION,
        )
        remote = RemoteExecutor(url)
        cold = remote.run(plan)
        engine = next(iter(service._engines.values()))
        measured = _instrument(engine.machine)
        warm = remote.run(plan)
        assert warm == cold
        assert measured == []  # served entirely from the store
        counters = ServiceClient(url).stats()["service"]
        assert counters["measured_cells"] == plan.size
        assert counters["warm_cells"] == plan.size

    def test_concurrent_overlapping_clients_measure_each_cell_once(
        self, served, power7_arch, small_kernel_factory
    ):
        """N clients, overlapping plans: every client gets complete,
        bit-identical results; each distinct cell is measured at most
        once across the whole service."""
        service, url = served
        kernels = [
            small_kernel_factory(mnemonic, count=24)
            for mnemonic in ("add", "mulld", "addic", "ld")
        ]
        shared = [MachineConfig(1, 1), MachineConfig(2, 2)]
        plans = [
            ExperimentPlan.cross(
                [kernels[number], kernels[(number + 1) % 4]],
                shared,
                duration=_DURATION,
            )
            for number in range(4)
        ]
        # Pre-create the engine so the measurement instrumentation is
        # in place before any client arrives.
        engine = service._engine("POWER7", 0, None)
        measured = _instrument(engine.machine)

        results: dict[int, list] = {}
        errors: list[Exception] = []
        barrier = threading.Barrier(len(plans))

        def client(number: int) -> None:
            try:
                barrier.wait()
                results[number] = RemoteExecutor(url).run(plans[number])
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(number,))
            for number in range(len(plans))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        # Complete, bit-identical results for every client.
        reference = SerialExecutor(Machine(power7_arch))
        for number, plan in enumerate(plans):
            assert results[number] == reference.run(plan)
        # Each distinct cell measured exactly once service-wide.
        distinct = {
            cell.identity() for plan in plans for cell in plan.cells
        }
        assert len(measured) == len(set(measured)) == len(distinct)
        counters = ServiceClient(url).stats()["service"]
        assert counters["measured_cells"] == len(distinct)
        assert (
            counters["warm_cells"]
            + counters["measured_cells"]
            + counters["dedup_waits"]
            >= sum(plan.size for plan in plans)
        )

    def test_single_flight_followers_reuse_the_leaders_bytes(
        self, tmp_path, small_kernel_factory
    ):
        """Deterministic dedup: while a leader measures, a second
        identical submission classifies every cell as in-flight and
        receives the leader's measurements without measuring."""
        service = MeasurementService(
            store=tmp_path / "store", flight_timeout=60.0
        )
        try:
            plan = ExperimentPlan.cross(
                [small_kernel_factory("add", count=24)],
                [MachineConfig(1, 1), MachineConfig(2, 2)],
                duration=_DURATION,
            )
            engine = service._engine("POWER7", 0, None)
            entered, release = threading.Event(), threading.Event()
            original = engine.machine.run_many

            def gated(workloads, config, duration=10.0):
                entered.set()
                assert release.wait(30)
                return original(workloads, config, duration)

            engine.machine.run_many = gated
            outputs: dict[str, list] = {"leader": [], "follower": []}

            def submit(label: str) -> None:
                service.submit(plan_to_dict(plan), lambda: outputs[label].append)

            leader = threading.Thread(target=submit, args=("leader",))
            leader.start()
            assert entered.wait(30)  # leader is inside the measurement
            follower = threading.Thread(target=submit, args=("follower",))
            follower.start()
            # Give the follower time to classify against the in-flight
            # cells, then let the leader's measurement finish.
            deadline = threading.Event()
            deadline.wait(0.3)
            release.set()
            leader.join(timeout=60)
            follower.join(timeout=60)
            counters = service.stats()["service"]
            assert counters["measured_cells"] == plan.size
            assert counters["dedup_waits"] >= 1
            leader_cells = {
                line["key"]: line["measurement"]
                for line in outputs["leader"]
                if "measurement" in line
            }
            follower_cells = {
                line["key"]: line["measurement"]
                for line in outputs["follower"]
                if "measurement" in line
            }
            assert follower_cells == leader_cells
        finally:
            service.close()


# -- chaos ---------------------------------------------------------------------


class TestServedChaos:
    def test_faulted_campaign_completes_bit_identical(
        self, tmp_path, power7_arch, small_kernel_factory
    ):
        """Worker crashes under the server: the run completes with
        zero quarantines and byte-identical measurements."""
        plan = ExperimentPlan.cross(
            [
                small_kernel_factory("add", count=24),
                small_kernel_factory("mulld", count=24),
                small_kernel_factory("lxvw4x", count=24, level="L1"),
            ],
            [MachineConfig(1, 1), MachineConfig(2, 2), MachineConfig(4, 2)],
            duration=_DURATION,
        )
        baseline = SerialExecutor(Machine(power7_arch)).run(plan)
        with faults.injected(FaultPlan(seed=7).arm("crash")):
            service = MeasurementService(
                store=tmp_path / "store", parallel=2, flight_timeout=60.0
            )
            server, url = _start(service)
            try:
                report = RemoteExecutor(url).execute(plan)
            finally:
                server.shutdown()
                server.server_close()
                service.close()
        assert report.ok  # zero quarantined cells
        assert list(report.measurements) == baseline

    def test_transient_store_io_is_survived(
        self, tmp_path, power7_arch, small_kernel_factory
    ):
        plan = ExperimentPlan.cross(
            [small_kernel_factory("add", count=24)],
            [MachineConfig(1, 1), MachineConfig(2, 2)],
            duration=_DURATION,
        )
        baseline = SerialExecutor(Machine(power7_arch)).run(plan)
        with faults.injected(FaultPlan(seed=5).arm("io")):
            service = MeasurementService(store=tmp_path / "store")
            server, url = _start(service)
            try:
                report = RemoteExecutor(url).execute(plan)
            finally:
                server.shutdown()
                server.server_close()
                service.close()
        assert report.ok
        assert list(report.measurements) == baseline


# -- endpoints and error paths -------------------------------------------------


class TestEndpoints:
    def test_health_stats_and_runs(self, served, small_kernel_factory):
        service, url = served
        client = ServiceClient(url)
        assert client.health()["ok"] is True
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24),
            MachineConfig(1, 1),
            _DURATION,
        )
        lines = list(client.submit(plan))
        run = lines[0]["run"]
        stats = client.stats()
        assert stats["service"]["requests"] == 1
        assert stats["store"]["cells"] == 1
        # The run completed with its cells durable, so its journal was
        # garbage-collected -- but the run registry still remembers it,
        # and the resume endpoint serves the durable record.
        status = next(iter(client.run_status(run)))
        assert status["found"] is True
        assert status["state"] == "complete"
        assert status["registry"]["measured"] == 1
        assert stats["service"]["journals_gcd"] == 1
        assert stats["registry"]["complete"] == 1
        listing = client.runs()
        assert [record["run"] for record in listing["runs"]] == [run]
        assert listing["registry"]["runs"] == 1
        # A run id never seen by this store is a clean not-found.
        missing = next(iter(client.run_status("0" * 24)))
        assert missing["found"] is False

    def test_interrupted_run_is_resumable(self, served, small_kernel_factory):
        """A journal without a completion trailer survives GC and
        serves its done cells through ``GET /runs/<id>``."""
        service, url = served
        client = ServiceClient(url)
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24),
            MachineConfig(1, 1),
            _DURATION,
        )
        lines = list(client.submit(plan))
        run, key = lines[0]["run"], lines[1]["key"]
        # Reconstruct an interrupted attempt: header + done, no trailer.
        from repro.exec.journal import RunJournal

        journal = RunJournal(service.store.root, run)
        journal.start(1, plan.describe())
        journal.mark_done([key])
        status, *cells = list(client.run_status(run))
        assert status["found"] is True and status["completed"] is False
        assert cells[0]["key"] == key
        assert cells[0]["measurement"] is not None

    def test_malformed_and_unknown_requests_are_clean_errors(self, served):
        service, url = served
        client = ServiceClient(url)
        with pytest.raises(ServiceError):
            list(client._stream("POST", "/plans", {"cells": None}))
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/nowhere")
        assert excinfo.value.status == 404

    def test_unknown_architecture_is_404(self, served, small_kernel_factory):
        service, url = served
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24),
            MachineConfig(1, 1),
            _DURATION,
        )
        with pytest.raises(ServiceError) as excinfo:
            RemoteExecutor(url, arch="VAX").run(plan)
        assert excinfo.value.status == 404

    def test_unreachable_service_is_a_clean_error(self, small_kernel_factory):
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24),
            MachineConfig(1, 1),
            _DURATION,
        )
        with pytest.raises(ServiceError) as excinfo:
            RemoteExecutor(ServiceClient("http://127.0.0.1:9", timeout=2)).run(plan)
        assert excinfo.value.status == 503
