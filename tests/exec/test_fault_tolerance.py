"""Fault tolerance: recovery is invisible in the measurement bytes.

The acceptance property of the hardened engine: under injected worker
crashes, hangs, slow batches and transient store I/O errors, a full
sweep completes *bit-identical* to the fault-free run -- on both the
vectorized and the scalar measurement plane -- and only a cell that
keeps failing everywhere (the ``poison`` site) is quarantined into a
structured :class:`CellFailure` instead of aborting the campaign.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.errors import ExecutionError
from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
)
from repro.exec import faults
from repro.exec.faults import FaultPlan
from repro.exec.report import CellFailure, ExecutionReport
from repro.sim import Machine, MachineConfig

_DURATION = 1.0


@pytest.fixture()
def small_plan(small_kernel_factory):
    kernels = [
        small_kernel_factory("add", count=24),
        small_kernel_factory("mulld", count=24),
        small_kernel_factory("lxvw4x", count=24, level="L1"),
    ]
    return ExperimentPlan.cross(
        kernels,
        [MachineConfig(1, 1), MachineConfig(2, 2), MachineConfig(4, 2)],
        duration=_DURATION,
    )


@pytest.fixture()
def baseline(power7_arch, small_plan):
    """The fault-free serial reference measurements."""
    return SerialExecutor(Machine(power7_arch)).run(small_plan)


def _faulted_parallel_run(power7_arch, plan, fault_plan, **kwargs):
    """Run ``plan`` on a fresh 2-worker executor under ``fault_plan``."""
    with faults.injected(fault_plan):
        with ParallelExecutor(
            Machine(power7_arch), workers=2, chunk_size=2, **kwargs
        ) as executor:
            report = executor.execute(plan)
    return report


class TestBitIdentityUnderFaults:
    def test_worker_crashes_are_invisible(
        self, power7_arch, small_plan, baseline
    ):
        report = _faulted_parallel_run(
            power7_arch, small_plan, FaultPlan(seed=7).arm("crash")
        )
        assert report.ok
        assert list(report) == baseline
        assert report.fault_counters["worker_deaths"] >= 1
        assert report.fault_counters["worker_respawns"] >= 1

    def test_hung_workers_are_reaped_by_the_watchdog(
        self, power7_arch, small_plan, baseline
    ):
        fault_plan = FaultPlan(seed=3, hang_s=10.0).arm("hang")
        report = _faulted_parallel_run(
            power7_arch, small_plan, fault_plan, timeout=0.5
        )
        assert report.ok
        assert list(report) == baseline
        assert report.fault_counters["chunk_timeouts"] >= 1
        assert report.fault_counters["worker_respawns"] >= 1

    def test_transient_store_io_is_retried(
        self, power7_arch, small_plan, baseline, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        with faults.injected(FaultPlan(seed=5).arm("io")):
            executor = SerialExecutor(Machine(power7_arch), store=store)
            report = executor.execute(small_plan)
        assert report.ok
        assert list(report) == baseline
        assert report.fault_counters["store_put_retries"] >= 1
        # Every cell landed durably despite the transient append faults.
        assert len(store) == small_plan.size

    def test_unreadable_warm_records_remeasure_loudly(
        self, power7_arch, small_plan, baseline, tmp_path
    ):
        """Satellite: a store read failing with OSError is surfaced as
        a counted, warn-once miss -- and the cells re-measure to the
        same bytes instead of silently vanishing."""
        warm = ResultStore(tmp_path / "store")
        SerialExecutor(Machine(power7_arch), store=warm).run(small_plan)
        store = ResultStore(tmp_path / "store")
        with faults.injected(FaultPlan(seed=5).arm("io", times=1)):
            executor = SerialExecutor(Machine(power7_arch), store=store)
            report = executor.execute(small_plan)
        assert report.ok
        assert list(report) == baseline
        # Every warm get raised once and was swallowed as a miss.
        assert store.fault_stats()["io_errors"] == small_plan.size
        assert report.fault_counters["store_io_errors"] == small_plan.size

    def test_exhausted_retries_degrade_to_serial_not_abort(
        self, power7_arch, small_plan, baseline
    ):
        # Unbounded crash: every worker-side attempt dies, so chunks
        # exhaust their retries and fall back to in-process execution
        # (where the crash site never fires) -- still bit-identical.
        fault_plan = FaultPlan(seed=1).arm("crash", times=10_000)
        report = _faulted_parallel_run(
            power7_arch, small_plan, fault_plan, retries=1
        )
        assert report.ok
        assert list(report) == baseline
        assert report.fault_counters["degraded_cells"] == small_plan.size

    def test_scalar_plane_recovers_identically(
        self, power7_arch, small_plan, baseline
    ):
        scalar_baseline = SerialExecutor(
            Machine(power7_arch, vector=False)
        ).run(small_plan)
        assert scalar_baseline == baseline  # planes agree fault-free
        with faults.injected(FaultPlan(seed=7).arm("crash")):
            with ParallelExecutor(
                Machine(power7_arch, vector=False), workers=2, chunk_size=2
            ) as executor:
                report = executor.execute(small_plan)
        assert report.ok
        assert list(report) == baseline
        assert report.fault_counters["worker_respawns"] >= 1

    def test_store_backed_faulted_run_equals_clean_warm_run(
        self, power7_arch, small_plan, baseline, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        fault_plan = FaultPlan(seed=11).arm("crash").arm("io")
        with faults.injected(fault_plan):
            with ParallelExecutor(
                Machine(power7_arch), workers=2, chunk_size=2, store=store
            ) as executor:
                faulted = executor.run(small_plan)
        assert faulted == baseline
        # The store contents are clean: a fault-free warm run serves
        # byte-identical measurements.
        warm = SerialExecutor(
            Machine(power7_arch), store=ResultStore(tmp_path / "store")
        ).run(small_plan)
        assert warm == baseline


class TestQuarantine:
    def test_poisoned_cells_quarantine_instead_of_aborting(
        self, power7_arch, small_plan
    ):
        # Poison fires everywhere (workers *and* the degraded serial
        # fallback), so these cells cannot be measured at all -- the
        # campaign must finish anyway, reporting them.
        report = _faulted_parallel_run(
            power7_arch, small_plan, FaultPlan(seed=2).arm("poison"), retries=1
        )
        assert isinstance(report, ExecutionReport)
        assert not report.ok
        assert report.completed == 0
        assert len(report.failures) == small_plan.size
        failure = report.failures[0]
        assert isinstance(failure, CellFailure)
        assert failure.kind == "FaultInjectedError"
        assert failure.attempts >= 2  # retried before quarantining
        assert all(m is None for m in report)

    def test_partial_poison_keeps_healthy_measurements(
        self, power7_arch, small_plan, baseline
    ):
        fault_plan = FaultPlan(seed=4)
        fault_plan.arm("poison", probability=0.4)
        poisoned = {
            index
            for index, cell in enumerate(small_plan.cells)
            if fault_plan.fire("poison", faults.cell_key(cell), attempt=0)
        }
        assert 0 < len(poisoned) < small_plan.size  # seed chosen for a mix
        report = _faulted_parallel_run(
            power7_arch, small_plan, fault_plan, retries=0
        )
        assert len(report.failures) == len(poisoned)
        for index, measurement in enumerate(report):
            if index in poisoned:
                assert measurement is None
            else:
                assert measurement == baseline[index]

    def test_run_raises_execution_error_carrying_the_report(
        self, power7_arch, small_plan
    ):
        with faults.injected(FaultPlan(seed=2).arm("poison")):
            executor = SerialExecutor(Machine(power7_arch), retries=0)
            with pytest.raises(ExecutionError) as excinfo:
                executor.run(small_plan)
        report = excinfo.value.report
        assert len(report.failures) == small_plan.size
        assert "quarantined" in str(excinfo.value)
        assert executor.last_report is report

    def test_report_describe_is_informative(self, power7_arch, small_plan):
        report = _faulted_parallel_run(
            power7_arch, small_plan, FaultPlan(seed=7).arm("crash")
        )
        text = report.describe()
        assert f"{small_plan.size}/{small_plan.size} cells measured" in text
        assert "worker_respawns" in text


class TestEvaluatorQuarantineScoring:
    def test_poisoned_points_score_minus_infinity(
        self, power7_arch, small_kernel_factory
    ):
        from repro.dse.evaluator import MeasurementEvaluator
        from repro.dse.space import DesignPoint

        machine = Machine(power7_arch)
        kernels = {
            "add": small_kernel_factory("add", count=24),
            "mulld": small_kernel_factory("mulld", count=24),
        }
        evaluator = MeasurementEvaluator(
            builder=lambda point: kernels[point["kernel"]],
            machine=machine,
            config=MachineConfig(1, 1),
            duration=_DURATION,
            executor=SerialExecutor(machine, retries=0),
        )
        points = [DesignPoint({"kernel": name}) for name in kernels]
        clean = evaluator.evaluate_many(points)
        assert all(score > 0 for score in clean)
        with faults.injected(FaultPlan(seed=0).arm("poison")):
            scores = evaluator.evaluate_many(points)
        assert scores == [float("-inf")] * len(points)


class TestSigintHandling:
    def test_ctrl_c_does_not_spew_worker_tracebacks(self, tmp_path):
        """Satellite regression: SIGINT to the process group (what a
        terminal Ctrl-C delivers) must be handled by the parent alone
        -- no per-worker KeyboardInterrupt tracebacks, no deadlocked
        pool teardown."""
        ready = tmp_path / "ready"
        script = textwrap.dedent(
            f"""
            import pathlib
            from repro.exec import ExperimentPlan, ParallelExecutor
            from repro.march import get_architecture
            from repro.sim import Machine, MachineConfig
            from repro.workloads import daxpy_kernels

            arch = get_architecture("POWER7")
            machine = Machine(arch)
            plan = ExperimentPlan.cross(
                daxpy_kernels(arch, loop_size=96),
                [MachineConfig(2, 1), MachineConfig(2, 2)],
                duration=1.0,
            )
            executor = ParallelExecutor(machine, workers=2, chunk_size=1)
            executor._ensure_pool()
            pathlib.Path({str(ready)!r}).write_text("ready")
            executor.run(plan)
            print("COMPLETED")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        # Every chunk sleeps 30 s in the worker, so the campaign is
        # mid-measurement for the whole test window.
        env["REPRO_FAULTS"] = "slow:1,slow_s:30"
        process = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not ready.exists():
                assert time.monotonic() < deadline, "campaign never started"
                assert process.poll() is None, process.communicate()[1]
                time.sleep(0.05)
            time.sleep(0.3)  # let the workers reach their sleeps
            os.killpg(os.getpgid(process.pid), signal.SIGINT)
            stdout, stderr = process.communicate(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - hang guard
                os.killpg(os.getpgid(process.pid), signal.SIGKILL)
                process.communicate()
                pytest.fail("process deadlocked after SIGINT")
        assert process.returncode != 0
        assert "COMPLETED" not in stdout
        # The regression: without SIG_IGN in the worker initializer,
        # every pool worker prints its own KeyboardInterrupt traceback.
        assert "ForkPoolWorker" not in stderr
