"""Executor contracts: batching, deduplication, parallel bit-identity.

The headline property: a :class:`ParallelExecutor` sharding the full
24-configuration CMP/SMT sweep across worker processes returns the
exact byte-identical measurements -- counters, powers, noise draws --
the :class:`SerialExecutor` produces in-process.
"""

import pytest

from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    PlanCell,
    SerialExecutor,
    default_executor,
)
from repro.sim import Machine, MachineConfig, Placement, get_pstate
from repro.sim.config import standard_configurations
from repro.workloads import spec_cpu2006

_DURATION = 1.0


@pytest.fixture(scope="module")
def sweep_plan(small_kernel_factory):
    """Kernels + a SPEC proxy across the paper's full 24-config sweep."""
    workloads = [
        small_kernel_factory("add", count=24),
        small_kernel_factory("lxvw4x", count=24, level="L1"),
        small_kernel_factory("xvnmsubmdp", count=24, dep=4),
        spec_cpu2006()[5],  # mcf: a memory-bound profiled workload
    ]
    return ExperimentPlan.cross(
        workloads, standard_configurations(), duration=_DURATION
    )


class TestSerialExecutor:
    def test_matches_direct_machine_runs(self, machine, small_kernel_factory):
        kernel = small_kernel_factory("add", count=24)
        config = MachineConfig(2, 2)
        plan = ExperimentPlan.single(kernel, config, _DURATION)
        via_engine = SerialExecutor(machine).run(plan)[0]
        direct = machine.run(kernel, config, _DURATION)
        assert via_engine == direct

    def test_deduplicated_cells_measured_once(
        self, power7_arch, small_kernel_factory
    ):
        machine = Machine(power7_arch)
        calls = []
        original = machine.run_cells

        def counting(cells, plan=None):
            calls.append(len(list(cells)))
            return original(cells, plan=plan)

        machine.run_cells = counting
        kernel = small_kernel_factory("add", count=24)
        copy = small_kernel_factory("add", count=24)
        plan = ExperimentPlan.cross(
            [kernel, copy, kernel], [MachineConfig(1, 1)], duration=_DURATION
        )
        results = SerialExecutor(machine).run(plan)
        assert calls == [1]  # one batch, one unique cell
        assert results[0] == results[1] == results[2]

    def test_placement_cells(self, machine, small_kernel_factory):
        config = MachineConfig(1, 2)
        mix = Placement(
            "mix",
            (
                (
                    small_kernel_factory("addic", count=24),
                    small_kernel_factory("ld", count=24, level="MEM"),
                ),
            ),
        )
        plan = ExperimentPlan.single(mix, config, _DURATION)
        via_engine = SerialExecutor(machine).run(plan)[0]
        assert via_engine == machine.run(mix, config, _DURATION)


class TestParallelBitIdentity:
    def test_full_sweep_bit_identical(self, power7_arch, sweep_plan):
        """The acceptance property: 24-config sweep, counters, powers
        and noise draws all exactly equal between executors."""
        serial = SerialExecutor(Machine(power7_arch)).run(sweep_plan)
        parallel = ParallelExecutor(
            Machine(power7_arch), workers=3, chunk_size=7
        ).run(sweep_plan)
        assert len(serial) == len(parallel) == sweep_plan.requested
        for left, right in zip(serial, parallel):
            # Dataclass equality covers every field bit for bit: exact
            # float equality on powers and every counter value.
            assert left == right

    def test_p_state_cells_bit_identical(self, power7_arch, small_kernel_factory):
        kernel = small_kernel_factory("xvmaddadp", count=24)
        plan = ExperimentPlan.cross(
            [kernel],
            [MachineConfig(4, 2), MachineConfig(8, 4)],
            p_states=(get_pstate("turbo"), get_pstate("p3")),
            duration=_DURATION,
        )
        serial = SerialExecutor(Machine(power7_arch)).run(plan)
        parallel = ParallelExecutor(
            Machine(power7_arch), workers=2, chunk_size=1
        ).run(plan)
        assert serial == parallel

    def test_single_worker_falls_back_in_process(
        self, power7_arch, small_kernel_factory
    ):
        machine = Machine(power7_arch)
        executor = ParallelExecutor(machine, workers=1)
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        assert executor.run(plan)[0] == machine.run(
            plan.cells[0].workload, MachineConfig(1, 1), _DURATION
        )

    def test_unregistered_arch_falls_back_to_serial(
        self, power7_arch, small_kernel_factory
    ):
        unregistered = Machine(power7_arch)
        unregistered.arch = __import__("copy").copy(power7_arch)
        unregistered.arch.name = "NOT-IN-REGISTRY"
        executor = ParallelExecutor(unregistered, workers=4)
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24), MachineConfig(1, 1), _DURATION
        )
        results = executor.run(plan)  # must not raise, must not hang
        assert len(results) == 1

    def test_customized_registered_arch_falls_back_to_serial(
        self, small_kernel_factory
    ):
        """A machine on a customized 'POWER7' must not be silently
        measured on the bundled definition by the workers."""
        import dataclasses

        from repro.march import get_architecture

        arch = get_architecture("POWER7")
        prop = arch.properties.get("add")
        arch.properties.add(dataclasses.replace(prop, latency=prop.latency + 2))
        machine = Machine(arch)
        executor = ParallelExecutor(machine, workers=4)
        plan = ExperimentPlan.single(
            small_kernel_factory("add", count=24, dep=1),
            MachineConfig(1, 1),
            _DURATION,
        )
        via_parallel = executor.run(plan)[0]
        # Bit-identity held by the in-process fallback: the customized
        # latency is visible in the measurement.
        assert via_parallel == machine.run(
            plan.cells[0].workload, MachineConfig(1, 1), _DURATION
        )
        assert executor._pool is None  # no pool was ever spun up

    def test_pool_persists_across_runs(self, power7_arch, small_kernel_factory):
        plan = ExperimentPlan.cross(
            [
                small_kernel_factory("add", count=24),
                small_kernel_factory("mulld", count=24),
            ],
            [MachineConfig(1, 1), MachineConfig(2, 2)],
            duration=_DURATION,
        )
        with ParallelExecutor(
            Machine(power7_arch), workers=2, chunk_size=1
        ) as executor:
            first = executor.run(plan)
            pool = executor._pool
            assert pool is not None
            second = executor.run(plan)
            assert executor._pool is pool  # reused, not rebuilt
            assert first == second
        assert executor._pool is None  # released on exit


class TestDefaultExecutor:
    def test_plain_environment_is_serial(self, machine, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        executor = default_executor(machine)
        assert isinstance(executor, SerialExecutor)
        assert executor.store is None

    def test_environment_selects_parallel_and_store(
        self, machine, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        monkeypatch.setenv("REPRO_PARALLEL", "3")
        executor = default_executor(machine)
        assert isinstance(executor, ParallelExecutor)
        assert executor.workers == 3
        assert executor.store is not None

    def test_arguments_override_environment(self, machine, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PARALLEL", "8")
        executor = default_executor(machine, parallel=1, store=str(tmp_path))
        assert isinstance(executor, SerialExecutor)
        assert executor.store is not None
