"""Wire format v2: digest-interned pools, negotiation, bit-identity.

The fast lane's acceptance properties:

* a v2 (pooled) plan body rebuilds to the same fingerprints, store
  keys and measurement bytes as the v1 (inline) body and as local
  execution -- through real JSON bytes;
* the server's cross-request intern cache hands repeat campaigns the
  *same* rebuilt objects with zero re-deserialization, verifying each
  claimed digest exactly once;
* clients negotiate per server: a v2 client falls back to v1 bodies
  against an old server byte-identically, a v1 client is served by a
  v2 server byte-identically, and forced mismatches fail cleanly;
* malformed pools -- duplicate digests, tampered entries, dangling
  references -- are rejected naming the offending cell.
"""

import json
import threading

import pytest

from repro.errors import MeasurementError, ServiceError
from repro.exec import (
    ExperimentPlan,
    MeasurementService,
    PlanCell,
    RemoteExecutor,
    SerialExecutor,
    ServiceClient,
    build_server,
)
from repro.exec.plan import workload_fingerprint
from repro.exec.serialize import (
    WIRE_V1,
    WIRE_V2,
    WireInternCache,
    plan_from_dict,
    plan_to_dict,
    plan_to_dict_v2,
    wire_digest,
    workload_to_dict,
)
from repro.sim import Machine, MachineConfig, Placement, get_pstate
from repro.sim.topology import parse_topology
from repro.workloads import spec_cpu2006

_DURATION = 1.0


def _wire(data: dict) -> dict:
    """Round-trip through real JSON bytes, as the socket does."""
    return json.loads(json.dumps(data))


def _mixed_plan(make_kernel) -> ExperimentPlan:
    """Every workload kind x both config shapes x a DVFS point."""
    kernels = [
        make_kernel("add", count=24),
        make_kernel("ld", count=24, level="MEM"),
    ]
    mix = Placement("mix", ((kernels[0],), (kernels[1],)))
    configs = [
        MachineConfig(1, 1),
        MachineConfig(2, 1),
        MachineConfig(2, 2).with_p_state(get_pstate("p2")),
        parse_topology("2big+2little"),
    ]
    plan = ExperimentPlan.cross(
        kernels + [spec_cpu2006()[2]], configs, duration=_DURATION
    )
    extra = PlanCell(mix, MachineConfig(2, 1), _DURATION)
    return ExperimentPlan(list(plan.cells) + [extra])


class TestV2RoundTrip:
    def test_fingerprints_and_keys_match_v1(
        self, power7_arch, small_kernel_factory
    ):
        plan = _mixed_plan(small_kernel_factory)
        executor = SerialExecutor(Machine(power7_arch))
        from_v1 = plan_from_dict(_wire(plan_to_dict(plan)))
        from_v2 = plan_from_dict(_wire(plan_to_dict_v2(plan)))
        assert [workload_fingerprint(c.workload) for c in from_v2.cells] == [
            workload_fingerprint(c.workload) for c in plan.cells
        ]
        assert [executor.key_of(c) for c in from_v2.cells] == [
            executor.key_of(c) for c in from_v1.cells
        ] == [executor.key_of(c) for c in plan.cells]

    def test_pool_ships_each_ingredient_once(self, small_kernel_factory):
        kernel = small_kernel_factory("add", count=24)
        configs = [MachineConfig(1, s) for s in (1, 2, 4)]
        plan = ExperimentPlan.cross([kernel], configs, duration=_DURATION)
        body = plan_to_dict_v2(plan)
        assert len(body["pool"]["workloads"]) == 1
        assert len(body["pool"]["configs"]) == 3
        assert len(body["cells"]) == 3
        # The pooled body is strictly smaller than the inline one.
        assert len(json.dumps(body)) < len(json.dumps(plan_to_dict(plan)))

    def test_v1_body_is_unchanged(self, small_kernel_factory):
        # Old servers key their dispatch off the absence of "wire";
        # the v1 encoder must stay byte-compatible with them forever.
        plan = ExperimentPlan.cross(
            [small_kernel_factory("add", count=24)],
            [MachineConfig(1, 1)],
            duration=_DURATION,
        )
        body = plan_to_dict(plan)
        assert set(body) == {"cells"}
        assert "wire" not in body

    def test_content_equal_objects_share_one_pool_entry(
        self, small_kernel_factory
    ):
        # Two distinct-but-equal kernel objects collapse to one digest.
        a = small_kernel_factory("add", count=24)
        b = small_kernel_factory("add", count=24)
        plan = ExperimentPlan(
            [
                PlanCell(a, MachineConfig(1, 1), _DURATION),
                PlanCell(b, MachineConfig(2, 1), _DURATION),
            ]
        )
        body = plan_to_dict_v2(plan)
        assert len(body["pool"]["workloads"]) == 1


class TestInternCache:
    def test_repeat_decode_rebuilds_nothing(self, small_kernel_factory):
        plan = _mixed_plan(small_kernel_factory)
        body = plan_to_dict_v2(plan)
        intern = WireInternCache()
        first = plan_from_dict(_wire(body), intern=intern)
        misses = intern.stats()["workloads"]["misses"]
        second = plan_from_dict(_wire(body), intern=intern)
        assert intern.stats()["workloads"]["misses"] == misses
        for one, two in zip(first.cells, second.cells):
            assert one.workload is two.workload
            assert one.config is two.config

    def test_claimed_digests_verify_exactly_once(self, small_kernel_factory):
        plan = _mixed_plan(small_kernel_factory)
        intern = WireInternCache()
        plan_from_dict(_wire(plan_to_dict_v2(plan)), intern=intern)
        verified = intern.stats()["verified"]
        assert verified > 0
        plan_from_dict(_wire(plan_to_dict_v2(plan)), intern=intern)
        assert intern.stats()["verified"] == verified

    def test_v1_bodies_intern_under_trusted_digests(
        self, small_kernel_factory
    ):
        plan = _mixed_plan(small_kernel_factory)
        intern = WireInternCache()
        from_v1 = plan_from_dict(_wire(plan_to_dict(plan)), intern=intern)
        # Server-computed digests skip verification entirely...
        assert intern.stats()["verified"] == 0
        # ...and a v2 body then reuses the v1-built objects.
        from_v2 = plan_from_dict(_wire(plan_to_dict_v2(plan)), intern=intern)
        for one, two in zip(from_v1.cells, from_v2.cells):
            assert one.workload is two.workload

    def test_capacity_bounds_and_counts_evictions(self, small_kernel_factory):
        intern = WireInternCache(capacity=1)
        kernels = [
            small_kernel_factory("add", count=24),
            small_kernel_factory("mulld", count=24),
        ]
        for kernel in kernels:
            entry = workload_to_dict(kernel)
            intern.workload(wire_digest(entry), entry)
        stats = intern.stats()["workloads"]
        assert stats["size"] == 1
        assert stats["evictions"] == 1


class TestMalformedPools:
    @pytest.fixture()
    def body(self, small_kernel_factory):
        plan = ExperimentPlan.cross(
            [small_kernel_factory("add", count=24)],
            [MachineConfig(1, 1), MachineConfig(2, 1)],
            duration=_DURATION,
        )
        return _wire(plan_to_dict_v2(plan))

    def test_duplicate_digest_rejected_with_cell_index(self, body):
        body["pool"]["workloads"].append(body["pool"]["workloads"][0])
        with pytest.raises(MeasurementError, match=r"twice.*cell 0"):
            plan_from_dict(body)

    def test_tampered_entry_rejected_with_cell_index(self, body):
        body["pool"]["workloads"][0][1]["kernel"]["name"] = "tampered"
        with pytest.raises(MeasurementError, match=r"cell 0:.*hashes to"):
            plan_from_dict(body)

    def test_dangling_reference_rejected_with_cell_index(self, body):
        body["pool"]["workloads"] = []
        with pytest.raises(
            MeasurementError, match=r"cell 0:.*does not define"
        ):
            plan_from_dict(body)

    def test_non_list_pool_rejected(self, body):
        body["pool"]["configs"] = {"digest": {}}
        with pytest.raises(MeasurementError, match="list of"):
            plan_from_dict(body)

    def test_malformed_pair_rejected(self, body):
        body["pool"]["workloads"].append(["digest-without-entry"])
        with pytest.raises(MeasurementError, match="pair"):
            plan_from_dict(body)

    def test_missing_pool_rejected(self, body):
        del body["pool"]
        with pytest.raises(MeasurementError, match="pool"):
            plan_from_dict(body)

    def test_malformed_cell_rejected_with_index(self, body):
        del body["cells"][1]["duration"]
        with pytest.raises(MeasurementError, match="cell 1"):
            plan_from_dict(body)


# -- negotiation over real sockets ---------------------------------------------


def _start(service):
    server = build_server(service)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, f"http://127.0.0.1:{server.server_port}"


@pytest.fixture()
def servers(tmp_path):
    """One v2-speaking and one v1-only service, both store-backed."""
    v2 = MeasurementService(store=tmp_path / "v2", flight_timeout=60.0)
    v1 = MeasurementService(
        store=tmp_path / "v1", flight_timeout=60.0, wire_v2=False
    )
    started = [_start(v2), _start(v1)]
    yield (v2, started[0][1]), (v1, started[1][1])
    for server, _url in started:
        server.shutdown()
        server.server_close()
    v2.close()
    v1.close()


class TestNegotiation:
    def _serial(self, power7_arch, plan):
        return [
            m.to_dict() for m in SerialExecutor(Machine(power7_arch)).run(plan)
        ]

    def test_v2_client_v2_server_bit_identical(
        self, servers, power7_arch, small_kernel_factory
    ):
        (service, url), _v1 = servers
        plan = _mixed_plan(small_kernel_factory)
        executor = RemoteExecutor(url)
        served = [m.to_dict() for m in executor.run(plan)]
        assert served == self._serial(power7_arch, plan)
        assert executor.client.wire_version == WIRE_V2
        stats = service.stats()
        assert stats["service"]["wire_v2_requests"] == 1
        assert stats["intern"]["workloads"]["misses"] > 0
        assert stats["wire"] == [1, 2]

    def test_v2_client_v1_server_falls_back_bit_identical(
        self, servers, power7_arch, small_kernel_factory
    ):
        _v2, (service, url) = servers
        plan = _mixed_plan(small_kernel_factory)
        executor = RemoteExecutor(url)
        served = [m.to_dict() for m in executor.run(plan)]
        assert served == self._serial(power7_arch, plan)
        assert executor.client.wire_version == WIRE_V1
        assert service.stats()["service"]["wire_v2_requests"] == 0
        assert service.stats()["wire"] == [1]

    def test_v1_client_v2_server_bit_identical(
        self, servers, power7_arch, small_kernel_factory
    ):
        (service, url), _v1 = servers
        plan = _mixed_plan(small_kernel_factory)
        executor = RemoteExecutor(ServiceClient(url, wire=1))
        served = [m.to_dict() for m in executor.run(plan)]
        assert served == self._serial(power7_arch, plan)
        assert service.stats()["service"]["wire_v2_requests"] == 0
        # The v1 body still interns server-side under trusted digests.
        assert service.stats()["intern"]["workloads"]["misses"] > 0

    def test_forced_v2_client_v1_server_fails_cleanly(
        self, servers, small_kernel_factory
    ):
        _v2, (_service, url) = servers
        plan = ExperimentPlan.cross(
            [small_kernel_factory("add", count=24)],
            [MachineConfig(1, 1)],
            duration=_DURATION,
        )
        executor = RemoteExecutor(ServiceClient(url, wire=2), retries=0)
        with pytest.raises(ServiceError, match="wire format v2"):
            executor.run(plan)

    def test_repeat_campaign_rebuilds_zero_ingredients(
        self, servers, small_kernel_factory
    ):
        (service, url), _v1 = servers
        plan = _mixed_plan(small_kernel_factory)
        RemoteExecutor(url).run(plan)
        before = service.intern.stats()
        RemoteExecutor(url).run(plan)
        after = service.intern.stats()
        assert after["workloads"]["misses"] == before["workloads"]["misses"]
        assert after["configs"]["misses"] == before["configs"]["misses"]
        assert after["workloads"]["hits"] > before["workloads"]["hits"]

    def test_health_and_probe_advertise_wire(
        self, servers, power7_arch
    ):
        (_service, url_v2), (_old, url_v1) = servers
        assert ServiceClient(url_v2).health()["wire"] == [1, 2]
        assert ServiceClient(url_v1).health()["wire"] == [1]
        probe = ServiceClient(url_v2).probe(
            "POWER7", power7_arch.content_digest()
        )
        assert probe["wire"] == [1, 2]

    def test_health_without_wire_key_pins_v1(self):
        # A genuinely old server never sent the key at all.
        client = ServiceClient("http://127.0.0.1:1")
        client._note_wire({"ok": True, "service": "repro-serve-v1"})
        assert client.wire_version is None
        client._note_wire({"wire": "nonsense"})
        assert client.wire_version is None

    def test_unreachable_server_does_not_pin_negotiation(self):
        client = ServiceClient("http://127.0.0.1:1", retries=0)
        assert client.negotiated_wire() == WIRE_V1
        # Nothing was memoized: a later handshake can still pick v2.
        assert client._negotiated is None

    def test_repro_wire_env_forces_version(self, monkeypatch):
        monkeypatch.setenv("REPRO_WIRE", "1")
        assert ServiceClient("http://127.0.0.1:1").wire == 1
        monkeypatch.setenv("REPRO_WIRE", "2")
        assert ServiceClient("http://127.0.0.1:1").wire == 2
        monkeypatch.setenv("REPRO_WIRE", "auto")
        assert ServiceClient("http://127.0.0.1:1").wire is None
        with pytest.raises(ServiceError):
            ServiceClient("http://127.0.0.1:1", wire=3)
