"""Shared fixtures and golden-file plumbing for the whole test suite.

The POWER7 architecture, a machine on it, and the uniform-kernel
builder used to be re-declared in almost every test module; they live
here once, session-scoped (the machine's measurements are
deterministic given its seed, so sharing one instance across modules
only shares its summary/activity caches).

Golden regression files live under ``tests/golden/``.  Run

    pytest --update-goldens

to rewrite them after a *deliberate* retune (e.g. of the hidden
ground-truth energy tables); the resulting JSON diff is the reviewable
record of what moved.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.march import get_architecture
from repro.sim import Kernel, KernelInstruction, Machine

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json from current behaviour "
        "instead of asserting against it",
    )


@pytest.fixture(scope="session")
def power7_arch():
    """The bundled POWER7 micro-architecture definition."""
    return get_architecture("POWER7")


@pytest.fixture(scope="session")
def machine(power7_arch):
    """One shared machine; deterministic, so safe across modules."""
    return Machine(power7_arch)


@pytest.fixture(scope="session")
def bootstrap_records(power7_arch, machine):
    """Bootstrap EPI/latency records at the integration-test scale."""
    from repro.march.bootstrap import Bootstrapper

    return Bootstrapper(power7_arch, machine, loop_size=256).run()


def make_uniform_kernel(
    mnemonic: str,
    count: int = 64,
    dep: int | None = None,
    level: str | None = None,
    entropy: float = 1.0,
) -> Kernel:
    """A single-mnemonic loop body, the workhorse of the unit tests."""
    return Kernel(
        name=f"test-{mnemonic}-{dep}-{level}-{count}",
        instructions=tuple(
            KernelInstruction(
                mnemonic,
                dep_distance=dep,
                source_level=level,
                address=0x1000 + 128 * index if level else None,
            )
            for index in range(count)
        ),
        operand_entropy=entropy,
    )


@pytest.fixture(scope="session")
def small_kernel_factory():
    """The uniform-kernel builder, as a fixture for test signatures."""
    return make_uniform_kernel


@pytest.fixture
def golden(request):
    """Compare-or-update accessor for one golden JSON file.

    Usage::

        def test_something(golden):
            golden("my_file.json", payload)

    Asserts ``payload`` equals the checked-in JSON, or rewrites the
    file when the suite runs with ``--update-goldens``.
    """
    update = request.config.getoption("--update-goldens")

    def check(filename: str, payload) -> None:
        path = GOLDEN_DIR / filename
        # Round-trip through JSON so tuples/ints compare canonically.
        payload = json.loads(json.dumps(payload, sort_keys=True))
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            return
        if not path.exists():
            pytest.fail(
                f"golden file {path} missing; generate it with "
                "pytest --update-goldens"
            )
        expected = json.loads(path.read_text())
        assert payload == expected, (
            f"behaviour diverged from {path.name}; if the change is "
            "deliberate, rerun with --update-goldens and commit the diff"
        )

    return check
