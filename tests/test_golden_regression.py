"""Golden regression tests: frozen paper-result shapes.

The Table 3 EPI taxonomy orderings and the Figure 9 stressmark
candidate pick are the repo's headline reproduction results, and they
depend on the hidden ground-truth energy tables
(``repro.sim.power.ENERGY_MULTIPLIER``).  Retunes of those tables must
be deliberate: these tests pin the full orderings as checked-in JSON
under ``tests/golden/``, so a retune shows up as a reviewable golden
diff (regenerate with ``pytest --update-goldens``) instead of silent
drift.
"""

import pytest

from repro.epi import build_taxonomy
from repro.epi.taxonomy import taxonomy_table, top_by_ipc_epi
from repro.stressmark import select_candidates


@pytest.fixture(scope="module")
def taxonomy(power7_arch, bootstrap_records):
    return build_taxonomy(power7_arch, bootstrap_records)


class TestTable3Goldens:
    def test_category_orderings(self, taxonomy, golden):
        """Per category, every mnemonic in descending measured-EPI
        order -- the strongest ordering statement Table 3 makes."""
        golden(
            "table3_orderings.json",
            {
                category: [entry.mnemonic for entry in entries]
                for category, entries in sorted(taxonomy.items())
            },
        )

    def test_ipc_epi_tops(self, taxonomy, golden):
        """Per category, the IPC*EPI winner (the heuristic's pick)."""
        golden(
            "table3_ipc_epi_tops.json",
            {
                category: entry.mnemonic
                for category, entry in sorted(top_by_ipc_epi(taxonomy).items())
            },
        )

    def test_table_rows(self, taxonomy, golden):
        """The paper-style three-rows-per-category selection."""
        golden(
            "table3_rows.json",
            [
                {"category": entry.category, "mnemonic": entry.mnemonic}
                for entry in taxonomy_table(taxonomy)
            ],
        )


class TestFigure9Goldens:
    def test_stressmark_candidate_pick(
        self, power7_arch, bootstrap_records, golden
    ):
        """The per-unit IPC*EPI candidates the stressmark search seeds
        from (the paper's mulldo / lxvw4x / xvnmsubmdp pick)."""
        golden(
            "fig9_candidates.json",
            select_candidates(power7_arch, bootstrap_records),
        )
