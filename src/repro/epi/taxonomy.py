"""Taxonomy builder: Table 3 from bootstrap records.

The taxonomy groups instructions by functional-unit usage category,
normalizes EPIs within the category and globally (to the overall
minimum, ``addic`` on the POWER7), and selects the paper's three rows
per category: the instruction with the highest IPC*EPI product first
(the max-power heuristic's pick), then examples sharing its core IPC
but differing notably in EPI.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.epi.categories import category_label, category_of
from repro.errors import MicroProbeError
from repro.march.bootstrap import BootstrapRecord
from repro.march.definition import MicroArchitecture

#: Measured EPIs at or below this value are within sensor noise of the
#: bootstrap's reference subtraction and are excluded from taxonomies.
_EPI_RESOLUTION_NJ = 0.02


@dataclass(frozen=True)
class TaxonomyEntry:
    """One taxonomy row."""

    category: str
    mnemonic: str
    core_ipc: float
    epi_nj: float
    global_epi: float  # normalized to the global minimum EPI
    category_epi: float  # normalized to the category minimum EPI

    @property
    def ipc_epi_product(self) -> float:
        return self.core_ipc * self.epi_nj


def build_taxonomy(
    arch: MicroArchitecture,
    records: Mapping[str, BootstrapRecord],
    threads: int | None = None,
) -> dict[str, list[TaxonomyEntry]]:
    """Group bootstrap records into the EPI taxonomy.

    Args:
        arch: Architecture whose property database describes the
            unit-usage categories.
        records: Bootstrap measurements per mnemonic.
        threads: Hardware threads the bootstrap ran with (defaults to
            the taxonomy configuration: all cores, SMT-1); converts the
            measured chip-level throughput into per-core IPC.

    Returns:
        Category label -> entries sorted by descending EPI.
    """
    if not records:
        raise MicroProbeError("taxonomy needs at least one bootstrap record")
    if threads is None:
        threads = arch.chip.max_cores

    # Records whose measured EPI sits at or below the sensor resolution
    # (nop-like instructions whose dynamic power drowns in noise) carry
    # no taxonomic information and are excluded, as a measurement study
    # would exclude below-noise readings.
    usable = {
        mnemonic: record for mnemonic, record in records.items()
        if record.epi_nj > _EPI_RESOLUTION_NJ
    }
    if not usable:
        raise MicroProbeError("no bootstrap EPI above sensor resolution")
    minimum_epi = min(record.epi_nj for record in usable.values())

    by_category: dict[str, list[BootstrapRecord]] = {}
    for mnemonic, record in usable.items():
        label = category_label(category_of(arch.props(mnemonic)))
        by_category.setdefault(label, []).append(record)

    taxonomy: dict[str, list[TaxonomyEntry]] = {}
    for label, members in by_category.items():
        category_minimum = min(record.epi_nj for record in members)
        entries = [
            TaxonomyEntry(
                category=label,
                mnemonic=record.mnemonic,
                core_ipc=record.throughput_ipc,
                epi_nj=record.epi_nj,
                global_epi=record.epi_nj / minimum_epi,
                category_epi=record.epi_nj / category_minimum,
            )
            for record in members
        ]
        entries.sort(key=lambda entry: entry.epi_nj, reverse=True)
        taxonomy[label] = entries
    return taxonomy


def top_by_ipc_epi(
    taxonomy: Mapping[str, list[TaxonomyEntry]]
) -> dict[str, TaxonomyEntry]:
    """Per category, the entry with the highest IPC*EPI product.

    This is the selection rule of the max-power heuristic (section 6).
    """
    return {
        label: max(entries, key=lambda entry: entry.ipc_epi_product)
        for label, entries in taxonomy.items()
        if entries
    }


def taxonomy_table(
    taxonomy: Mapping[str, list[TaxonomyEntry]],
    rows_per_category: int = 3,
) -> list[TaxonomyEntry]:
    """The paper's Table 3 selection.

    Per category: the highest-IPC*EPI instruction first, then examples
    that share a core IPC *with each other* but differ notably in EPI
    (the paper's demonstration that energy varies even at identical
    utilization).  The same-IPC group with the widest EPI contrast is
    chosen.
    """
    table: list[TaxonomyEntry] = []
    for label in sorted(taxonomy):
        entries = taxonomy[label]
        if not entries:
            continue
        top = max(entries, key=lambda entry: entry.ipc_epi_product)
        rows = [top]

        groups: dict[float, list[TaxonomyEntry]] = {}
        for entry in entries:
            if entry is top:
                continue
            groups.setdefault(round(entry.core_ipc, 1), []).append(entry)
        contrasting = [
            sorted(group, key=lambda e: e.epi_nj, reverse=True)
            for group in groups.values()
            if len(group) >= 2
        ]
        if contrasting:
            best_group = max(
                contrasting,
                key=lambda group: group[0].epi_nj / group[-1].epi_nj,
            )
            rows.extend(best_group[: rows_per_category - 1])
        else:
            leftovers = sorted(
                (entry for entry in entries if entry is not top),
                key=lambda entry: entry.epi_nj,
                reverse=True,
            )
            rows.extend(leftovers[: rows_per_category - 1])
        table.extend(rows)
    return table


def epi_spread(entries: Iterable[TaxonomyEntry]) -> float:
    """Max/min EPI ratio minus one, as a percentage (the paper's
    "up to 78% variations ... even when they stress the same
    functional unit at the same rate")."""
    values = [entry.epi_nj for entry in entries]
    if not values or min(values) <= 0:
        return 0.0
    return (max(values) / min(values) - 1.0) * 100.0
