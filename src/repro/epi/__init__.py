"""EPI-based instruction taxonomy (paper section 5)."""

from repro.epi.categories import category_label, category_of
from repro.epi.taxonomy import TaxonomyEntry, build_taxonomy, taxonomy_table

__all__ = [
    "TaxonomyEntry",
    "build_taxonomy",
    "category_label",
    "category_of",
    "taxonomy_table",
]
