"""Instruction categories from functional-unit usage (Table 3).

Categories are named after the units an instruction stresses and the
number of operations it injects there, exactly the scheme of the
paper's Table 3: pure ``FXU``/``LSU``/``VSU``, the flexible
``FXU or LSU`` simple-integer class, cracked loads like
``LSU and 2FXU``, and compound stores like ``LSU and VSU and FXU``.
"""

from __future__ import annotations

from repro.march.properties import InstructionProperties


def category_of(props: InstructionProperties) -> tuple[str, ...]:
    """Canonical category key: one ``unit`` or ``nXunit`` term per usage."""
    terms = []
    for usage in props.usages:
        unit = "/".join(usage.units)
        ops = usage.ops
        if ops == 1:
            terms.append(unit)
        else:
            terms.append(f"{ops:g}{unit}")
    return tuple(terms)


def category_label(category: tuple[str, ...]) -> str:
    """Paper-style label, e.g. ``LSU and 2FXU`` or ``FXU or LSU``."""
    if not category:
        return "none"
    rendered = [term.replace("/", " or ") for term in category]
    return " and ".join(rendered)
