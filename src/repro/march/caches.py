"""Cache geometry and address-field decomposition (paper Figure 3b).

The analytical set-associative cache model of the paper relies on
knowing, for each cache level, which address bits select the set.  That
information is pure geometry: with ``line_bytes`` per line and ``sets``
sets, bits ``[offset_bits, offset_bits + set_bits)`` form the set index.
:class:`CacheGeometry` derives it once from size/ways/line-size and
:class:`AddressFields` exposes the split used by the model.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressFields:
    """The offset/set/tag split of a physical address for one cache level."""

    offset_bits: int
    set_bits: int

    @property
    def tag_shift(self) -> int:
        """Bit position where the tag field starts."""
        return self.offset_bits + self.set_bits

    def line_address(self, address: int) -> int:
        """Address with the intra-line offset stripped."""
        return address >> self.offset_bits

    def set_index(self, address: int) -> int:
        """Set selected by ``address`` at this level."""
        return (address >> self.offset_bits) & ((1 << self.set_bits) - 1)

    def tag(self, address: int) -> int:
        """Tag bits of ``address`` at this level."""
        return address >> self.tag_shift

    def compose(self, tag: int, set_index: int, offset: int = 0) -> int:
        """Build an address that lands in ``set_index`` with the given tag."""
        if not 0 <= set_index < (1 << self.set_bits):
            raise ValueError(f"set index {set_index} out of range")
        if not 0 <= offset < (1 << self.offset_bits):
            raise ValueError(f"offset {offset} out of range")
        return (tag << self.tag_shift) | (set_index << self.offset_bits) | offset


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache level.

    Attributes:
        name: Level name (``L1``, ``L2``, ``L3``).
        level: Depth in the hierarchy, 1-based.
        size_bytes: Total capacity.
        line_bytes: Cache line size.
        ways: Associativity.
        latency: Load-to-use latency in cycles when hitting this level.
        counter: Performance counter crediting data sourced from this
            level (empty for L1, whose hits are derived by subtraction).
    """

    name: str
    level: int
    size_bytes: int
    line_bytes: int
    ways: int
    latency: int
    counter: str = ""

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError(f"{self.name}: sizes and ways must be positive")
        if self.size_bytes % (self.line_bytes * self.ways) != 0:
            raise ValueError(
                f"{self.name}: size must be a multiple of line_bytes * ways"
            )
        if not _is_power_of_two(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if not _is_power_of_two(self.sets):
            raise ValueError(f"{self.name}: set count must be a power of two")

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def fields(self) -> AddressFields:
        """Address-field decomposition for this level (Figure 3b)."""
        return AddressFields(
            offset_bits=self.line_bytes.bit_length() - 1,
            set_bits=self.sets.bit_length() - 1,
        )

    def set_of(self, address: int) -> int:
        """Set index selected by ``address``."""
        return self.fields.set_index(address)

    def __str__(self) -> str:
        kb = self.size_bytes // 1024
        return f"{self.name}({kb}KB {self.ways}-way, {self.sets} sets)"


@dataclass(frozen=True)
class MemoryLevel:
    """Main memory: the terminal level of the hierarchy.

    Attributes:
        latency: Access latency in cycles.
        counter: Performance counter crediting data sourced from memory.
    """

    latency: int
    counter: str = ""

    name: str = "MEM"
