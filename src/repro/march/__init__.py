"""Micro-architecture definition module (paper sections 2.1.2-2.1.3).

This module carries the implementation-specific information the ISA
module deliberately omits: functional units and their pipe counts, the
cache hierarchy and its address-field geometry, performance-counter
definitions with derived formulas (IPC and per-unit rates), and the
per-instruction dynamic properties (units stressed, latency, inverse
throughput, and -- once bootstrapped -- EPI and average power).

Like the ISA, the definition is supplied through a readable text file
(``data/power7.march``), keeping the generation process portable across
target machines.
"""

from repro.march.caches import AddressFields, CacheGeometry, MemoryLevel
from repro.march.components import ChipGeometry, FunctionalUnit
from repro.march.counters import CounterDef, CounterFormula, evaluate_formula
from repro.march.definition import MicroArchitecture, get_architecture
from repro.march.parser import parse_march_file, parse_march_text
from repro.march.properties import (
    InstructionProperties,
    PropertyDatabase,
    UnitUsage,
)

__all__ = [
    "AddressFields",
    "CacheGeometry",
    "ChipGeometry",
    "CounterDef",
    "CounterFormula",
    "FunctionalUnit",
    "InstructionProperties",
    "MemoryLevel",
    "MicroArchitecture",
    "PropertyDatabase",
    "UnitUsage",
    "evaluate_formula",
    "get_architecture",
    "parse_march_file",
    "parse_march_text",
]
