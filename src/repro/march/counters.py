"""Performance-counter definitions and the counter-formula language.

The paper's methodology consumes *formulas over counters* ("the
performance counter-based formula" defining IPC, the per-component rate
formulas of the power model).  We implement a small, safe arithmetic
expression language over counter names: ``+``, ``-``, ``*``, ``/``,
unary minus, parentheses and numeric literals.  Expressions are parsed
with :mod:`ast` and evaluated against a mapping of counter readings; no
other Python syntax is accepted.
"""

from __future__ import annotations

import ast
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import DefinitionError, MicroProbeError


@dataclass(frozen=True)
class CounterDef:
    """One hardware performance counter."""

    name: str
    description: str = ""


class FormulaError(MicroProbeError):
    """A counter formula is syntactically or semantically invalid."""


_ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div)


def _validate_node(node: ast.AST, expr: str) -> None:
    if isinstance(node, ast.Expression):
        _validate_node(node.body, expr)
    elif isinstance(node, ast.BinOp):
        if not isinstance(node.op, _ALLOWED_BINOPS):
            raise FormulaError(f"operator not allowed in formula: {expr!r}")
        _validate_node(node.left, expr)
        _validate_node(node.right, expr)
    elif isinstance(node, ast.UnaryOp):
        if not isinstance(node.op, (ast.USub, ast.UAdd)):
            raise FormulaError(f"operator not allowed in formula: {expr!r}")
        _validate_node(node.operand, expr)
    elif isinstance(node, ast.Name):
        pass
    elif isinstance(node, ast.Constant):
        if not isinstance(node.value, (int, float)):
            raise FormulaError(f"literal not allowed in formula: {expr!r}")
    else:
        raise FormulaError(
            f"syntax not allowed in formula: {expr!r} "
            f"({type(node).__name__})"
        )


def _evaluate_node(node: ast.AST, variables: Mapping[str, float]) -> float:
    if isinstance(node, ast.Expression):
        return _evaluate_node(node.body, variables)
    if isinstance(node, ast.BinOp):
        left = _evaluate_node(node.left, variables)
        right = _evaluate_node(node.right, variables)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        # Division: counters read zero when idle; treat 0/0 as 0 so rate
        # formulas degrade gracefully on empty measurement windows.
        if right == 0:
            return 0.0
        return left / right
    if isinstance(node, ast.UnaryOp):
        value = _evaluate_node(node.operand, variables)
        return -value if isinstance(node.op, ast.USub) else value
    if isinstance(node, ast.Name):
        try:
            return float(variables[node.id])
        except KeyError:
            raise FormulaError(f"unknown counter {node.id!r}") from None
    if isinstance(node, ast.Constant):
        return float(node.value)
    raise FormulaError(f"unexpected node {type(node).__name__}")


@dataclass(frozen=True)
class CounterFormula:
    """A named arithmetic formula over performance counters."""

    name: str
    expression: str

    def __post_init__(self) -> None:
        _validate_node(self._tree(), self.expression)

    def _tree(self) -> ast.Expression:
        try:
            return ast.parse(self.expression, mode="eval")
        except SyntaxError as exc:
            raise FormulaError(
                f"cannot parse formula {self.name}: {self.expression!r}"
            ) from exc

    def counters(self) -> frozenset[str]:
        """Counter names referenced by the formula."""
        return frozenset(
            node.id for node in ast.walk(self._tree())
            if isinstance(node, ast.Name)
        )

    def evaluate(self, readings: Mapping[str, float]) -> float:
        """Evaluate against counter readings.

        Raises:
            FormulaError: If a referenced counter is missing.
        """
        return _evaluate_node(self._tree(), readings)


def evaluate_formula(expression: str, readings: Mapping[str, float]) -> float:
    """Evaluate a one-off formula expression against counter readings."""
    return CounterFormula("<anonymous>", expression).evaluate(readings)


def check_counters_known(
    formula: CounterFormula,
    known: Mapping[str, CounterDef] | frozenset[str],
    origin: str,
) -> None:
    """Raise :class:`DefinitionError` if the formula uses unknown counters."""
    known_names = set(known)
    unknown = formula.counters() - known_names
    if unknown:
        raise DefinitionError(
            origin, 0,
            f"formula {formula.name} references unknown counters: "
            f"{sorted(unknown)}",
        )
