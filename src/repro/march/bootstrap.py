"""Automatic micro-architecture bootstrap (paper section 2.1.2).

Given (a) the functional units and their counters, (b) the IPC counter
formula, and (c) the ISA, the bootstrap derives per-instruction dynamic
properties *by measurement*, with no human intervention:

* a 4K endless loop of the instruction with a dependency chain between
  consecutive instances yields the **latency** (IPC of a serialized
  chain is ``1 / latency``);
* the same loop without dependencies yields the sustained
  **throughput** and, from the per-unit counters, the **functional
  units stressed**;
* reading the power sensors during the no-dependency run yields the
  **EPI** and **average sustained power**.

EPI is referenced against a nop-loop run on the same configuration,
which cancels the workload-independent, uncore, and CMP-static power.
The reference loop's own dispatch energy biases the estimate down by
``rate_nop / rate_ins`` times the (very small) per-nop energy; on this
substrate that is within sensor noise, and it affects every
instruction's estimate in the same direction -- taxonomy *orderings*
are unaffected, matching how the paper's measured EPIs should be read.

Register, immediate and memory values are randomized, minimizing data
switching effects so instructions compare fairly; memory instructions
run L1-resident (paper section 5 measures EPI at full locality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.passes.distribution import InstructionDistribution
from repro.core.passes.ilp import DependencyDistance
from repro.core.passes.init_values import InitImmediates, InitRegisters
from repro.core.passes.memory import MemoryModel
from repro.core.passes.skeleton import EndlessLoopSkeleton
from repro.core.synthesizer import Synthesizer
from repro.errors import MicroProbeError
from repro.march.definition import MicroArchitecture
from repro.measure.measurement import Measurement
from repro.sim.config import MachineConfig

#: Fraction of per-instruction unit ops below which a unit does not
#: count as "stressed" (filters counter noise).
UNIT_STRESS_THRESHOLD = 0.05


@dataclass(frozen=True)
class BootstrapRecord:
    """Measured dynamic properties of one instruction."""

    mnemonic: str
    latency: float
    throughput_ipc: float
    units: tuple[str, ...]
    epi_nj: float
    avg_power_w: float


class Bootstrapper:
    """Runs the automatic bootstrap against a machine."""

    def __init__(
        self,
        arch: MicroArchitecture,
        machine,
        loop_size: int = 4096,
        config: MachineConfig | None = None,
        duration: float = 10.0,
        seed: int = 0,
        executor=None,
    ) -> None:
        self.arch = arch
        self.machine = machine
        self.loop_size = loop_size
        # The paper's taxonomy configuration: 8 cores, 1-way SMT.
        self.config = config or MachineConfig(
            cores=arch.chip.max_cores, smt=1
        )
        self.duration = duration
        self.seed = seed
        # Optional execution-engine routing: with a store-backed
        # executor a warm re-run of the whole-ISA bootstrap is served
        # from disk.  The default (None) keeps the generator-fed
        # run_many path, which never materializes more than one kernel
        # at a time -- preferable at paper loop sizes.
        self.executor = executor
        self._reference_power: float | None = None

    # -- micro-benchmark construction ---------------------------------------

    def _synthesizer(self, prefix: str) -> Synthesizer:
        return Synthesizer(
            self.arch, seed=self.seed, name_prefix=prefix, validate=True
        )

    def _build(self, mnemonic: str, chained: bool):
        """One of the two bootstrap benchmarks for ``mnemonic``."""
        synth = self._synthesizer(
            f"boot-{mnemonic}-{'chain' if chained else 'free'}"
        )
        synth.add_pass(EndlessLoopSkeleton(self.loop_size))
        synth.add_pass(InstructionDistribution([mnemonic]))
        definition = self.arch.isa.instruction(mnemonic)
        if definition.is_memory and not definition.is_prefetch:
            synth.add_pass(MemoryModel({self.arch.caches[0].name: 1.0}))
        synth.add_pass(InitRegisters("random"))
        synth.add_pass(InitImmediates("random"))
        synth.add_pass(
            DependencyDistance("chain" if chained else "none")
        )
        return synth.synthesize().to_kernel()

    def _measure_batch(self, kernels) -> list[Measurement]:
        """Measure bootstrap kernels, through the executor when set."""
        if self.executor is None:
            return self.machine.run_many(kernels, self.config, self.duration)
        from repro.exec.plan import ExperimentPlan

        return self.executor.run(
            ExperimentPlan.cross(
                list(kernels), [self.config], duration=self.duration
            )
        )

    def _reference(self) -> float:
        """Mean power of the nop reference loop (cancels statics)."""
        if self._reference_power is None:
            kernel = self._build("nop", chained=False)
            measurement = self._measure_batch([kernel])[0]
            self._reference_power = measurement.mean_power
        return self._reference_power

    # -- derivations ----------------------------------------------------------

    def _ipc(self, measurement: Measurement) -> float:
        return self.arch.ipc(measurement.thread_counters[0])

    def _units_stressed(self, measurement: Measurement) -> tuple[str, ...]:
        counters = measurement.thread_counters[0]
        instructions = counters.get("PM_RUN_INST_CMPL", 0.0)
        if instructions <= 0:
            return ()
        stressed = []
        for unit in self.arch.units.values():
            ops = counters.get(unit.counter, 0.0)
            if ops / instructions >= UNIT_STRESS_THRESHOLD:
                stressed.append(unit.name)
        return tuple(stressed)

    def _require_probeable(self, mnemonic: str) -> None:
        """Raise for instructions the bootstrap cannot probe."""
        definition = self.arch.isa.instruction(mnemonic)
        if definition.is_branch or definition.is_nop:
            raise MicroProbeError(
                f"bootstrap cannot probe {mnemonic!r} "
                "(control-flow/reference instruction)"
            )

    def bootstrap_instruction(self, mnemonic: str) -> BootstrapRecord:
        """Derive the dynamic properties of one instruction.

        Raises:
            MicroProbeError: For instructions the bootstrap cannot probe
                (branches would destroy the loop structure; nop is the
                reference itself).
        """
        self._require_probeable(mnemonic)
        chained = self._measure_batch([self._build(mnemonic, chained=True)])[0]
        free = self._measure_batch([self._build(mnemonic, chained=False)])[0]
        return self._derive(mnemonic, chained, free)

    def _derive(
        self, mnemonic: str, chained: Measurement, free: Measurement
    ) -> BootstrapRecord:
        """Reduce the two bootstrap measurements to a record."""
        chain_ipc = self._ipc(chained)
        throughput = self._ipc(free)
        latency = 1.0 / chain_ipc if chain_ipc > 0 else float("inf")

        instruction_rate = (
            free.total_counters().get("PM_RUN_INST_CMPL", 0.0)
            / free.duration
        )
        dynamic_power = free.mean_power - self._reference()
        epi = (
            dynamic_power / instruction_rate * 1e9
            if instruction_rate > 0
            else 0.0
        )
        return BootstrapRecord(
            mnemonic=mnemonic,
            latency=latency,
            throughput_ipc=throughput,
            units=self._units_stressed(free),
            epi_nj=epi,
            avg_power_w=dynamic_power,
        )

    def run(
        self, mnemonics: list[str] | None = None, write_back: bool = True
    ) -> dict[str, BootstrapRecord]:
        """Bootstrap a set of instructions (default: every probeable one).

        With ``write_back``, measured EPI and average power are stored
        into the architecture's property database, completing the
        partial text-file definition automatically.

        The two benchmarks of every instruction are generated up front
        and measured through :meth:`Machine.run_many`, one batched
        sweep per benchmark kind, so the whole-ISA bootstrap drives the
        machine's evaluation engine instead of several hundred
        independent ``run`` round-trips.
        """
        if mnemonics is None:
            mnemonics = [
                ins.mnemonic for ins in self.arch.isa
                if not ins.is_branch and not ins.is_nop
            ]
        for mnemonic in mnemonics:
            self._require_probeable(mnemonic)
        # Generators keep at most one kernel alive at a time on the
        # default path; an attached executor materializes the batch
        # into a plan instead (acceptable at bootstrap loop sizes).
        chained_batch = self._measure_batch(
            self._build(m, chained=True) for m in mnemonics
        )
        free_batch = self._measure_batch(
            self._build(m, chained=False) for m in mnemonics
        )
        records = {}
        for mnemonic, chained, free in zip(
            mnemonics, chained_batch, free_batch
        ):
            record = self._derive(mnemonic, chained, free)
            records[mnemonic] = record
            if write_back:
                props = self.arch.props(mnemonic)
                self.arch.properties.update(
                    props.with_bootstrap(
                        epi=record.epi_nj, avg_power=record.avg_power_w
                    )
                )
        return records
