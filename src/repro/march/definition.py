"""The MicroArchitecture aggregate and the architecture registry.

``get_architecture("POWER7")`` is the entry point of the Figure-2 user
script: it returns a fully assembled :class:`MicroArchitecture` binding
the ISA definition, the functional units, the cache hierarchy, the
performance counters (with the IPC formula) and the per-instruction
property database.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from functools import lru_cache
from importlib import resources

from repro.errors import UnknownArchitectureError
from repro.hashing import content_hash
from repro.isa.registry import ISA, load_default_isa
from repro.march.caches import CacheGeometry, MemoryLevel
from repro.march.components import ChipGeometry, ClusterSpec, FunctionalUnit
from repro.march.counters import CounterDef, CounterFormula
from repro.march.properties import InstructionProperties, PropertyDatabase

#: Resource names of bundled micro-architecture definitions.  POWER7 is
#: the paper's big core; POWER7_ECO is a narrow low-power LITTLE-style
#: core class (same ISA, half-width pipelines, slower clock, smaller
#: caches) used as the second cluster class of heterogeneous
#: :class:`~repro.sim.topology.ChipTopology` chips.
_BUNDLED = {"POWER7": "power7.march", "POWER7_ECO": "power7_eco.march"}


@dataclass
class MicroArchitecture:
    """A complete micro-architecture definition bound to an ISA.

    Attributes:
        name: Architecture name (``POWER7``).
        isa: The instruction-set registry this implementation executes.
        chip: Chip geometry (cores, SMT ways, widths, frequency).
        units: Functional units by name.
        caches: Cache levels ordered L1 -> last level.
        memory: Main-memory level terminating the hierarchy.
        counters: Performance-counter definitions by name.
        formulas: Named counter formulas (always includes ``IPC``).
        properties: Per-instruction dynamic property database.
        clusters: Optional ``[cluster]`` blocks describing this
            definition's default heterogeneous chip topology (empty for
            homogeneous definitions like the bundled POWER7).
    """

    name: str
    isa: ISA
    chip: ChipGeometry
    units: dict[str, FunctionalUnit]
    caches: tuple[CacheGeometry, ...]
    memory: MemoryLevel
    counters: dict[str, CounterDef]
    formulas: dict[str, CounterFormula]
    properties: PropertyDatabase = field(default_factory=PropertyDatabase)
    clusters: tuple[ClusterSpec, ...] = ()

    # -- structural queries --------------------------------------------------

    def unit(self, name: str) -> FunctionalUnit:
        """Look up a functional unit by name."""
        try:
            return self.units[name]
        except KeyError:
            raise KeyError(
                f"{self.name} has no unit {name!r}; "
                f"units: {', '.join(self.units)}"
            ) from None

    def cache(self, name: str) -> CacheGeometry:
        """Look up a cache level by name."""
        for cache in self.caches:
            if cache.name == name:
                return cache
        raise KeyError(f"{self.name} has no cache level {name!r}")

    @property
    def comps(self) -> dict[str, FunctionalUnit]:
        """Alias matching the paper's ``arch.comps["VSU"]`` idiom."""
        return self.units

    def memory_level_names(self) -> tuple[str, ...]:
        """Hierarchy level names, L1 first, ``MEM`` last."""
        return tuple(c.name for c in self.caches) + (self.memory.name,)

    # -- instruction queries ---------------------------------------------------

    def props(self, mnemonic: str) -> InstructionProperties:
        """Per-instruction properties (units, latency, throughput, EPI)."""
        return self.properties.get(mnemonic)

    def stresses(self, mnemonic: str, unit: str) -> bool:
        """Whether ``mnemonic`` can inject work into ``unit``.

        This is the query behind the Figure-2 line
        ``ins.stress(arch.comps["VSU"])``.
        """
        return self.props(mnemonic).stresses(unit)

    def instructions_stressing(self, unit: str) -> list[str]:
        """Mnemonics of all instructions that can stress ``unit``."""
        return [prop.mnemonic for prop in self.properties.stressing(unit)]

    # -- counter formulas ---------------------------------------------------------

    def formula(self, name: str) -> CounterFormula:
        try:
            return self.formulas[name]
        except KeyError:
            raise KeyError(
                f"{self.name} defines no formula {name!r}; "
                f"formulas: {', '.join(self.formulas)}"
            ) from None

    def ipc(self, readings: Mapping[str, float]) -> float:
        """Evaluate the architecture's IPC formula on counter readings."""
        return self.formula("IPC").evaluate(readings)

    # -- content identity ---------------------------------------------------------

    def content_digest(self) -> int:
        """Deterministic digest of the measurement-relevant definition.

        Covers everything a measurement physically depends on -- chip
        geometry, functional units, cache hierarchy, memory, counters,
        formulas, the ISA records, and the static per-instruction
        properties (unit usages, latency, inverse throughput) -- so
        editing a definition file changes the digest and with it every
        store cell key derived from this architecture, invalidating
        stale persisted measurements.  The bootstrap-measured
        ``epi``/``avg_power`` columns are deliberately excluded: they
        are derived heuristic inputs, not machine physics, so
        in-session bootstrap write-backs do not shift store keys.

        Every component is rendered from value-based dataclass
        ``repr``s -- except instruction ``flags``, a frozenset whose
        iteration order is hash-randomized per process and therefore
        rendered sorted -- making the digest stable across processes.
        """
        static_properties = "".join(
            f"{prop.mnemonic};{prop.usages!r};{prop.latency!r};"
            f"{prop.inv_throughput!r}"
            for prop in sorted(self.properties, key=lambda p: p.mnemonic)
        )
        isa_records = "".join(
            f"{ins.mnemonic};{ins.itype!r};{ins.width};{ins.operands!r};"
            f"{sorted(ins.flags)!r};{ins.opcode};{ins.extended_opcode!r}"
            for ins in self.isa
        )
        parts = [
            self.name,
            repr(self.chip),
            "".join(repr(self.units[name]) for name in sorted(self.units)),
            "".join(repr(cache) for cache in self.caches),
            repr(self.memory),
            "".join(
                repr(self.counters[name]) for name in sorted(self.counters)
            ),
            "".join(
                repr(self.formulas[name]) for name in sorted(self.formulas)
            ),
            isa_records,
            static_properties,
        ]
        # The heterogeneity extensions join the digest only when a
        # definition actually uses them, so every pre-existing
        # cluster-free, unit-scale definition keeps its historical
        # digest (and with it every persisted store key) bit for bit,
        # while editing an eco definition's energy scale or a cluster
        # block still invalidates stale entries.
        if self.chip.energy_scale != 1.0:
            parts.append(f"energy_scale={self.chip.energy_scale!r}")
        if self.clusters:
            parts.append(
                "".join(repr(cluster) for cluster in self.clusters)
            )
        return content_hash("\x1f".join(parts))

    def __repr__(self) -> str:
        return (
            f"MicroArchitecture({self.name!r}, {self.chip.max_cores} cores x "
            f"SMT-{self.chip.max_smt}, units={list(self.units)})"
        )


@lru_cache(maxsize=None)
def _bundled_source(resource: str) -> str:
    return (resources.files("repro.march") / "data" / resource).read_text()


def get_architecture(name: str, isa: ISA | None = None) -> MicroArchitecture:
    """Build a fresh :class:`MicroArchitecture` by name.

    Each call returns an independent instance so that user mutations
    (ISA edits, bootstrap write-backs) never leak between scripts.

    Args:
        name: Registered architecture name; currently ``POWER7``.
        isa: Optional ISA override; defaults to the bundled Power ISA
            subset.

    Raises:
        UnknownArchitectureError: If ``name`` has no bundled definition.
    """
    from repro.march.parser import parse_march_text

    try:
        resource = _BUNDLED[name]
    except KeyError:
        raise UnknownArchitectureError(name, tuple(_BUNDLED)) from None
    if isa is None:
        isa = load_default_isa()
    return parse_march_text(_bundled_source(resource), isa, origin=resource)
