"""Parser for the readable text-file micro-architecture definitions.

Format (``*.march``)::

    march <name>

    [chip]
    cores = 8
    smt = 4
    ...

    [unit FXU]
    pipes = 2
    counter = PM_FXU_FIN
    description = Fixed-point unit

    [cache L1]
    level = 1
    size_kb = 32
    line_bytes = 128
    ways = 8
    latency = 2

    [memory]
    latency = 230
    counter = PM_DATA_FROM_LMEM

    [counter PM_RUN_CYC]
    description = Processor run cycles

    [formula IPC]
    expr = PM_RUN_INST_CMPL / PM_RUN_CYC

    [iproperties]
    default type:int | FXU | 2 | 1.0
    ins mulldo       | FXU | 5 | 1.43

``[iproperties]`` records assign unit usages, latency and inverse
throughput.  ``default type:<t>`` records apply to every ISA instruction
of coarse type ``<t>``; ``ins <mnemonic>`` records override or add
specific instructions.  Every ISA instruction must end up covered.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import DefinitionError
from repro.isa.instruction import InstructionType
from repro.isa.registry import ISA
from repro.march.caches import CacheGeometry, MemoryLevel
from repro.march.components import ChipGeometry, ClusterSpec, FunctionalUnit
from repro.march.counters import CounterDef, CounterFormula, check_counters_known
from repro.march.definition import MicroArchitecture
from repro.march.properties import (
    InstructionProperties,
    PropertyDatabase,
    parse_unit_usages,
)

_CHIP_KEYS = {"cores", "smt", "frequency_ghz", "dispatch_width", "issue_width"}


class _Section:
    """One parsed ``[kind name]`` section with its key/value pairs."""

    def __init__(self, kind: str, name: str, line_number: int) -> None:
        self.kind = kind
        self.name = name
        self.line_number = line_number
        self.pairs: dict[str, str] = {}
        self.records: list[tuple[int, str]] = []


def parse_march_text(
    text: str, isa: ISA, origin: str = "<string>"
) -> MicroArchitecture:
    """Parse micro-architecture definition text against an ISA.

    Raises:
        DefinitionError: On malformed syntax, unknown references or
            instructions left without properties.
    """
    name, sections = _split_sections(text, origin)
    chip = _build_chip(_single(sections, "chip", origin), origin)
    units = _build_units(sections)
    caches, memory = _build_hierarchy(sections, origin)
    counters = _build_counters(sections)
    formulas = _build_formulas(sections, counters, origin)
    if "IPC" not in formulas:
        raise DefinitionError(origin, 0, "missing required formula IPC")
    properties = _build_properties(
        _single(sections, "iproperties", origin), isa, units, origin
    )
    return MicroArchitecture(
        name=name,
        isa=isa,
        chip=chip,
        units=units,
        caches=caches,
        memory=memory,
        counters=counters,
        formulas=formulas,
        properties=properties,
        clusters=_build_clusters(sections, chip, origin),
    )


def parse_march_file(path: str | Path, isa: ISA) -> MicroArchitecture:
    """Parse a micro-architecture definition file from disk."""
    path = Path(path)
    with open(path) as handle:
        return parse_march_text(handle.read(), isa, origin=str(path))


# -- low-level line handling ----------------------------------------------------


def _strip_comment(line: str) -> str:
    index = line.find("#")
    return line if index == -1 else line[:index]


def _split_sections(
    text: str, origin: str
) -> tuple[str, list[_Section]]:
    name: str | None = None
    sections: list[_Section] = []
    current: _Section | None = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if name is None:
            if not line.startswith("march "):
                raise DefinitionError(
                    origin, line_number, "first record must be 'march <name>'"
                )
            name = line[len("march "):].strip()
            continue
        if line.startswith("[") and line.endswith("]"):
            kind, _, section_name = line[1:-1].strip().partition(" ")
            current = _Section(kind, section_name.strip(), line_number)
            sections.append(current)
            continue
        if current is None:
            raise DefinitionError(
                origin, line_number, "content before any section header"
            )
        if "|" in line:
            current.records.append((line_number, line))
        elif "=" in line:
            key, _, value = line.partition("=")
            current.pairs[key.strip()] = value.strip()
        else:
            raise DefinitionError(
                origin, line_number, f"cannot parse line {line!r}"
            )

    if name is None:
        raise DefinitionError(origin, 0, "empty micro-architecture definition")
    return name, sections


def _single(sections: list[_Section], kind: str, origin: str) -> _Section:
    found = [section for section in sections if section.kind == kind]
    if len(found) != 1:
        raise DefinitionError(
            origin, 0, f"expected exactly one [{kind}] section, got {len(found)}"
        )
    return found[0]


def _need(section: _Section, key: str, origin: str) -> str:
    try:
        return section.pairs[key]
    except KeyError:
        raise DefinitionError(
            origin,
            section.line_number,
            f"[{section.kind} {section.name}] missing key {key!r}",
        ) from None


# -- section builders ------------------------------------------------------------


def _build_chip(section: _Section, origin: str) -> ChipGeometry:
    missing = _CHIP_KEYS - set(section.pairs)
    if missing:
        raise DefinitionError(
            origin, section.line_number,
            f"[chip] missing keys: {sorted(missing)}",
        )
    return ChipGeometry(
        max_cores=int(section.pairs["cores"]),
        max_smt=int(section.pairs["smt"]),
        frequency_ghz=float(section.pairs["frequency_ghz"]),
        dispatch_width=int(section.pairs["dispatch_width"]),
        issue_width=int(section.pairs["issue_width"]),
        # Optional: low-power core classes declare a dynamic-energy
        # discount the hidden ground-truth model applies.
        energy_scale=float(section.pairs.get("energy_scale", "1.0")),
    )


def _build_clusters(
    sections: list[_Section], chip: ChipGeometry, origin: str
) -> tuple[ClusterSpec, ...]:
    """Optional ``[cluster <name>]`` blocks of a heterogeneous chip."""
    clusters = []
    for section in sections:
        if section.kind != "cluster":
            continue
        if not section.name:
            raise DefinitionError(
                origin, section.line_number, "[cluster] needs a name"
            )
        try:
            clusters.append(
                ClusterSpec(
                    name=section.name,
                    core_class=section.pairs.get("core_class", "self"),
                    cores=int(_need(section, "cores", origin)),
                    smt=int(_need(section, "smt", origin)),
                    p_state=section.pairs.get("p_state", "nominal"),
                )
            )
        except ValueError as exc:
            raise DefinitionError(
                origin, section.line_number, str(exc)
            ) from None
        spec = clusters[-1]
        if spec.core_class == "self" and (
            spec.cores > chip.max_cores or spec.smt > chip.max_smt
        ):
            raise DefinitionError(
                origin,
                section.line_number,
                f"cluster {spec.name!r} exceeds the defining chip's "
                f"{chip.max_cores} cores x SMT-{chip.max_smt}",
            )
    names = [cluster.name for cluster in clusters]
    if len(set(names)) != len(names):
        raise DefinitionError(
            origin, 0, f"duplicate cluster names: {names}"
        )
    return tuple(clusters)


def _build_units(sections: list[_Section]) -> dict[str, FunctionalUnit]:
    units = {}
    for section in sections:
        if section.kind != "unit":
            continue
        units[section.name] = FunctionalUnit(
            name=section.name,
            pipes=int(section.pairs.get("pipes", "1")),
            counter=section.pairs.get("counter", ""),
            description=section.pairs.get("description", ""),
        )
    return units


def _build_hierarchy(
    sections: list[_Section], origin: str
) -> tuple[tuple[CacheGeometry, ...], MemoryLevel]:
    caches = []
    for section in sections:
        if section.kind != "cache":
            continue
        caches.append(
            CacheGeometry(
                name=section.name,
                level=int(_need(section, "level", origin)),
                size_bytes=int(_need(section, "size_kb", origin)) * 1024,
                line_bytes=int(_need(section, "line_bytes", origin)),
                ways=int(_need(section, "ways", origin)),
                latency=int(_need(section, "latency", origin)),
                counter=section.pairs.get("counter", ""),
            )
        )
    caches.sort(key=lambda cache: cache.level)
    levels = [cache.level for cache in caches]
    if levels != list(range(1, len(caches) + 1)):
        raise DefinitionError(
            origin, 0, f"cache levels must be contiguous from 1, got {levels}"
        )
    memory_section = _single(sections, "memory", origin)
    memory = MemoryLevel(
        latency=int(_need(memory_section, "latency", origin)),
        counter=memory_section.pairs.get("counter", ""),
    )
    return tuple(caches), memory


def _build_counters(sections: list[_Section]) -> dict[str, CounterDef]:
    counters = {}
    for section in sections:
        if section.kind != "counter":
            continue
        counters[section.name] = CounterDef(
            name=section.name,
            description=section.pairs.get("description", ""),
        )
    return counters


def _build_formulas(
    sections: list[_Section],
    counters: dict[str, CounterDef],
    origin: str,
) -> dict[str, CounterFormula]:
    formulas = {}
    for section in sections:
        if section.kind != "formula":
            continue
        formula = CounterFormula(
            name=section.name,
            expression=_need(section, "expr", origin),
        )
        check_counters_known(formula, counters, origin)
        formulas[section.name] = formula
    return formulas


def _build_properties(
    section: _Section,
    isa: ISA,
    units: dict[str, FunctionalUnit],
    origin: str,
) -> PropertyDatabase:
    defaults: dict[InstructionType, tuple] = {}
    overrides: dict[str, tuple] = {}

    for line_number, record in section.records:
        fields = [field.strip() for field in record.split("|")]
        if len(fields) != 4:
            raise DefinitionError(
                origin, line_number,
                "iproperties records need 4 fields: "
                "selector | units | latency | inv_throughput",
            )
        selector, units_spec, latency_spec, thr_spec = fields
        try:
            usages = parse_unit_usages(units_spec)
            latency = float(latency_spec)
            inv_throughput = float(thr_spec)
        except ValueError as exc:
            raise DefinitionError(origin, line_number, str(exc)) from None

        for usage in usages:
            for unit in usage.units:
                if unit not in units:
                    raise DefinitionError(
                        origin, line_number, f"unknown unit {unit!r}"
                    )

        if selector.startswith("default type:"):
            type_name = selector[len("default type:"):].strip()
            try:
                itype = InstructionType(type_name)
            except ValueError:
                raise DefinitionError(
                    origin, line_number, f"unknown type {type_name!r}"
                ) from None
            defaults[itype] = (usages, latency, inv_throughput)
        elif selector.startswith("ins "):
            mnemonic = selector[len("ins "):].strip()
            if mnemonic not in isa:
                raise DefinitionError(
                    origin, line_number,
                    f"iproperties for unknown instruction {mnemonic!r}",
                )
            overrides[mnemonic] = (usages, latency, inv_throughput)
        else:
            raise DefinitionError(
                origin, line_number, f"bad iproperties selector {selector!r}"
            )

    database = PropertyDatabase()
    uncovered = []
    for instruction in isa:
        record = overrides.get(instruction.mnemonic)
        if record is None:
            record = defaults.get(instruction.itype)
        if record is None:
            uncovered.append(instruction.mnemonic)
            continue
        usages, latency, inv_throughput = record
        database.add(
            InstructionProperties(
                mnemonic=instruction.mnemonic,
                usages=usages,
                latency=latency,
                inv_throughput=inv_throughput,
            )
        )
    if uncovered:
        raise DefinitionError(
            origin, 0,
            f"instructions without properties: {uncovered[:8]}"
            + ("..." if len(uncovered) > 8 else ""),
        )
    return database
