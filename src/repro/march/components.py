"""Functional units and chip-level geometry."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FunctionalUnit:
    """One execution unit of a core (FXU, LSU, VSU, ...).

    Attributes:
        name: Short unit name used throughout the framework.
        pipes: Number of identical execution pipes in the unit.
        counter: Name of the performance counter that counts operations
            finished by this unit.
        description: Human-readable description.
    """

    name: str
    pipes: int
    counter: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.pipes < 1:
            raise ValueError(f"unit {self.name}: pipes must be >= 1")

    def __str__(self) -> str:
        return f"{self.name}({self.pipes} pipes)"


@dataclass(frozen=True)
class ChipGeometry:
    """Chip-level configuration limits and clocking.

    Attributes:
        max_cores: Cores physically present on the chip.
        max_smt: Hardware threads per core.
        frequency_ghz: Nominal clock frequency.
        dispatch_width: Instructions dispatched per cycle per core.
        issue_width: Instructions issued per cycle per core.
        energy_scale: Multiplier the hidden ground-truth model applies
            to every dynamic energy of this core class (1.0 for the
            reference big core; low-power LITTLE classes declare < 1).
            ``repr=False`` keeps the dataclass repr -- and therefore
            the content digests of every pre-existing definition file,
            none of which set the key -- byte-identical;
            :meth:`MicroArchitecture.content_digest` folds a non-default
            scale in explicitly instead.
    """

    max_cores: int
    max_smt: int
    frequency_ghz: float
    dispatch_width: int
    issue_width: int
    energy_scale: float = field(default=1.0, repr=False)

    def __post_init__(self) -> None:
        if self.max_cores < 1 or self.max_smt < 1:
            raise ValueError("chip must have at least one core and thread")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.dispatch_width < 1 or self.issue_width < 1:
            raise ValueError("dispatch and issue widths must be >= 1")
        if self.energy_scale <= 0:
            raise ValueError("energy scale must be positive")

    @property
    def max_hardware_threads(self) -> int:
        """Total hardware thread contexts on the chip."""
        return self.max_cores * self.max_smt

    @property
    def cycles_per_second(self) -> float:
        return self.frequency_ghz * 1e9

    def smt_modes(self) -> tuple[int, ...]:
        """Supported SMT ways (powers of two up to ``max_smt``)."""
        modes = []
        way = 1
        while way <= self.max_smt:
            modes.append(way)
            way *= 2
        return tuple(modes)


@dataclass(frozen=True)
class ClusterSpec:
    """One ``[cluster <name>]`` block of a heterogeneous definition file.

    A definition file may describe a multi-cluster chip declaratively:
    each block names a core cluster, the core class implementing it
    (another registered architecture, or ``self`` for the defining
    file's own core), its core count, SMT level and default operating
    point.  :func:`repro.sim.topology.topology_from_arch` turns the
    spec tuple into a runnable
    :class:`~repro.sim.topology.ChipTopology`.

    Attributes:
        name: Cluster name (``big``, ``little``); enters topology labels.
        core_class: Architecture name of the core class, or ``self``.
        cores: Cores in the cluster.
        smt: Hardware threads per cluster core.
        p_state: Standard-ladder operating-point name (``nominal`` by
            default).
    """

    name: str
    core_class: str
    cores: int
    smt: int
    p_state: str = "nominal"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cluster needs a name")
        if self.cores < 1:
            raise ValueError(f"cluster {self.name}: cores must be >= 1")
        if self.smt < 1:
            raise ValueError(f"cluster {self.name}: smt must be >= 1")
