"""Functional units and chip-level geometry."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FunctionalUnit:
    """One execution unit of a core (FXU, LSU, VSU, ...).

    Attributes:
        name: Short unit name used throughout the framework.
        pipes: Number of identical execution pipes in the unit.
        counter: Name of the performance counter that counts operations
            finished by this unit.
        description: Human-readable description.
    """

    name: str
    pipes: int
    counter: str
    description: str = ""

    def __post_init__(self) -> None:
        if self.pipes < 1:
            raise ValueError(f"unit {self.name}: pipes must be >= 1")

    def __str__(self) -> str:
        return f"{self.name}({self.pipes} pipes)"


@dataclass(frozen=True)
class ChipGeometry:
    """Chip-level configuration limits and clocking.

    Attributes:
        max_cores: Cores physically present on the chip.
        max_smt: Hardware threads per core.
        frequency_ghz: Nominal clock frequency.
        dispatch_width: Instructions dispatched per cycle per core.
        issue_width: Instructions issued per cycle per core.
    """

    max_cores: int
    max_smt: int
    frequency_ghz: float
    dispatch_width: int
    issue_width: int

    def __post_init__(self) -> None:
        if self.max_cores < 1 or self.max_smt < 1:
            raise ValueError("chip must have at least one core and thread")
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.dispatch_width < 1 or self.issue_width < 1:
            raise ValueError("dispatch and issue widths must be >= 1")

    @property
    def max_hardware_threads(self) -> int:
        """Total hardware thread contexts on the chip."""
        return self.max_cores * self.max_smt

    @property
    def cycles_per_second(self) -> float:
        return self.frequency_ghz * 1e9

    def smt_modes(self) -> tuple[int, ...]:
        """Supported SMT ways (powers of two up to ``max_smt``)."""
        modes = []
        way = 1
        while way <= self.max_smt:
            modes.append(way)
            way *= 2
        return tuple(modes)
