"""Analytical set-associative cache model (paper section 2.1.3).

The model statically constructs a cyclic sequence of memory addresses
whose steady-state hit distribution across the cache hierarchy matches
a requested target -- with *no* design-space exploration.  It rests on
the two observations of the paper:

1. With the address-field information of the micro-architecture
   definition (Figure 3b) one can control which set an access lands in
   at every level.  Because all levels share the line size, the set
   fields nest: every line of one L2 set maps to a single L1 set, and
   every line of one L3 set maps to a single L2 set.

2. In an endless loop, a round-robin walk over ``L`` distinct lines
   mapping to one set of a ``w``-way cache always hits in steady state
   when ``L <= w`` and always misses when the reuse distance stays
   above ``w`` (we use ``L >= 2w``, which keeps the distance ``>= w``
   even across the loop-boundary rewind).

A level-``k``-hitting stream therefore uses lines that overflow the
associativity of every earlier level while staying within the
associativity of level ``k``; main-memory streams overflow every
level.  Streams for different levels are assigned *disjoint* L1 sets,
which -- by field nesting -- makes them disjoint at every level.  Line
tags are drawn randomly (not sequentially) so that hardware stride
prefetchers cannot convert intended misses into hits, as the paper
prescribes.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.errors import CacheModelError
from repro.march.caches import CacheGeometry, MemoryLevel
from repro.march.definition import MicroArchitecture

#: Default base for generated addresses: a 256 MiB-aligned heap region.
DEFAULT_BASE_ADDRESS = 0x1000_0000

_WEIGHT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class MemoryAccessPlan:
    """A statically planned cyclic address sequence.

    Attributes:
        level_names: Hierarchy level names, L1 first, ``MEM`` last.
        weights: Requested per-level hit fractions.
        slots: One byte address per memory slot, in loop-body order.
            Executing the loop repeatedly replays this cycle.
        lines: Per level, the distinct line addresses its stream uses.
        predicted: Hit fractions the plan actually delivers (requested
            weights after integer slot rounding).
    """

    level_names: tuple[str, ...]
    weights: dict[str, float]
    slots: tuple[int, ...]
    slot_levels: tuple[str, ...]
    lines: dict[str, tuple[int, ...]]
    predicted: dict[str, float]

    @property
    def slot_count(self) -> int:
        return len(self.slots)

    def footprint_bytes(self, line_bytes: int) -> int:
        """Total distinct bytes touched by the plan."""
        distinct = {address for pool in self.lines.values() for address in pool}
        return len(distinct) * line_bytes


def _round_to_total(weights: list[float], total: int) -> list[int]:
    """Largest-remainder rounding of ``weights * total`` to integers."""
    raw = [weight * total for weight in weights]
    counts = [int(value) for value in raw]
    remainder = total - sum(counts)
    order = sorted(
        range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
    )
    for index in order[:remainder]:
        counts[index] += 1
    return counts


class SetAssociativeCacheModel:
    """Plans address streams for a specific cache hierarchy."""

    def __init__(
        self,
        caches: tuple[CacheGeometry, ...],
        memory: MemoryLevel,
        base_address: int = DEFAULT_BASE_ADDRESS,
    ) -> None:
        if not caches:
            raise CacheModelError("hierarchy needs at least one cache level")
        line_sizes = {cache.line_bytes for cache in caches}
        if len(line_sizes) != 1:
            raise CacheModelError(
                "the analytical model requires a uniform line size; "
                f"got {sorted(line_sizes)}"
            )
        for shallower, deeper in zip(caches, caches[1:]):
            if deeper.sets % shallower.sets != 0:
                raise CacheModelError(
                    f"{deeper.name} set count must be a multiple of "
                    f"{shallower.name}'s for field nesting"
                )
        self.caches = caches
        self.memory = memory
        self.base_address = base_address

    @classmethod
    def for_architecture(
        cls,
        arch: MicroArchitecture,
        base_address: int = DEFAULT_BASE_ADDRESS,
    ) -> "SetAssociativeCacheModel":
        return cls(arch.caches, arch.memory, base_address=base_address)

    # -- public API --------------------------------------------------------------

    @property
    def level_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.caches) + (self.memory.name,)

    def minimum_lines(self, level: str) -> int:
        """Distinct lines a stream hitting ``level`` must cycle through."""
        index = self._level_index(level)
        if index == 0:
            return 1
        # Overflow the largest earlier-level associativity by 2x so the
        # reuse distance stays above it even across the loop rewind.
        return 2 * max(cache.ways for cache in self.caches[:index])

    def plan(
        self,
        weights: Mapping[str, float],
        slot_count: int,
        seed: int = 0,
    ) -> MemoryAccessPlan:
        """Build the cyclic address plan for a target hit distribution.

        Args:
            weights: Per-level hit fractions; keys from
                :attr:`level_names`; must be non-negative and sum to 1.
            slot_count: Number of memory slots in the loop body.
            seed: Seed for randomized tag selection and interleaving.

        Raises:
            CacheModelError: If the weights are invalid or ``slot_count``
                is too small to satisfy the per-stream line minimums.
        """
        normalized = self._validate_weights(weights)
        if slot_count < 1:
            raise CacheModelError("slot_count must be >= 1")

        names = self.level_names
        ordered_weights = [normalized.get(name, 0.0) for name in names]
        counts = _round_to_total(ordered_weights, slot_count)

        rng = random.Random(seed)
        groups = self._set_groups()

        lines: dict[str, tuple[int, ...]] = {}
        stream_slots: dict[str, list[int]] = {}
        for name, count in zip(names, counts):
            if count == 0:
                continue
            minimum = self.minimum_lines(name)
            if count < minimum:
                raise CacheModelError(
                    f"{name} stream received {count} slots but needs at "
                    f"least {minimum}; raise the memory instruction count "
                    f"or the {name} weight"
                )
            pool = self._build_line_pool(name, groups[name], count, rng)
            lines[name] = pool
            stream_slots[name] = [
                pool[i % len(pool)] for i in range(count)
            ]

        slots, slot_levels = self._interleave(stream_slots, rng)
        predicted = {
            name: (len(stream_slots[name]) / slot_count if name in stream_slots else 0.0)
            for name in names
        }
        return MemoryAccessPlan(
            level_names=names,
            weights=dict(normalized),
            slots=tuple(slots),
            slot_levels=tuple(slot_levels),
            lines=lines,
            predicted=predicted,
        )

    # -- internals ------------------------------------------------------------------

    def _level_index(self, level: str) -> int:
        names = self.level_names
        try:
            return names.index(level)
        except ValueError:
            raise CacheModelError(
                f"unknown level {level!r}; levels: {', '.join(names)}"
            ) from None

    def _validate_weights(self, weights: Mapping[str, float]) -> dict[str, float]:
        names = set(self.level_names)
        unknown = set(weights) - names
        if unknown:
            raise CacheModelError(f"unknown levels in weights: {sorted(unknown)}")
        if any(value < 0 for value in weights.values()):
            raise CacheModelError("weights must be non-negative")
        total = sum(weights.values())
        if abs(total - 1.0) > _WEIGHT_TOLERANCE:
            raise CacheModelError(f"weights must sum to 1, got {total:g}")
        return {name: float(value) for name, value in weights.items() if value > 0}

    def _set_groups(self) -> dict[str, range]:
        """Partition the L1 sets into one disjoint group per level.

        Streams draw their L1 home sets from their own group, which --
        because the set fields nest -- keeps streams disjoint at every
        level of the hierarchy.
        """
        names = self.level_names
        l1_sets = self.caches[0].sets
        group_size = l1_sets // len(names)
        if group_size < 1:
            raise CacheModelError(
                f"L1 has {l1_sets} sets, cannot carve {len(names)} "
                "disjoint stream groups"
            )
        return {
            name: range(index * group_size, (index + 1) * group_size)
            for index, name in enumerate(names)
        }

    def _random_tags(self, count: int, tag_bits: int, rng: random.Random) -> list[int]:
        """Distinct, randomly spread tags (defeats stride prefetchers)."""
        space = 1 << min(tag_bits, 20)
        if count > space:
            raise CacheModelError("tag space exhausted")
        return rng.sample(range(space), count)

    #: Lines per set used by L1-hitting streams: low enough that even
    #: the maximum SMT way sharing one L1 leaves the sets un-thrashed.
    _L1_LINES_PER_SET = 2

    def _build_line_pool(
        self, level: str, group: range, slot_count: int, rng: random.Random
    ) -> tuple[int, ...]:
        """Distinct line addresses for a stream hitting ``level``.

        L1 streams spread at most :data:`_L1_LINES_PER_SET` lines per
        set across their whole group.  A level-``k`` stream (k > 1)
        walks an alias chain -- one home set per earlier level, all
        nested -- and then spreads ``2 * max(earlier ways)`` lines over
        level-``k`` sets aliasing the level-``k-1`` home, overflowing
        every earlier level while staying at associativity in level
        ``k``.  Main-memory pools overflow a single last-level set.
        """
        index = self._level_index(level)
        l1 = self.caches[0]

        if index == 0:
            pool_size = max(1, min(self._L1_LINES_PER_SET * len(group), slot_count))
            pool = []
            tags = self._random_tags(pool_size, 16, rng)
            for position, tag in enumerate(tags):
                home = group[position % len(group)]
                pool.append(self.base_address + l1.fields.compose(tag, home))
            return tuple(pool)

        return self._deep_pool(level, index, group, slot_count, rng)

    def _deep_pool(
        self,
        level: str,
        index: int,
        group: range,
        slot_count: int,
        rng: random.Random,
    ) -> tuple[int, ...]:
        """Line pool for a level-``k`` (k > 1) or main-memory stream.

        When the target level can hold one distinct line per slot, the
        pool simply *is* ``slot_count`` distinct lines: with no reuse at
        all, every access provably misses the levels above (and, for
        the memory stream, every level).  Only when the slot count
        exceeds the level's aliased capacity does the pool fall back to
        a cyclic size ``L`` chosen so the loop-boundary rewind keeps
        every reuse distance above the earlier levels' associativity
        (``slot_count % L == 0`` or ``> ways``).
        """
        earlier_ways = max(cache.ways for cache in self.caches[:index]) \
            if index > 0 else max(cache.ways for cache in self.caches)
        min_per_home = 2 * earlier_ways

        if level == self.memory.name:
            home_capacity = 1 << 18  # tag space; effectively unbounded
        else:
            cache = self.caches[index]
            previous = self.caches[index - 1]
            aliases = cache.sets // previous.sets
            home_capacity = aliases * cache.ways
        total_capacity = home_capacity * len(group)

        if slot_count <= total_capacity:
            pool_size = slot_count
        else:
            pool_size = self._residue_safe_size(
                slot_count, total_capacity, earlier_ways, level
            )

        homes_needed = max(1, -(-pool_size // home_capacity))
        if pool_size // homes_needed < min_per_home:
            homes_needed = max(1, pool_size // min_per_home)
        homes_needed = min(homes_needed, len(group))
        l1_homes = rng.sample(list(group), homes_needed)

        share, extra = divmod(pool_size, homes_needed)
        pool: list[int] = []
        for position, l1_home in enumerate(l1_homes):
            lines_here = share + (1 if position < extra else 0)
            pool.extend(
                self._home_lines(level, index, l1_home, lines_here, rng)
            )
        return tuple(pool)

    def _residue_safe_size(
        self, slot_count: int, capacity: int, earlier_ways: int, level: str
    ) -> int:
        """Largest cyclic pool size whose loop rewind cannot cause hits."""
        size = (capacity // 8) * 8
        while size >= 2 * earlier_ways:
            residue = slot_count % size
            if residue == 0 or residue > earlier_ways:
                return size
            size -= 8
        raise CacheModelError(
            f"cannot find a rewind-safe pool size for the {level} stream "
            f"({slot_count} slots, capacity {capacity})"
        )

    def _home_lines(
        self,
        level: str,
        index: int,
        l1_home: int,
        count: int,
        rng: random.Random,
    ) -> list[int]:
        """``count`` distinct lines aliasing one L1 home set."""
        if level == self.memory.name:
            last = self.caches[-1]
            home = self._alias_chain(len(self.caches) - 1, l1_home, rng)
            tags = self._random_tags(count, 20, rng)
            return [
                self.base_address + last.fields.compose(tag, home)
                for tag in tags
            ]
        cache = self.caches[index]
        previous = self.caches[index - 1]
        sets_needed = -(-count // cache.ways)
        previous_home = self._alias_chain(index - 1, l1_home, rng)
        chosen_sets = self._alias_sets(
            cache, previous, previous_home, sets_needed, rng
        )
        lines: list[int] = []
        remaining = count
        for target_set in chosen_sets:
            here = min(cache.ways, remaining)
            for tag in self._random_tags(here, 18, rng):
                lines.append(
                    self.base_address + cache.fields.compose(tag, target_set)
                )
            remaining -= here
        return lines

    def _alias_chain(
        self, depth: int, l1_home: int, rng: random.Random
    ) -> int:
        """Walk nested home sets from L1 down to cache index ``depth``.

        Returns the home set index at ``self.caches[depth]`` such that
        all its lines alias onto the chosen homes at every level above.
        """
        home = l1_home
        for index in range(1, depth + 1):
            home = self._alias_sets(
                self.caches[index], self.caches[index - 1], home, 1, rng
            )[0]
        return home

    def _alias_sets(
        self,
        cache: CacheGeometry,
        previous: CacheGeometry,
        previous_home: int,
        count: int,
        rng: random.Random,
    ) -> list[int]:
        """Sets of ``cache`` whose lines map onto ``previous_home`` above."""
        aliases = cache.sets // previous.sets
        if count > aliases:
            raise CacheModelError(
                f"{cache.name} has only {aliases} sets aliasing one "
                f"{previous.name} set, need {count}"
            )
        offsets = rng.sample(range(aliases), count)
        return [previous_home + offset * previous.sets for offset in offsets]

    def _interleave(
        self,
        stream_slots: dict[str, list[int]],
        rng: random.Random,
    ) -> tuple[list[int], list[str]]:
        """Randomized interleave preserving each stream's internal order.

        Per-set LRU behaviour only depends on the access order *within*
        a set, and streams never share sets, so any interleaving
        preserves the planned hit/miss behaviour while the randomness
        breaks global stride patterns.  Returns the address per slot
        and, parallel to it, the level each slot is planned to hit.
        """
        tickets = []
        for name, slots in stream_slots.items():
            tickets.extend([name] * len(slots))
        rng.shuffle(tickets)
        cursors = {name: 0 for name in stream_slots}
        addresses = []
        for name in tickets:
            addresses.append(stream_slots[name][cursors[name]])
            cursors[name] += 1
        return addresses, tickets
