"""Per-instruction dynamic properties.

This is the micro-architecture side of an instruction: which functional
units it stresses (and how many operations it injects into each), its
execution latency, its inverse throughput (pipe-occupancy cycles), and
-- once the bootstrap of section 2.1.2 has run -- its measured EPI and
average sustained power.

The unit-usage model distinguishes *alternatives* from *composition*:

* ``FXU/LSU:1`` -- one operation that can execute on either unit
  (POWER7's LSU executes simple fixed-point ops), and
* ``LSU:1,FXU:2`` -- a load that also injects two fixed-point ops
  (sign extension plus base-register update, e.g. ``lhaux``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace

from repro.errors import MicroProbeError


@dataclass(frozen=True)
class UnitUsage:
    """Operations injected into one unit (or one of several alternatives).

    Attributes:
        units: Candidate units, in preference order.  A single-element
            tuple means the operation is tied to that unit.
        ops: Number of operations injected per instruction instance.
    """

    units: tuple[str, ...]
    ops: float = 1.0

    def __post_init__(self) -> None:
        if not self.units:
            raise ValueError("unit usage needs at least one unit")
        if self.ops <= 0:
            raise ValueError("unit usage ops must be positive")

    @property
    def is_flexible(self) -> bool:
        """Whether the operation may execute on more than one unit."""
        return len(self.units) > 1

    def __str__(self) -> str:
        spec = "/".join(self.units)
        if self.ops != 1:
            spec += f":{self.ops:g}"
        return spec


def parse_unit_usages(spec: str) -> tuple[UnitUsage, ...]:
    """Parse a usages spec like ``LSU:1,FXU:2`` or ``FXU/LSU`` or ``-``."""
    spec = spec.strip()
    if spec == "-":
        return ()
    usages = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        name_part, _, ops_part = chunk.partition(":")
        units = tuple(unit.strip() for unit in name_part.split("/"))
        if any(not unit for unit in units):
            raise ValueError(f"bad unit usage spec {chunk!r}")
        ops = float(ops_part) if ops_part else 1.0
        usages.append(UnitUsage(units=units, ops=ops))
    return tuple(usages)


@dataclass(frozen=True)
class InstructionProperties:
    """Micro-architecture properties of one instruction.

    Attributes:
        mnemonic: Instruction mnemonic (matches the ISA registry).
        usages: Unit usages (empty for nops).
        latency: Result latency in cycles.
        inv_throughput: Pipe-occupancy in cycles per operation; sustained
            single-instruction IPC is ``pipes(unit) / inv_throughput``.
        epi: Energy per instruction in nanojoules, measured by the
            bootstrap process (``None`` until bootstrapped).
        avg_power: Average sustained power in watts while running an
            endless loop of this instruction (``None`` until
            bootstrapped).
    """

    mnemonic: str
    usages: tuple[UnitUsage, ...]
    latency: float
    inv_throughput: float
    epi: float | None = None
    avg_power: float | None = None

    def __post_init__(self) -> None:
        if self.latency <= 0:
            raise ValueError(f"{self.mnemonic}: latency must be positive")
        if self.inv_throughput <= 0:
            raise ValueError(f"{self.mnemonic}: inv_throughput must be positive")

    def stresses(self, unit: str) -> bool:
        """Whether this instruction can inject work into ``unit``."""
        return any(unit in usage.units for usage in self.usages)

    @property
    def units(self) -> tuple[str, ...]:
        """All units this instruction may stress, in usage order."""
        seen: dict[str, None] = {}
        for usage in self.usages:
            for unit in usage.units:
                seen.setdefault(unit)
        return tuple(seen)

    @property
    def total_ops(self) -> float:
        """Total micro-operations injected per instance."""
        return sum(usage.ops for usage in self.usages)

    def with_bootstrap(
        self, epi: float, avg_power: float
    ) -> "InstructionProperties":
        """Copy with bootstrapped energy metrics filled in."""
        return replace(self, epi=epi, avg_power=avg_power)


class PropertyDatabase:
    """Mapping of mnemonic to :class:`InstructionProperties`.

    Mutable so the bootstrap process can fill in measured EPI/power.
    """

    def __init__(
        self, properties: Iterable[InstructionProperties] = ()
    ) -> None:
        self._properties: dict[str, InstructionProperties] = {}
        for prop in properties:
            self.add(prop)

    def __contains__(self, mnemonic: str) -> bool:
        return mnemonic in self._properties

    def __iter__(self) -> Iterator[InstructionProperties]:
        return iter(self._properties.values())

    def __len__(self) -> int:
        return len(self._properties)

    def add(self, prop: InstructionProperties) -> None:
        self._properties[prop.mnemonic] = prop

    def get(self, mnemonic: str) -> InstructionProperties:
        try:
            return self._properties[mnemonic]
        except KeyError:
            raise MicroProbeError(
                f"no micro-architecture properties for {mnemonic!r}"
            ) from None

    def update(self, prop: InstructionProperties) -> None:
        """Replace an existing entry (bootstrap write-back)."""
        if prop.mnemonic not in self._properties:
            raise MicroProbeError(
                f"cannot update unknown instruction {prop.mnemonic!r}"
            )
        self._properties[prop.mnemonic] = prop

    def stressing(self, unit: str) -> list[InstructionProperties]:
        """All instructions that can stress ``unit``."""
        return [prop for prop in self if prop.stresses(unit)]

    @property
    def bootstrapped(self) -> bool:
        """Whether every entry carries measured EPI data."""
        return all(prop.epi is not None for prop in self)
