"""Stable content hashing shared by the identity systems.

Kernel digests, workload fingerprints, architecture content digests
and store cell keys all reduce canonical text to a deterministic,
process-stable value.  One implementation keeps them from drifting:
changing the digest size or encoding here changes *every* identity
system together, never one of them silently.

(`repro.sim.sensors.stable_seed` is the separate, CRC32-based helper
for 32-bit *noise seeds*; these are full-width content identities.)
"""

from __future__ import annotations

import hashlib


def content_hash(text: str, size: int = 8) -> int:
    """Deterministic integer digest of canonical content text."""
    return int.from_bytes(
        hashlib.blake2b(text.encode(), digest_size=size).digest(), "big"
    )


def content_hex(text: str, size: int = 16) -> str:
    """Deterministic hex digest of canonical content text (store keys)."""
    return hashlib.blake2b(text.encode(), digest_size=size).hexdigest()
