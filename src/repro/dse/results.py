"""Search bookkeeping: evaluations, results, convergence traces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dse.space import DesignPoint
from repro.errors import SearchError


@dataclass(frozen=True)
class Evaluation:
    """One evaluated design point."""

    point: DesignPoint
    score: float


@dataclass
class SearchResult:
    """Outcome of a design-space exploration (maximization)."""

    evaluations: list[Evaluation] = field(default_factory=list)

    def record(self, point: DesignPoint, score: float) -> Evaluation:
        evaluation = Evaluation(point=dict(point), score=score)
        self.evaluations.append(evaluation)
        return evaluation

    @property
    def count(self) -> int:
        return len(self.evaluations)

    @property
    def best(self) -> Evaluation:
        if not self.evaluations:
            raise SearchError("no evaluations recorded")
        return max(self.evaluations, key=lambda evaluation: evaluation.score)

    @property
    def worst(self) -> Evaluation:
        if not self.evaluations:
            raise SearchError("no evaluations recorded")
        return min(self.evaluations, key=lambda evaluation: evaluation.score)

    def top(self, count: int) -> list[Evaluation]:
        """The ``count`` best evaluations, descending."""
        ranked = sorted(
            self.evaluations, key=lambda e: e.score, reverse=True
        )
        return ranked[:count]

    def convergence(self) -> list[float]:
        """Best-so-far score after each evaluation."""
        trace: list[float] = []
        best = float("-inf")
        for evaluation in self.evaluations:
            best = max(best, evaluation.score)
            trace.append(best)
        return trace
