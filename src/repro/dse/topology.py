"""Topology design spaces: the chip itself as the search variable.

The paper's DSE searches pick *instructions*; a heterogeneous chip
opens a second axis: how many big vs little cores, and which operating
point each cluster runs at.  This module expresses that axis in the
standard :class:`~repro.dse.space.DesignSpace` vocabulary so the
existing drivers (exhaustive, genetic, guided) explore chip shapes
with no changes:

* :func:`topology_space` -- cluster *ratio* (big:little core split at a
  fixed core budget) and per-cluster p-states as categorical
  dimensions;
* :func:`topology_from_point` -- design point -> runnable
  :class:`~repro.sim.topology.ChipTopology`;
* :class:`TopologyEvaluator` -- measures one fixed workload on the
  point's topology and scores it with a big-vs-little
  energy-efficiency objective (all counter-only, preserving the
  modeling code's post-silicon blindness).
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Mapping, Sequence
from typing import TYPE_CHECKING

from repro.dse.space import DesignPoint, DesignSpace, Dimension
from repro.errors import SearchError
from repro.exec.executors import default_executor
from repro.exec.plan import ExperimentPlan, workload_fingerprint
from repro.measure.measurement import Measurement
from repro.sim.machine import Machine
from repro.sim.topology import (
    DEFAULT_CORE_CLASSES,
    ChipTopology,
    CoreCluster,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.executors import _ExecutorBase

logger = logging.getLogger("repro.dse")

#: Reduces a topology measurement to the score being maximized.
TopologyObjective = Callable[[Measurement], float]


# -- counter-only objectives -----------------------------------------------------


def chip_instructions(measurement: Measurement) -> float:
    """Committed instructions across every hardware thread."""
    return sum(
        counters.get("PM_RUN_INST_CMPL", 0.0)
        for counters in measurement.thread_counters
    )


def energy_per_instruction_nj(measurement: Measurement) -> float:
    """Chip energy per committed instruction, nanojoules.

    The sensor-level EPI a cross-architecture campaign compares big
    and little shapes on: window energy over total committed work.
    Returns ``inf`` for a window that committed nothing.
    """
    instructions = chip_instructions(measurement)
    if not instructions:
        return float("inf")
    return (
        measurement.mean_power * measurement.duration / instructions * 1e9
    )


def efficiency_objective(measurement: Measurement) -> float:
    """Score = committed instructions per joule (maximize)."""
    energy = measurement.mean_power * measurement.duration
    if not energy:
        return 0.0
    return chip_instructions(measurement) / energy


def epi_objective(measurement: Measurement) -> float:
    """Score = negated chip EPI in nJ (maximizing minimizes EPI)."""
    return -energy_per_instruction_nj(measurement)


def throughput_objective(measurement: Measurement) -> float:
    """Score = committed instructions per second (ignore energy)."""
    return chip_instructions(measurement) / measurement.duration


# -- the space -------------------------------------------------------------------


def ratio_values(
    core_budget: int = 8, step: int = 2
) -> tuple[tuple[int, int], ...]:
    """``(big, little)`` splits of a core budget, big-first."""
    if core_budget < 1 or step < 1:
        raise SearchError("core budget and step must be >= 1")
    return tuple(
        (big, core_budget - big)
        for big in range(core_budget, -1, -step)
    )


def topology_space(
    core_budget: int = 8,
    step: int = 2,
    p_states: Sequence[str] = ("nominal", "p2"),
    smt_modes: Sequence[int] = (1,),
) -> DesignSpace:
    """Cluster count/ratio and per-cluster DVFS as search dimensions.

    Dimensions: ``ratio`` (the big:little core split, one dimension so
    the all-zero chip never arises), ``big_pstate`` / ``little_pstate``
    (each cluster's DVFS domain) and ``smt`` (chip-wide SMT way of
    both clusters).  The cross product is the space the exhaustive and
    genetic drivers walk.
    """
    return DesignSpace(
        [
            Dimension("ratio", ratio_values(core_budget, step)),
            Dimension("big_pstate", tuple(p_states)),
            Dimension("little_pstate", tuple(p_states)),
            Dimension("smt", tuple(smt_modes)),
        ]
    )


def topology_from_point(
    point: DesignPoint,
    core_classes: Mapping[str, str | None] | None = None,
) -> ChipTopology:
    """Build the design point's :class:`ChipTopology`.

    Empty clusters are dropped (an ``(8, 0)`` ratio is a pure-big
    chip); their p-state dimension is simply inert for such points.
    """
    from repro.sim.pstate import get_pstate

    if core_classes is None:
        core_classes = DEFAULT_CORE_CLASSES
    big, little = point["ratio"]
    smt = int(point.get("smt", 1))
    clusters = []
    if big:
        clusters.append(
            CoreCluster(
                name="big",
                cores=big,
                smt=smt,
                p_state=get_pstate(point["big_pstate"]),
                core_class=core_classes.get("big"),
            )
        )
    if little:
        clusters.append(
            CoreCluster(
                name="little",
                cores=little,
                smt=smt,
                p_state=get_pstate(point["little_pstate"]),
                core_class=core_classes.get("little"),
            )
        )
    if not clusters:
        raise SearchError(f"design point {point!r} enables no cores")
    return ChipTopology(clusters=tuple(clusters))


class TopologyEvaluator:
    """Measure one fixed workload across candidate chip shapes.

    The dual of :class:`~repro.dse.evaluator.MeasurementEvaluator`:
    there the configuration is fixed and the point picks the kernel;
    here the workload is fixed and the point picks the topology.
    Batches evaluate as one multi-topology experiment plan, so the
    vectorized measurement plane sees the whole population in one
    pass and a store-backed executor serves revisited shapes from
    disk.
    """

    def __init__(
        self,
        workload,
        machine: Machine,
        objective: TopologyObjective = efficiency_objective,
        duration: float = 10.0,
        executor: "_ExecutorBase | None" = None,
        core_classes: Mapping[str, str | None] | None = None,
    ) -> None:
        self.workload = workload
        self.machine = machine
        self.objective = objective
        self.duration = duration
        self.executor = (
            executor if executor is not None else default_executor(machine)
        )
        self.core_classes = core_classes
        self.measurements = 0

    @property
    def cache_context(self) -> tuple:
        """Identity a score depends on besides the point itself."""
        return (workload_fingerprint(self.workload), self.duration)

    def __call__(self, point: DesignPoint) -> float:
        return self.evaluate_many([point])[0]

    def evaluate_many(self, points: Sequence[DesignPoint]) -> list[float]:
        """Score a population of chip shapes through the engine."""
        topologies = [
            topology_from_point(point, self.core_classes)
            for point in points
        ]
        plan = ExperimentPlan.cross(
            [self.workload], topologies, duration=self.duration
        )
        logger.debug(
            "evaluating %d topology points (%d unique cells)",
            len(points),
            plan.size,
        )
        measurements = self.executor.run(plan)
        self.measurements += len(points)
        return [self.objective(measurement) for measurement in measurements]
