"""Design-space abstraction: named categorical dimensions.

A design point assigns one value to every dimension; micro-benchmark
searches use dimensions like "instruction in slot 3" or "dependency
distance mode".  Values may be any hashable object (mnemonics,
numbers, mode strings), which keeps the abstraction honest for both
abstract workload models and the paper's instruction-level spaces.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterator, Sequence
from dataclasses import dataclass

from repro.errors import SearchError

#: A fully specified candidate: dimension name -> chosen value.
DesignPoint = dict[str, Hashable]


@dataclass(frozen=True)
class Dimension:
    """One categorical axis of the design space."""

    name: str
    values: tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SearchError(f"dimension {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise SearchError(f"dimension {self.name!r} has duplicate values")

    def __len__(self) -> int:
        return len(self.values)


class DesignSpace:
    """The cartesian product of a list of dimensions."""

    def __init__(self, dimensions: Sequence[Dimension]) -> None:
        if not dimensions:
            raise SearchError("design space needs at least one dimension")
        names = [dimension.name for dimension in dimensions]
        if len(set(names)) != len(names):
            raise SearchError("dimension names must be unique")
        self.dimensions = tuple(dimensions)

    @classmethod
    def from_slots(
        cls, slot_count: int, values: Sequence[Hashable], prefix: str = "slot"
    ) -> "DesignSpace":
        """A space of ``slot_count`` positions drawing from ``values``.

        This is the Section 6 space: which instruction occupies each of
        the stressmark's sequence slots.
        """
        return cls(
            [
                Dimension(f"{prefix}{index}", tuple(values))
                for index in range(slot_count)
            ]
        )

    @property
    def size(self) -> int:
        """Total number of design points."""
        return math.prod(len(dimension) for dimension in self.dimensions)

    def __iter__(self) -> Iterator[DesignPoint]:
        return self.points()

    def points(self) -> Iterator[DesignPoint]:
        """Enumerate every design point (odometer order)."""
        cursors = [0] * len(self.dimensions)
        while True:
            yield {
                dimension.name: dimension.values[cursor]
                for dimension, cursor in zip(self.dimensions, cursors)
            }
            position = len(cursors) - 1
            while position >= 0:
                cursors[position] += 1
                if cursors[position] < len(self.dimensions[position]):
                    break
                cursors[position] = 0
                position -= 1
            if position < 0:
                return

    def validate(self, point: DesignPoint) -> None:
        """Raise :class:`SearchError` if ``point`` is not in the space."""
        for dimension in self.dimensions:
            if dimension.name not in point:
                raise SearchError(f"point missing dimension {dimension.name!r}")
            if point[dimension.name] not in dimension.values:
                raise SearchError(
                    f"value {point[dimension.name]!r} not valid for "
                    f"dimension {dimension.name!r}"
                )

    def random_point(self, rng) -> DesignPoint:
        """A uniformly random design point."""
        return {
            dimension.name: rng.choice(dimension.values)
            for dimension in self.dimensions
        }

    def key(self, point: DesignPoint) -> tuple:
        """Hashable canonical form of a point (dimension order)."""
        return tuple(point[dimension.name] for dimension in self.dimensions)
