"""User-guided search driver.

The differentiating DSE mode of the paper: the driver queries the
micro-architecture information (per-instruction EPI, IPC, functional
units) to *construct* the candidate set, then evaluates only those
points.  Section 6 instantiates this with the IPC*EPI-per-unit
heuristic that reduces a 173-instruction space to three candidates per
unit before an exhaustive pass over their orderings.
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Iterable

from repro.dse.results import SearchResult
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import SearchError
from repro.march.definition import MicroArchitecture

logger = logging.getLogger("repro.dse")

#: Produces candidate points by querying the architecture.
CandidateGenerator = Callable[[MicroArchitecture, DesignSpace], Iterable[DesignPoint]]


class GuidedSearch:
    """Evaluate a candidate stream produced from architecture queries."""

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Callable[[DesignPoint], float],
        arch: MicroArchitecture,
        generator: CandidateGenerator,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self.arch = arch
        self.generator = generator

    def run(self) -> SearchResult:
        """Evaluate every generated candidate.

        Raises:
            SearchError: If the generator yields nothing or yields a
                point outside the space.
        """
        result = SearchResult()
        for point in self.generator(self.arch, self.space):
            self.space.validate(point)
            result.record(point, self.evaluator(point))
        if result.count == 0:
            raise SearchError("candidate generator produced no points")
        logger.info(
            "guided search: %d generated candidates evaluated (best %.3f)",
            result.count,
            result.best.score,
        )
        return result
