"""Integrated design-space exploration (paper section 2.3).

Unlike prior work, where a genetic-algorithm driver lived in an
external tool, the DSE support here shares the process with the
synthesizer: search drivers evaluate candidate micro-benchmarks by
building them with the same pass pipelines and measuring them on the
machine substrate, and *guided* drivers prune the space by querying the
micro-architecture property database (the Section 6 use case).
"""

from repro.dse.evaluator import (
    CachingEvaluator,
    MeasurementEvaluator,
    epi_spread_objective,
    ipc_spread_objective,
    ipc_target_objective,
    mean_power_objective,
    thread_epi_estimates,
)
from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.genetic import GeneticSearch
from repro.dse.guided import GuidedSearch
from repro.dse.results import Evaluation, SearchResult
from repro.dse.space import DesignPoint, DesignSpace, Dimension
from repro.dse.topology import (
    TopologyEvaluator,
    efficiency_objective,
    energy_per_instruction_nj,
    epi_objective,
    throughput_objective,
    topology_from_point,
    topology_space,
)

__all__ = [
    "CachingEvaluator",
    "DesignPoint",
    "DesignSpace",
    "Dimension",
    "Evaluation",
    "ExhaustiveSearch",
    "GeneticSearch",
    "GuidedSearch",
    "MeasurementEvaluator",
    "SearchResult",
    "TopologyEvaluator",
    "efficiency_objective",
    "energy_per_instruction_nj",
    "epi_objective",
    "epi_spread_objective",
    "ipc_spread_objective",
    "ipc_target_objective",
    "mean_power_objective",
    "thread_epi_estimates",
    "throughput_objective",
    "topology_from_point",
    "topology_space",
]
