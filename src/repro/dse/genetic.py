"""Genetic-algorithm search driver.

The GA prior work relied on exclusively; here it is one driver among
several.  Chromosomes are design points (one categorical gene per
dimension); selection is tournament-based; crossover is uniform;
mutation re-draws a gene uniformly.  Elitism keeps the best candidate
across generations.
"""

from __future__ import annotations

import logging
import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.dse.evaluator import evaluate_batch
from repro.dse.results import SearchResult
from repro.dse.space import DesignPoint, DesignSpace

logger = logging.getLogger("repro.dse")


@dataclass(frozen=True)
class GAParameters:
    """Genetic-search hyper-parameters."""

    population: int = 24
    generations: int = 12
    crossover_rate: float = 0.9
    mutation_rate: float = 0.08
    tournament: int = 3
    elite: int = 2

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0 <= self.crossover_rate <= 1:
            raise ValueError("crossover_rate must be within [0, 1]")
        if not 0 <= self.mutation_rate <= 1:
            raise ValueError("mutation_rate must be within [0, 1]")
        if self.tournament < 1 or self.elite < 0:
            raise ValueError("bad tournament/elite sizes")


class GeneticSearch:
    """Tournament-selection GA over a categorical design space."""

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Callable[[DesignPoint], float],
        parameters: GAParameters | None = None,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self.parameters = parameters or GAParameters()
        self.seed = seed

    def run(self) -> SearchResult:
        params = self.parameters
        rng = random.Random(self.seed)
        result = SearchResult()

        logger.info(
            "genetic search: population %d over %d generations",
            params.population,
            params.generations,
        )
        population = [
            self.space.random_point(rng) for _ in range(params.population)
        ]
        scored = self._evaluate_population(population, result)

        for generation in range(params.generations - 1):
            logger.info(
                "generation %d/%d: best %.3f",
                generation + 1,
                params.generations,
                result.best.score,
            )
            scored.sort(key=lambda pair: pair[1], reverse=True)
            next_population = [
                dict(point) for point, _ in scored[: params.elite]
            ]
            while len(next_population) < params.population:
                parent_a = self._tournament(scored, rng)
                parent_b = self._tournament(scored, rng)
                child = self._crossover(parent_a, parent_b, rng)
                self._mutate(child, rng)
                next_population.append(child)
            scored = self._evaluate_population(next_population, result)
        return result

    def _evaluate_population(
        self, population: list[DesignPoint], result: SearchResult
    ) -> list[tuple[DesignPoint, float]]:
        """Score one generation as a single measurement batch."""
        scores = evaluate_batch(self.evaluator, population)
        return [
            (point, result.record(point, score).score)
            for point, score in zip(population, scores)
        ]

    def _tournament(
        self,
        scored: list[tuple[DesignPoint, float]],
        rng: random.Random,
    ) -> DesignPoint:
        contenders = rng.sample(scored, min(self.parameters.tournament, len(scored)))
        return max(contenders, key=lambda pair: pair[1])[0]

    def _crossover(
        self, parent_a: DesignPoint, parent_b: DesignPoint, rng: random.Random
    ) -> DesignPoint:
        if rng.random() > self.parameters.crossover_rate:
            return dict(parent_a)
        return {
            dimension.name: (
                parent_a[dimension.name]
                if rng.random() < 0.5
                else parent_b[dimension.name]
            )
            for dimension in self.space.dimensions
        }

    def _mutate(self, point: DesignPoint, rng: random.Random) -> None:
        for dimension in self.space.dimensions:
            if rng.random() < self.parameters.mutation_rate:
                point[dimension.name] = rng.choice(dimension.values)
