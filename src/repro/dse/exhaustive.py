"""Exhaustive search driver.

Evaluates every point of the space.  Practical when guided pruning has
already shrunk the space to the points of interest -- the Section 6
observation: "in a real measurement context, being able to constrain
the search space to the actual points of interest is crucial".
"""

from __future__ import annotations

import itertools
import logging
from collections.abc import Callable

from repro.dse.evaluator import evaluate_batch
from repro.dse.results import SearchResult
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import SearchError

logger = logging.getLogger("repro.dse")

#: Points measured per batch; bounds the kernels materialized at once.
BATCH_SIZE = 1024


class ExhaustiveSearch:
    """Enumerate and evaluate the entire design space."""

    def __init__(
        self,
        space: DesignSpace,
        evaluator: Callable[[DesignPoint], float],
        limit: int = 1_000_000,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self.limit = limit

    def run(self) -> SearchResult:
        """Evaluate every point, in measurement batches.

        Raises:
            SearchError: If the space exceeds the configured limit
                (exhaustive search on an unpruned space is a usage
                error, not something to silently grind through).
        """
        if self.space.size > self.limit:
            raise SearchError(
                f"space has {self.space.size} points, over the exhaustive "
                f"limit of {self.limit}; prune the space or raise limit"
            )
        result = SearchResult()
        points = self.space.points()
        logger.info(
            "exhaustive search: %d points in batches of %d",
            self.space.size,
            BATCH_SIZE,
        )
        while True:
            batch = list(itertools.islice(points, BATCH_SIZE))
            if not batch:
                break
            for point, score in zip(
                batch, evaluate_batch(self.evaluator, batch)
            ):
                result.record(point, score)
            logger.info(
                "exhaustive search: %d/%d points evaluated (best %.3f)",
                result.count,
                self.space.size,
                result.best.score,
            )
        return result
