"""Evaluators: map design points to scalar scores.

The standard evaluator builds a micro-benchmark from the point with a
user-supplied builder (a pass-pipeline closure), runs it on the machine
substrate, and reduces the measurement to a score -- mean power for
max-power searches, negated |IPC - target| for IPC-targeting searches,
and so on.  Builders may return a single kernel (deployed one copy per
hardware thread) or a :class:`~repro.sim.placement.Placement`
co-scheduling dissimilar kernels, and the mix objectives below score
the per-thread contrasts such placements produce.  A caching wrapper
avoids re-measuring identical points, which matters for GA populations
that revisit genotypes; its keys carry the evaluator's measurement
context (configuration, p-state, window), so one wrapper reused across
sweep configurations never serves stale scores.
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.dse.space import DesignPoint, DesignSpace
from repro.exec.executors import default_executor
from repro.exec.plan import ExperimentPlan
from repro.measure.measurement import Measurement
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.placement import Placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.executors import _ExecutorBase

logger = logging.getLogger("repro.dse")

#: Builds a runnable workload from a design point: one kernel deployed
#: everywhere, or an explicit per-thread placement.
KernelBuilder = Callable[[DesignPoint], "Kernel | Placement"]
#: Reduces a measurement to the score being maximized.
Objective = Callable[[Measurement], float]


def mean_power_objective(measurement: Measurement) -> float:
    """Score = mean sensor power (max-power searches)."""
    return measurement.mean_power


def ipc_target_objective(target: float) -> Objective:
    """Score = -|IPC - target| (IPC-tracking searches, Table 2)."""

    def objective(measurement: Measurement) -> float:
        return -abs(measurement.thread_ipc(0) - target)

    return objective


def ipc_spread_objective(measurement: Measurement) -> float:
    """Score = max - min per-thread IPC (co-runner imbalance searches).

    Homogeneous deployments score ~0 (all threads behave alike); mixed
    placements score the throughput asymmetry their SMT contention
    produces -- e.g. a hi-ILP kernel racing past the memory-bound
    co-runner it shares a core with.
    """
    ipcs = measurement.thread_ipcs()
    return max(ipcs) - min(ipcs)


def thread_epi_estimates(measurement: Measurement) -> tuple[float, ...]:
    """Per-thread energy-per-instruction estimates, nanojoules.

    Chip power cannot be attributed per thread from sensors alone, so
    the estimate splits the window's energy equally across hardware
    threads and divides by each thread's committed instructions -- a
    deliberately counter-only heuristic (modeling code never sees the
    hidden power model).  Threads committing nothing report 0.
    """
    energy_share = (
        measurement.mean_power * measurement.duration / measurement.threads
    )
    estimates = []
    for thread in range(measurement.threads):
        instructions = measurement.thread_counters[thread].get(
            "PM_RUN_INST_CMPL", 0.0
        )
        estimates.append(
            energy_share / instructions * 1e9 if instructions else 0.0
        )
    return tuple(estimates)


def epi_spread_objective(measurement: Measurement) -> float:
    """Score = max - min estimated per-thread EPI (nJ).

    The mix-search analogue of the taxonomy's EPI contrasts: maximized
    by placements whose co-runners convert the same energy share into
    very different instruction counts (e.g. antagonist pairs).
    """
    estimates = [
        value for value in thread_epi_estimates(measurement) if value > 0.0
    ]
    if not estimates:
        return 0.0
    return max(estimates) - min(estimates)


class MeasurementEvaluator:
    """Build-measure-score evaluator over the machine substrate."""

    def __init__(
        self,
        builder: KernelBuilder,
        machine: Machine,
        config: MachineConfig,
        objective: Objective = mean_power_objective,
        duration: float = 10.0,
        executor: "_ExecutorBase | None" = None,
    ) -> None:
        self.builder = builder
        self.machine = machine
        self.config = config
        self.objective = objective
        self.duration = duration
        # Environment-resolved default: REPRO_PARALLEL/REPRO_STORE
        # shard or persist every search this evaluator drives.
        self.executor = (
            executor if executor is not None else default_executor(machine)
        )
        self.measurements = 0

    @property
    def cache_context(self) -> tuple:
        """Measurement identity a score depends on besides the point.

        The configuration (which carries the p-state) and the window
        length: :class:`CachingEvaluator` folds this into its keys so
        reusing one evaluator across a sweep -- reassigning ``config``
        between configurations -- invalidates naturally instead of
        serving another configuration's scores.
        """
        return (self.config, self.duration)

    def __call__(self, point: DesignPoint) -> float:
        return self.evaluate_many([point])[0]

    def evaluate_many(self, points: Sequence[DesignPoint]) -> list[float]:
        """Score a batch of points through the execution engine.

        The batch becomes one single-configuration experiment plan:
        duplicate genotypes deduplicate into one cell, the executor
        drives the misses through the machine's vectorized measurement
        plane (``Machine.run_cells``/``run_many`` -- one tensor pass
        per batch, or sharded across workers), and a store-backed
        executor serves revisited points from disk across processes.
        """
        workloads = [self.builder(point) for point in points]
        plan = ExperimentPlan.cross(
            workloads, [self.config], duration=self.duration
        )
        logger.debug(
            "evaluating %d points on %s (%d unique cells)",
            len(points),
            self.config.label,
            plan.size,
        )
        report = self.executor.execute(plan)
        self.measurements += len(points)
        if report.failures:
            # Quarantine-aware scoring: a point whose cell could not be
            # measured after retries and the degraded fallback scores
            # -inf -- searches maximize, so the point simply loses and
            # the campaign (GA generations, sweeps) carries on instead
            # of aborting on one bad cell.
            logger.warning(
                "scoring %d quarantined point(s) at -inf: %s",
                len(report.failures),
                report.describe(),
            )
        return [
            self.objective(measurement)
            if measurement is not None
            else float("-inf")
            for measurement in report
        ]


class CachingEvaluator:
    """Memoizing wrapper keyed on the canonical point form.

    Keys additionally carry the wrapped evaluator's ``cache_context``
    (falling back to its ``config`` attribute, if any): a measurement
    evaluator reused across sweep configurations or p-states re-scores
    each point per context instead of serving the first context's
    stale score.
    """

    def __init__(
        self,
        evaluator: Callable[[DesignPoint], float],
        space: DesignSpace,
    ) -> None:
        self.evaluator = evaluator
        self.space = space
        self._cache: dict[tuple, float] = {}

    def _context(self) -> object:
        context = getattr(self.evaluator, "cache_context", None)
        if context is None:
            context = getattr(self.evaluator, "config", None)
        return context

    def _key(self, point: DesignPoint, context: object) -> tuple:
        return (context, self.space.key(point))

    def __call__(self, point: DesignPoint) -> float:
        key = self._key(point, self._context())
        if key not in self._cache:
            self._cache[key] = self.evaluator(point)
        return self._cache[key]

    def evaluate_many(self, points: Sequence[DesignPoint]) -> list[float]:
        """Batch evaluation: misses go to the backend in one batch."""
        context = self._context()
        keys = [self._key(point, context) for point in points]
        fresh: dict[tuple, DesignPoint] = {}
        for key, point in zip(keys, points):
            if key not in self._cache and key not in fresh:
                fresh[key] = point
        if fresh:
            scores = evaluate_batch(self.evaluator, list(fresh.values()))
            for key, score in zip(fresh, scores):
                self._cache[key] = score
        return [self._cache[key] for key in keys]

    @property
    def unique_evaluations(self) -> int:
        return len(self._cache)


def evaluate_batch(
    evaluator: Callable[[DesignPoint], float],
    points: Sequence[DesignPoint],
) -> list[float]:
    """Score ``points``, batching when the evaluator supports it.

    Search drivers call this instead of a per-point loop, so any
    evaluator exposing ``evaluate_many`` (the measurement evaluators
    above, user-supplied batched objectives) gets the whole population
    at once and can route it through :meth:`Machine.run_many`.
    """
    batch = getattr(evaluator, "evaluate_many", None)
    if batch is not None:
        return list(batch(points))
    return [evaluator(point) for point in points]
