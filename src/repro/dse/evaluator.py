"""Evaluators: map design points to scalar scores.

The standard evaluator builds a micro-benchmark from the point with a
user-supplied builder (a pass-pipeline closure), runs it on the machine
substrate, and reduces the measurement to a score -- mean power for
max-power searches, negated |IPC - target| for IPC-targeting searches,
and so on.  A caching wrapper avoids re-measuring identical points,
which matters for GA populations that revisit genotypes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.dse.space import DesignPoint, DesignSpace
from repro.measure.measurement import Measurement
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.machine import Machine

#: Builds a runnable kernel from a design point.
KernelBuilder = Callable[[DesignPoint], Kernel]
#: Reduces a measurement to the score being maximized.
Objective = Callable[[Measurement], float]


def mean_power_objective(measurement: Measurement) -> float:
    """Score = mean sensor power (max-power searches)."""
    return measurement.mean_power


def ipc_target_objective(target: float) -> Objective:
    """Score = -|IPC - target| (IPC-tracking searches, Table 2)."""

    def objective(measurement: Measurement) -> float:
        counters = measurement.thread_counters[0]
        cycles = counters.get("PM_RUN_CYC", 0.0)
        instructions = counters.get("PM_RUN_INST_CMPL", 0.0)
        ipc = instructions / cycles if cycles else 0.0
        return -abs(ipc - target)

    return objective


class MeasurementEvaluator:
    """Build-measure-score evaluator over the machine substrate."""

    def __init__(
        self,
        builder: KernelBuilder,
        machine: Machine,
        config: MachineConfig,
        objective: Objective = mean_power_objective,
        duration: float = 10.0,
    ) -> None:
        self.builder = builder
        self.machine = machine
        self.config = config
        self.objective = objective
        self.duration = duration
        self.measurements = 0

    def __call__(self, point: DesignPoint) -> float:
        return self.evaluate_many([point])[0]

    def evaluate_many(self, points: Sequence[DesignPoint]) -> list[float]:
        """Score a batch of points through ``Machine.run_many``."""
        kernels = [self.builder(point) for point in points]
        measurements = self.machine.run_many(
            kernels, self.config, self.duration
        )
        self.measurements += len(points)
        return [self.objective(measurement) for measurement in measurements]


class CachingEvaluator:
    """Memoizing wrapper keyed on the canonical point form."""

    def __init__(
        self,
        evaluator: Callable[[DesignPoint], float],
        space: DesignSpace,
    ) -> None:
        self.evaluator = evaluator
        self.space = space
        self._cache: dict[tuple, float] = {}

    def __call__(self, point: DesignPoint) -> float:
        key = self.space.key(point)
        if key not in self._cache:
            self._cache[key] = self.evaluator(point)
        return self._cache[key]

    def evaluate_many(self, points: Sequence[DesignPoint]) -> list[float]:
        """Batch evaluation: misses go to the backend in one batch."""
        keys = [self.space.key(point) for point in points]
        fresh: dict[tuple, DesignPoint] = {}
        for key, point in zip(keys, points):
            if key not in self._cache and key not in fresh:
                fresh[key] = point
        if fresh:
            scores = evaluate_batch(self.evaluator, list(fresh.values()))
            for key, score in zip(fresh, scores):
                self._cache[key] = score
        return [self._cache[key] for key in keys]

    @property
    def unique_evaluations(self) -> int:
        return len(self._cache)


def evaluate_batch(
    evaluator: Callable[[DesignPoint], float],
    points: Sequence[DesignPoint],
) -> list[float]:
    """Score ``points``, batching when the evaluator supports it.

    Search drivers call this instead of a per-point loop, so any
    evaluator exposing ``evaluate_many`` (the measurement evaluators
    above, user-supplied batched objectives) gets the whole population
    at once and can route it through :meth:`Machine.run_many`.
    """
    batch = getattr(evaluator, "evaluate_many", None)
    if batch is not None:
        return list(batch(points))
    return [evaluator(point) for point in points]
