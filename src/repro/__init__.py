"""MicroProbe reproduction: systematic energy characterization of
CMP/SMT processor systems via automated micro-benchmarks.

Reproduction of Bertran et al., MICRO 2012.  The package mirrors the
paper's scripting interface::

    import repro as MP

    arch = MP.arch.get_architecture("POWER7")
    synth = MP.code.Synthesizer(arch)
    synth.add_pass(MP.code.passes.EndlessLoopSkeleton(4096))
    ...

Sub-packages:

* :mod:`repro.isa` -- ISA definitions loaded from text files (2.1.1)
* :mod:`repro.march` -- micro-architecture definitions, counters,
  the analytical cache model and the bootstrap process (2.1.2-2.1.3)
* :mod:`repro.core` -- the pass-based micro-benchmark synthesizer and
  the C/assembly emitters (2.2)
* :mod:`repro.dse` -- integrated design-space exploration (2.3)
* :mod:`repro.sim` -- the POWER7-like machine substrate standing in
  for the paper's BladeCenter PS701 (section 3)
* :mod:`repro.measure` -- the measurement harness (section 3)
* :mod:`repro.power_model` -- bottom-up and top-down counter-based
  power models (section 4)
* :mod:`repro.epi` -- the EPI-based instruction taxonomy (section 5)
* :mod:`repro.stressmark` -- max-power stressmark generation (section 6)
* :mod:`repro.workloads` -- SPEC CPU2006 proxies, extreme-activity
  cases, DAXPY kernels and random-benchmark policies
* :mod:`repro.exec` -- the experiment execution engine: declarative
  plans, serial/parallel executors, persistent result store (also the
  ``python -m repro`` CLI entry point)
"""

from repro import core as code
from repro import march as arch
from repro.core import Synthesizer
from repro.exec import (
    ExperimentPlan,
    ParallelExecutor,
    ResultStore,
    SerialExecutor,
)
from repro.march import get_architecture
from repro.sim import Machine, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "ExperimentPlan",
    "Machine",
    "MachineConfig",
    "ParallelExecutor",
    "ResultStore",
    "SerialExecutor",
    "Synthesizer",
    "arch",
    "code",
    "get_architecture",
    "__version__",
]
