"""Activity profiles: replaying real-application behaviour.

An :class:`ActivityProfile` captures the per-thread steady-state
characteristics of an application (IPC, unit mix, memory locality,
SMT scaling) the way published SPEC CPU2006 characterizations report
them.  A :class:`ProfiledWorkload` adapts a profile to the machine's
workload protocol so profiles and generated micro-benchmarks run
through the *same* measurement path.

Profiles carry a per-unit energy bias drawn deterministically from the
benchmark name: real applications' instruction mixes are more or less
energy-hungry than the generic mix a counter-based model can see, and
this is precisely the model error the paper's validation quantifies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.sim.activity import ThreadActivity
from repro.sim.sensors import stable_seed

#: Default core-throughput multipliers per SMT way (total core IPC
#: relative to SMT-1); diminishing returns per added thread.
DEFAULT_SMT_SCALING = {1: 1.0, 2: 1.45, 4: 1.80}

#: Spread (1 sigma) of the per-unit energy bias across applications.
ENERGY_BIAS_SIGMA = 0.06


def _energy_bias(name: str) -> dict[str, float]:
    rng = random.Random(stable_seed("energy-bias", name))
    return {
        unit: max(0.7, rng.gauss(1.0, ENERGY_BIAS_SIGMA))
        for unit in ("FXU", "LSU", "VSU", "BRU", "CRU")
    }


@dataclass(frozen=True)
class ActivityProfile:
    """Per-thread activity characteristics of one application.

    Attributes:
        name: Application name (e.g. ``mcf``).
        ipc: Committed IPC of one thread at SMT-1.
        unit_mix: Operations injected per committed instruction, by
            functional unit.
        memory_per_insn: Memory accesses per committed instruction.
        locality: Fraction of memory accesses sourced by each level
            (``L1``/``L2``/``L3``/``MEM``; must sum to 1).
        store_fraction: Share of memory accesses that are stores.
        alternation: Unit-alternation of the dynamic instruction stream.
        smt_scaling: Core-throughput multiplier per SMT way.
    """

    name: str
    ipc: float
    unit_mix: dict[str, float]
    memory_per_insn: float
    locality: dict[str, float]
    store_fraction: float = 0.3
    alternation: float = 0.55
    smt_scaling: dict[int, float] = field(
        default_factory=lambda: dict(DEFAULT_SMT_SCALING)
    )

    def __post_init__(self) -> None:
        if self.ipc <= 0:
            raise ValueError(f"{self.name}: ipc must be positive")
        total = sum(self.locality.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: locality must sum to 1, got {total:g}"
            )
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError(f"{self.name}: bad store fraction")

    def thread_ipc(self, smt: int) -> float:
        """Per-thread IPC at the given SMT way."""
        scaling = self.smt_scaling.get(smt)
        if scaling is None:
            raise ValueError(f"{self.name}: no SMT-{smt} scaling defined")
        return self.ipc * scaling / smt


class ProfiledWorkload:
    """Adapter: profile -> machine workload protocol."""

    def __init__(self, profile: ActivityProfile) -> None:
        self.profile = profile
        self.name = profile.name
        self._bias = _energy_bias(profile.name)

    def thread_activity(self, machine, smt: int) -> ThreadActivity:
        profile = self.profile
        frequency = machine.frequency
        ipc = profile.thread_ipc(smt)
        insn_rate = ipc * frequency

        unit_op_rates = {
            unit: per_insn * insn_rate
            for unit, per_insn in profile.unit_mix.items()
        }
        memory_rate = profile.memory_per_insn * insn_rate
        level_rates = {
            level: fraction * memory_rate
            for level, fraction in profile.locality.items()
        }
        level_rates["_stores"] = profile.store_fraction * memory_rate
        level_rates["_loads"] = memory_rate - level_rates["_stores"]

        return ThreadActivity(
            ipc=ipc,
            insn_rates={},  # applications expose only unit-level rates
            unit_op_rates=unit_op_rates,
            level_rates=level_rates,
            alternation=profile.alternation,
            entropy=1.0,
            unit_energy_bias=dict(self._bias),
        )

    def __repr__(self) -> str:
        return f"ProfiledWorkload({self.name!r})"
