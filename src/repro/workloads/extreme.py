"""Extreme-activity validation cases (paper Figure 7).

Six *generated* micro-benchmarks exercising single activities at
extreme levels: high/low fixed-point, high/low vector, L1-only loads,
and main-memory-only traffic.  The paper notes these activities are
common in real applications over short phases (vectorized L1-resident
loops, memcpy from main memory), making them a fair out-of-distribution
test for workload-trained power models.
"""

from __future__ import annotations

from repro.core.passes.distribution import InstructionDistribution
from repro.core.passes.ilp import DependencyDistance
from repro.core.passes.init_values import InitImmediates, InitRegisters
from repro.core.passes.memory import MemoryModel
from repro.core.passes.skeleton import EndlessLoopSkeleton
from repro.core.synthesizer import Synthesizer
from repro.march.definition import MicroArchitecture
from repro.sim.kernel import Kernel

#: Case name -> (instruction pool, dependency mode, memory weights).
_CASES: dict[str, tuple[list[str], str, dict[str, float] | None]] = {
    "FXU High": (["subf", "addic", "mulld"], "none", None),
    "FXU Low": (["mulldo", "divd"], "chain", None),
    "L1 Loads": (["lbz", "lwz", "ld", "lhz"], "none", {"L1": 1.0}),
    "Main memory": (["ld", "lwz", "std", "stw"], "none", {"MEM": 1.0}),
    "VSU High": (["xvmaddadp", "xvnmsubmdp", "xvmuldp"], "none", None),
    "VSU Low": (["xvsqrtdp", "xvdivdp"], "chain", None),
}

#: Paper Figure 7 case order.
EXTREME_CASE_NAMES = tuple(_CASES)


def build_extreme_kernel(
    name: str,
    arch: MicroArchitecture,
    loop_size: int = 4096,
    seed: int = 0,
) -> Kernel:
    """Build one extreme case by name (see :data:`EXTREME_CASE_NAMES`)."""
    try:
        pool, dep_mode, memory_weights = _CASES[name]
    except KeyError:
        raise KeyError(
            f"unknown extreme case {name!r}; "
            f"known: {', '.join(EXTREME_CASE_NAMES)}"
        ) from None
    slug = name.lower().replace(" ", "-")
    synth = Synthesizer(arch, seed=seed, name_prefix=f"extreme-{slug}")
    synth.add_pass(EndlessLoopSkeleton(loop_size))
    synth.add_pass(InstructionDistribution(pool))
    if memory_weights is not None:
        synth.add_pass(MemoryModel(memory_weights))
    synth.add_pass(InitRegisters("random"))
    synth.add_pass(InitImmediates("random"))
    synth.add_pass(DependencyDistance(dep_mode))
    return synth.synthesize(name).to_kernel()


def extreme_kernels(
    arch: MicroArchitecture, loop_size: int = 4096, seed: int = 0
) -> dict[str, Kernel]:
    """All six extreme cases, in paper order."""
    return {
        name: build_extreme_kernel(name, arch, loop_size, seed)
        for name in EXTREME_CASE_NAMES
    }
