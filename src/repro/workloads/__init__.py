"""Workloads: SPEC CPU2006 proxies, extreme cases, kernels, random policies.

The paper validates its power models on the real SPEC CPU2006 suite and
stresses them with "extreme" single-activity workloads.  The real suite
is not available offline, so :mod:`repro.workloads.spec` replays
published per-benchmark activity characteristics through the same
machine/power path the generated micro-benchmarks use (the substitution
is documented in DESIGN.md).  Extreme cases and DAXPY are *generated*
micro-benchmarks built with the public synthesizer API.
"""

from repro.workloads.daxpy import daxpy_kernels
from repro.workloads.extreme import extreme_kernels
from repro.workloads.mixes import (
    AffinityMix,
    MixScenario,
    biglittle_mixes,
    get_biglittle_mix,
    get_mix,
    mix_scenarios,
)
from repro.workloads.profiles import ActivityProfile, ProfiledWorkload
from repro.workloads.random_gen import RandomBenchmarkPolicy
from repro.workloads.spec import spec_cpu2006

__all__ = [
    "ActivityProfile",
    "AffinityMix",
    "MixScenario",
    "ProfiledWorkload",
    "RandomBenchmarkPolicy",
    "biglittle_mixes",
    "daxpy_kernels",
    "extreme_kernels",
    "get_biglittle_mix",
    "get_mix",
    "mix_scenarios",
    "spec_cpu2006",
]
