"""Named heterogeneous co-run scenarios (mixes).

The paper deploys one micro-benchmark per hardware thread; real
consolidation workloads co-schedule *dissimilar* work on one core's
SMT resources.  Each :class:`MixScenario` here names a co-run pattern
with a known contention story, built from single-activity kernels the
steady-state engine summarizes in O(1) (every kernel declares period
1):

* ``ilp-vs-memory`` -- a high-ILP integer stream sharing a core with a
  main-memory-bound load stream: the classic SMT win, the compute
  thread soaks up the issue slots the stalled thread cannot use;
* ``vector-vs-scalar`` -- a VSU floating-point stream next to a scalar
  FXU multiply stream: little unit overlap, so both run near solo
  speed while heating different components;
* ``antagonist-lsu`` -- a load stream against a store stream, both
  hammering the LSU: maximal same-unit interference at equal demand;
* ``chain-vs-throughput`` -- a latency-bound dependency chain next to
  a dispatch-hungry stream: the chain is immune to SMT capacity
  sharing, the co-runner claims everything the chain leaves idle.

``scenario.placement(config)`` lays the mix out round-robin so every
enabled core co-schedules the same pattern; run it through
``Machine.run``/``run_many`` like any workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel, KernelInstruction
from repro.sim.placement import Placement

#: L1-resident address region for cache-friendly memory streams.
_L1_REGION_BASE = 0x2000_0000
_L1_REGION_BYTES = 4096
#: Stride for main-memory streams: far beyond any cache's reach.
_MEM_STRIDE = 1 << 16

#: Default loop-body length of the mix kernels.
DEFAULT_MIX_LOOP = 256


def _stream_kernel(
    name: str,
    mnemonic: str,
    loop_size: int,
    dep: int | None = None,
    level: str | None = None,
    entropy: float = 1.0,
) -> Kernel:
    """A single-activity endless loop with a period-1 fingerprint."""
    if level is None:
        addresses = [None] * loop_size
    elif level == "MEM":
        addresses = [
            _L1_REGION_BASE + index * _MEM_STRIDE for index in range(loop_size)
        ]
    else:
        addresses = [
            _L1_REGION_BASE + (index * 128) % _L1_REGION_BYTES
            for index in range(loop_size)
        ]
    return Kernel(
        name=name,
        instructions=tuple(
            KernelInstruction(
                mnemonic,
                dep_distance=dep,
                source_level=level,
                address=address,
            )
            for address in addresses
        ),
        operand_entropy=entropy,
        period=1,
    )


@dataclass(frozen=True)
class MixScenario:
    """One named co-run scenario.

    Attributes:
        name: Scenario identifier (becomes the placement name).
        description: The contention story being exercised.
        workloads: The co-runners, cycled across each core's SMT slots.
    """

    name: str
    description: str
    workloads: tuple[Kernel, ...]

    def placement(self, config: MachineConfig) -> Placement:
        """Lay the mix out round-robin over ``config``'s threads."""
        return Placement.round_robin(self.workloads, config, name=self.name)


def hi_ilp_kernel(loop_size: int = DEFAULT_MIX_LOOP) -> Kernel:
    """Dependency-free integer stream: dispatch/unit hungry, high IPC."""
    return _stream_kernel(f"hi-ilp-{loop_size}", "addic", loop_size)


def memory_bound_kernel(loop_size: int = DEFAULT_MIX_LOOP) -> Kernel:
    """Main-memory load stream: MSHR-bound, near-zero IPC."""
    return _stream_kernel(
        f"mem-bound-{loop_size}", "ld", loop_size, level="MEM"
    )


def vector_kernel(loop_size: int = DEFAULT_MIX_LOOP) -> Kernel:
    """VSU fused-multiply-add stream (the Table 3 vector workhorse)."""
    return _stream_kernel(f"vector-{loop_size}", "xvmaddadp", loop_size)


def scalar_kernel(loop_size: int = DEFAULT_MIX_LOOP) -> Kernel:
    """Scalar FXU multiply stream."""
    return _stream_kernel(f"scalar-{loop_size}", "mullw", loop_size)


def load_antagonist_kernel(loop_size: int = DEFAULT_MIX_LOOP) -> Kernel:
    """L1-resident load stream: LSU pressure without misses."""
    return _stream_kernel(
        f"load-antagonist-{loop_size}", "lwz", loop_size, level="L1"
    )


def store_antagonist_kernel(loop_size: int = DEFAULT_MIX_LOOP) -> Kernel:
    """L1-resident store stream: the load stream's LSU antagonist."""
    return _stream_kernel(
        f"store-antagonist-{loop_size}", "stfd", loop_size, level="L1"
    )


def latency_chain_kernel(loop_size: int = DEFAULT_MIX_LOOP) -> Kernel:
    """Serial floating-point dependency chain: latency-bound, SMT-immune."""
    return _stream_kernel(
        f"latency-chain-{loop_size}", "fadd", loop_size, dep=1
    )


def mix_scenarios(loop_size: int = DEFAULT_MIX_LOOP) -> tuple[MixScenario, ...]:
    """The named co-run scenarios, stable order."""
    return (
        MixScenario(
            name="ilp-vs-memory",
            description=(
                "high-ILP integer stream co-scheduled with a "
                "main-memory-bound load stream"
            ),
            workloads=(hi_ilp_kernel(loop_size), memory_bound_kernel(loop_size)),
        ),
        MixScenario(
            name="vector-vs-scalar",
            description=(
                "VSU floating-point stream co-scheduled with a scalar "
                "FXU multiply stream"
            ),
            workloads=(vector_kernel(loop_size), scalar_kernel(loop_size)),
        ),
        MixScenario(
            name="antagonist-lsu",
            description=(
                "L1-resident load and store streams contending for the "
                "same LSU pipes"
            ),
            workloads=(
                load_antagonist_kernel(loop_size),
                store_antagonist_kernel(loop_size),
            ),
        ),
        MixScenario(
            name="chain-vs-throughput",
            description=(
                "latency-bound dependency chain co-scheduled with a "
                "dispatch-hungry integer stream"
            ),
            workloads=(
                latency_chain_kernel(loop_size),
                hi_ilp_kernel(loop_size),
            ),
        ),
    )


def get_mix(name: str, loop_size: int = DEFAULT_MIX_LOOP) -> MixScenario:
    """Look up one scenario by name."""
    scenarios = {
        scenario.name: scenario for scenario in mix_scenarios(loop_size)
    }
    try:
        return scenarios[name]
    except KeyError:
        raise KeyError(
            f"unknown mix {name!r}; known: {', '.join(scenarios)}"
        ) from None


# -- big.LITTLE affinity mixes ----------------------------------------------------


@dataclass(frozen=True)
class AffinityMix:
    """A big.LITTLE affinity scenario: one workload per cluster *role*.

    On a heterogeneous :class:`~repro.sim.topology.ChipTopology` the
    scheduling question is not which SMT slot but which *cluster* a
    workload lands on.  ``big_workload`` runs on every thread of
    big-class clusters, ``little_workload`` on every thread of the
    other clusters -- the classic affinity policies (compute on big,
    memory-stalls on little) and their inverted controls.
    """

    name: str
    description: str
    big_workload: Kernel
    little_workload: Kernel

    def placement(
        self,
        topology,
        big_classes: tuple[str | None, ...] = (None, "POWER7"),
    ) -> Placement:
        """Lay the mix out cluster-affine over ``topology``.

        ``big_classes`` names the core classes counted as big;
        the default covers both spellings of the bundled big core
        (``None`` -- the machine's base class -- and explicit
        ``POWER7``).  Everything else gets the little workload.
        """
        per_cluster = [
            self.big_workload
            if cluster.core_class in big_classes
            else self.little_workload
            for cluster in topology.clusters
        ]
        return Placement.cluster_affinity(
            per_cluster, topology, name=self.name
        )


def biglittle_mixes(
    loop_size: int = DEFAULT_MIX_LOOP,
) -> tuple[AffinityMix, ...]:
    """The named big.LITTLE affinity scenarios, stable order."""
    return (
        AffinityMix(
            name="compute-on-big",
            description=(
                "dispatch-hungry integer stream on the wide big "
                "cluster, main-memory-bound loads parked on the "
                "little cores (the textbook affinity policy)"
            ),
            big_workload=hi_ilp_kernel(loop_size),
            little_workload=memory_bound_kernel(loop_size),
        ),
        AffinityMix(
            name="vector-on-big",
            description=(
                "VSU fused-multiply-add stream on the big cluster's "
                "full-width vector pipes, scalar multiplies on little"
            ),
            big_workload=vector_kernel(loop_size),
            little_workload=scalar_kernel(loop_size),
        ),
        AffinityMix(
            name="inverted-affinity",
            description=(
                "the wrong-way control: memory stalls occupy the big "
                "cluster while the compute stream starves on little"
            ),
            big_workload=memory_bound_kernel(loop_size),
            little_workload=hi_ilp_kernel(loop_size),
        ),
    )


def get_biglittle_mix(
    name: str, loop_size: int = DEFAULT_MIX_LOOP
) -> AffinityMix:
    """Look up one affinity scenario by name."""
    mixes = {mix.name: mix for mix in biglittle_mixes(loop_size)}
    try:
        return mixes[name]
    except KeyError:
        raise KeyError(
            f"unknown big.LITTLE mix {name!r}; known: {', '.join(mixes)}"
        ) from None
