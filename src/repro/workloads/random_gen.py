"""Random micro-benchmark generation policy (Table 2's "Random" family).

331 random micro-benchmarks enrich the training set and calibrate the
model intercept (paper section 4.1, step 1).  Each benchmark draws a
random instruction pool from the ISA, a random memory mix, random
dependency-distance parameters and random value-initialisation -- so
the family covers activity combinations no targeted family contains.
"""

from __future__ import annotations

import random

from repro.core.passes.distribution import InstructionDistribution
from repro.core.passes.ilp import DependencyDistance
from repro.core.passes.init_values import InitImmediates, InitRegisters
from repro.core.passes.memory import MemoryModel
from repro.core.passes.skeleton import EndlessLoopSkeleton
from repro.core.synthesizer import Synthesizer
from repro.march.definition import MicroArchitecture
from repro.sim.kernel import Kernel


class RandomBenchmarkPolicy:
    """Seeded generator of random micro-benchmarks."""

    def __init__(
        self,
        arch: MicroArchitecture,
        loop_size: int = 4096,
        seed: int = 0,
    ) -> None:
        self.arch = arch
        self.loop_size = loop_size
        self.seed = seed
        self._candidates = [
            ins.mnemonic for ins in arch.isa
            if not ins.is_branch and not ins.is_nop
            and not ins.is_privileged and not ins.is_prefetch
        ]

    def build(self, count: int) -> list[Kernel]:
        """Generate ``count`` random micro-benchmarks."""
        rng = random.Random(f"random-policy:{self.seed}")
        kernels = []
        for index in range(count):
            kernels.append(self._build_one(rng, index))
        return kernels

    def _build_one(self, rng: random.Random, index: int) -> Kernel:
        # Random mixes draw a broad pool: like the random test cases of
        # prior synthetic-benchmark work, they blend many instruction
        # types, so per-unit activities are correlated (never the pure
        # single-unit signatures the targeted families provide).
        pool_size = rng.randint(6, 14)
        pool = rng.sample(self._candidates, pool_size)
        synth = Synthesizer(
            self.arch,
            seed=rng.randrange(2 ** 31),
            name_prefix=f"random-{self.seed}-{index}",
        )
        synth.add_pass(EndlessLoopSkeleton(self.loop_size))
        synth.add_pass(InstructionDistribution(pool))

        memory_count = sum(
            1 for mnemonic in pool
            if self.arch.isa.instruction(mnemonic).is_memory
        )
        if memory_count:
            memory_slots = self.loop_size * memory_count // len(pool)
            synth.add_pass(
                MemoryModel(self._random_memory_mix(rng, memory_slots))
            )

        synth.add_pass(InitRegisters(rng.choice(["random", "pattern"])))
        synth.add_pass(InitImmediates("random"))
        mode = rng.choice(["none", "random", "random", "fixed"])
        if mode == "fixed":
            synth.add_pass(
                DependencyDistance("fixed", distance=rng.randint(1, 16))
            )
        elif mode == "random":
            low = rng.randint(1, 8)
            synth.add_pass(
                DependencyDistance(
                    "random",
                    min_distance=low,
                    max_distance=low + rng.randint(0, 24),
                )
            )
        else:
            synth.add_pass(DependencyDistance("none"))
        return synth.synthesize().to_kernel()

    def _random_memory_mix(
        self, rng: random.Random, memory_slots: int
    ) -> dict[str, float]:
        """A random point on the hierarchy-mix simplex.

        Level weights are drawn then renormalized; levels may drop out
        entirely, so pure-L1 and memory-heavy mixes both occur.  Any
        surviving non-L1 weight is floored so its stream receives at
        least the cache model's per-stream line minimum (with a safety
        margin) given the benchmark's memory slot count; when the body
        is too small to sustain deep-level streams the mix degrades to
        pure L1.
        """
        from repro.march.cache_model import SetAssociativeCacheModel

        model = SetAssociativeCacheModel(self.arch.caches, self.arch.memory)
        l1 = self.arch.memory_level_names()[0]
        weights = {
            level: rng.random() * rng.choice([0.0, 1.0, 1.0])
            for level in self.arch.memory_level_names()
        }
        weights[l1] = max(weights[l1], 0.3)
        kept = {level: weight for level, weight in weights.items() if weight > 0}

        # Iteratively drop streams whose (renormalized) slot share falls
        # under the cache model's per-stream line minimum, until the mix
        # is feasible for this benchmark's memory slot count.
        while True:
            total = sum(kept.values())
            normalized = {level: w / total for level, w in kept.items()}
            infeasible = [
                level for level, share in normalized.items()
                if level != l1
                and share * memory_slots < 1.25 * model.minimum_lines(level)
            ]
            if not infeasible:
                return normalized
            kept.pop(min(infeasible, key=normalized.get))
            if not kept:
                return {l1: 1.0}
