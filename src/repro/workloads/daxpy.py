"""DAXPY kernels (paper Figure 9 baseline).

``y[i] = a * x[i] + y[i]`` -- the classic stressmark kernel the paper
runs "with different L1 contained memory foot-prints" as the
conventional baseline that generated stressmarks must beat.  The loop
body interleaves the two loads, the fused multiply-add, the store and
the index update in the proportions a compiled DAXPY exhibits, with
moderate dependency distances reflecting the loop-carried dataflow.
"""

from __future__ import annotations

from repro.core.passes.distribution import InstructionDistribution
from repro.core.passes.ilp import DependencyDistance
from repro.core.passes.init_values import InitImmediates, InitRegisters
from repro.core.passes.memory import MemoryModel
from repro.core.passes.skeleton import EndlessLoopSkeleton
from repro.core.synthesizer import Synthesizer
from repro.march.definition import MicroArchitecture
from repro.sim.kernel import Kernel

#: The DAXPY body mix: 2 loads + 1 fmadd + 1 store + 1 index add.
_DAXPY_POOL = ["lfd", "lfd", "fmadd", "stfd", "add"]


def build_daxpy(
    arch: MicroArchitecture,
    unroll: int = 4,
    loop_size: int = 4096,
    seed: int = 0,
) -> Kernel:
    """One DAXPY variant; higher ``unroll`` means longer dependency
    distances (more exposed ILP), the way compiler unrolling would."""
    if unroll < 1:
        raise ValueError("unroll must be >= 1")
    synth = Synthesizer(arch, seed=seed, name_prefix=f"daxpy-u{unroll}")
    synth.add_pass(EndlessLoopSkeleton(loop_size))
    synth.add_pass(InstructionDistribution(_DAXPY_POOL))
    synth.add_pass(MemoryModel({arch.caches[0].name: 1.0}))
    synth.add_pass(InitRegisters("random"))
    synth.add_pass(InitImmediates("random"))
    synth.add_pass(
        DependencyDistance(
            "random", min_distance=unroll, max_distance=4 * unroll
        )
    )
    return synth.synthesize().to_kernel()


def daxpy_kernels(
    arch: MicroArchitecture,
    unrolls: tuple[int, ...] = (1, 2, 4, 8),
    loop_size: int = 4096,
    seed: int = 0,
) -> list[Kernel]:
    """The DAXPY family: one kernel per unroll factor."""
    return [
        build_daxpy(arch, unroll=unroll, loop_size=loop_size, seed=seed)
        for unroll in unrolls
    ]
