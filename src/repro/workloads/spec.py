"""SPEC CPU2006 proxy suite (28 benchmarks).

Each profile encodes the published steady-state characteristics of one
SPEC CPU2006 benchmark -- committed IPC, functional-unit mix, memory
intensity and cache residency -- as observed in POWER-class
characterization studies: ``mcf``/``lbm``/``milc`` are memory-bound,
``hmmer``/``h264ref``/``gamess``/``namd`` are high-IPC compute,
``gcc``/``xalancbmk`` live mostly in L1/L2, and so on.  Absolute
fidelity to any particular machine is not the point (the paper
normalizes all power numbers); what matters for model validation is a
*diverse, realistic* set of counter signatures the micro-benchmark
training sets never saw.

The profiles replay through the exact machine/power path the generated
micro-benchmarks use; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

from repro.workloads.profiles import ActivityProfile, ProfiledWorkload

#: Paper Figure 5a benchmark order.
SPEC_NAMES = (
    "perlbench", "bzip2", "gcc", "bwaves", "gamess", "mcf", "milc",
    "zeusmp", "gromacs", "cactusADM", "leslie3d", "namd", "gobmk",
    "dealII", "soplex", "povray", "calculix", "hmmer", "sjeng",
    "GemsFDTD", "libquantum", "h264ref", "tonto", "lbm", "omnetpp",
    "astar", "sphinx3", "xalancbmk",
)


def _profile(
    name: str,
    ipc: float,
    fxu: float,
    lsu: float,
    vsu: float,
    bru: float,
    mem: float,
    l1: float,
    l2: float,
    l3: float,
    store: float = 0.30,
    alternation: float = 0.55,
    smt2: float = 1.45,
    smt4: float = 1.80,
) -> ActivityProfile:
    main_memory = round(1.0 - l1 - l2 - l3, 6)
    return ActivityProfile(
        name=name,
        ipc=ipc,
        unit_mix={"FXU": fxu, "LSU": lsu, "VSU": vsu, "BRU": bru, "CRU": 0.02},
        memory_per_insn=mem,
        locality={"L1": l1, "L2": l2, "L3": l3, "MEM": main_memory},
        store_fraction=store,
        alternation=alternation,
        smt_scaling={1: 1.0, 2: smt2, 4: smt4},
    )


#: Per-benchmark activity profiles (per-thread, SMT-1).
#:                         name       ipc   fxu   lsu   vsu   bru   mem    l1     l2     l3    store  alt  smt2  smt4
_PROFILES = (
    _profile("perlbench",  1.60, 0.42, 0.42, 0.02, 0.22, 0.38, 0.970, 0.020, 0.007, 0.35, 0.38, 1.35, 1.60),
    _profile("bzip2",      1.30, 0.44, 0.40, 0.01, 0.15, 0.36, 0.920, 0.050, 0.020, 0.30, 0.34, 1.40, 1.70),
    _profile("gcc",        1.10, 0.42, 0.44, 0.01, 0.19, 0.40, 0.900, 0.060, 0.025, 0.35, 0.37, 1.45, 1.75),
    _profile("bwaves",     0.90, 0.18, 0.48, 0.45, 0.06, 0.45, 0.750, 0.120, 0.070, 0.25, 0.31, 1.55, 2.05),
    _profile("gamess",     2.20, 0.20, 0.42, 0.50, 0.08, 0.38, 0.980, 0.012, 0.005, 0.25, 0.32, 1.25, 1.80),
    _profile("mcf",        0.45, 0.40, 0.46, 0.00, 0.17, 0.42, 0.720, 0.120, 0.080, 0.25, 0.36, 1.65, 2.25),
    _profile("milc",       0.55, 0.16, 0.44, 0.40, 0.05, 0.40, 0.700, 0.120, 0.090, 0.30, 0.30, 1.60, 2.15),
    _profile("zeusmp",     1.00, 0.22, 0.44, 0.45, 0.06, 0.40, 0.850, 0.070, 0.040, 0.30, 0.31, 1.50, 1.90),
    _profile("gromacs",    1.65, 0.20, 0.38, 0.55, 0.07, 0.33, 0.960, 0.025, 0.010, 0.25, 0.32, 1.35, 1.72),
    _profile("cactusADM",  0.75, 0.18, 0.46, 0.50, 0.04, 0.42, 0.780, 0.100, 0.070, 0.30, 0.30, 1.58, 2.10),
    _profile("leslie3d",   0.85, 0.18, 0.48, 0.45, 0.05, 0.44, 0.800, 0.100, 0.060, 0.30, 0.30, 1.55, 2.05),
    _profile("namd",       1.95, 0.18, 0.40, 0.60, 0.06, 0.35, 0.970, 0.020, 0.007, 0.25, 0.33, 1.28, 1.75),
    _profile("gobmk",      1.20, 0.45, 0.38, 0.01, 0.21, 0.33, 0.940, 0.040, 0.012, 0.30, 0.38, 1.42, 1.72),
    _profile("dealII",     1.40, 0.25, 0.44, 0.40, 0.09, 0.40, 0.940, 0.040, 0.012, 0.30, 0.34, 1.40, 1.68),
    _profile("soplex",     0.70, 0.28, 0.48, 0.30, 0.08, 0.45, 0.820, 0.090, 0.050, 0.30, 0.32, 1.58, 2.08),
    _profile("povray",     1.62, 0.28, 0.40, 0.45, 0.13, 0.35, 0.970, 0.020, 0.007, 0.28, 0.36, 1.33, 1.68),
    _profile("calculix",   1.75, 0.22, 0.41, 0.50, 0.06, 0.37, 0.950, 0.032, 0.012, 0.28, 0.32, 1.35, 1.72),
    _profile("hmmer",      2.30, 0.50, 0.47, 0.01, 0.09, 0.45, 0.985, 0.010, 0.003, 0.35, 0.36, 1.22, 1.85),
    _profile("sjeng",      1.35, 0.46, 0.36, 0.01, 0.20, 0.30, 0.950, 0.033, 0.011, 0.28, 0.37, 1.40, 1.68),
    _profile("GemsFDTD",   0.70, 0.17, 0.48, 0.45, 0.04, 0.45, 0.760, 0.110, 0.070, 0.32, 0.29, 1.60, 2.12),
    _profile("libquantum", 0.70, 0.40, 0.40, 0.02, 0.15, 0.33, 0.700, 0.080, 0.070, 0.30, 0.31, 1.62, 2.20),
    _profile("h264ref",    2.05, 0.44, 0.46, 0.06, 0.10, 0.42, 0.960, 0.028, 0.009, 0.33, 0.36, 1.26, 1.78),
    _profile("tonto",      1.30, 0.22, 0.42, 0.50, 0.07, 0.38, 0.930, 0.045, 0.015, 0.28, 0.32, 1.42, 1.70),
    _profile("lbm",        0.55, 0.15, 0.50, 0.40, 0.03, 0.47, 0.720, 0.100, 0.080, 0.40, 0.29, 1.64, 2.22),
    _profile("omnetpp",    0.60, 0.38, 0.44, 0.01, 0.19, 0.40, 0.800, 0.100, 0.060, 0.32, 0.37, 1.60, 2.15),
    _profile("astar",      0.85, 0.42, 0.42, 0.01, 0.18, 0.38, 0.850, 0.080, 0.045, 0.28, 0.36, 1.55, 2.00),
    _profile("sphinx3",    0.90, 0.22, 0.44, 0.40, 0.07, 0.42, 0.840, 0.080, 0.050, 0.25, 0.31, 1.52, 1.95),
    _profile("xalancbmk",  0.90, 0.40, 0.45, 0.01, 0.20, 0.43, 0.860, 0.090, 0.035, 0.32, 0.38, 1.55, 2.02),
)

_BY_NAME = {profile.name: profile for profile in _PROFILES}

assert tuple(profile.name for profile in _PROFILES) == SPEC_NAMES


def spec_profile(name: str) -> ActivityProfile:
    """Profile of one SPEC CPU2006 benchmark."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC benchmark {name!r}; known: {', '.join(SPEC_NAMES)}"
        ) from None


def spec_cpu2006() -> list[ProfiledWorkload]:
    """The full 28-benchmark proxy suite, in paper order."""
    return [ProfiledWorkload(profile) for profile in _PROFILES]
