"""``python -m repro`` -- headless measurement campaigns.

Every subcommand drives the experiment execution engine
(:mod:`repro.exec`): it builds an experiment plan, executes it serially
or sharded across worker processes (``--parallel N``), and optionally
persists every measurement in an on-disk result store (``--store
DIR``) so re-runs are served from disk without touching the machine
substrate.

Subcommands::

    sweep       a workload set across a CMP-SMT (x DVFS) sweep,
                or across heterogeneous big.LITTLE topologies
    campaign    the full section-4 modeling campaign + PAAE report
    stressmark  the section-6 max-power stressmark hunt
    store       audit (verify) or repair/compact (scrub) a result store
    serve       run the campaign service: a resident, multi-tenant
                measurement server over HTTP/JSON

Any measuring subcommand accepts ``--server URL`` to execute its plan
on a running campaign service instead of in-process -- results are
bit-identical either way, but the service keeps machines, caches, the
worker pool and the store resident across clients and dedupes
overlapping in-flight plans.

Examples::

    python -m repro sweep --workloads spec --parallel 4 --store .store
    python -m repro sweep --topology 8big,4big+4little,8little
    python -m repro campaign --scale 0.05 --loop-size 256 --store .store
    python -m repro -v stressmark --loop-size 384 --parallel 4
    python -m repro store verify --store .store
    python -m repro serve --store .store --parallel 4 --port 8787
    python -m repro sweep --workloads daxpy --server http://127.0.0.1:8787
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from collections.abc import Sequence

from repro.exec.executors import default_executor
from repro.march import get_architecture
from repro.sim import (
    Machine,
    parse_config,
    parse_topology,
    standard_configurations,
)
from repro.sim.pstate import get_pstate

logger = logging.getLogger("repro.cli")


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="shard plan cells across N worker processes (default: the "
        "REPRO_PARALLEL environment variable, else serial)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="persist measurements in an on-disk result store; warm "
        "cells are served from disk (default: the REPRO_STORE "
        "environment variable, else no store)",
    )
    parser.add_argument(
        "--arch", default="POWER7", help="architecture name (default POWER7)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="machine seed (default 0)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="S",
        help="measurement window in seconds (default 10)",
    )
    parser.add_argument(
        "--no-vector",
        action="store_true",
        help="force the scalar reference measurement path "
        "(equivalent to REPRO_VECTOR=0; both paths are bit-identical)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print the machine's memo-cache hit/miss counters "
        "at the end of the run",
    )
    parser.add_argument(
        "--server",
        metavar="URL",
        help="execute the plan on a running campaign service "
        "(python -m repro serve) instead of in-process; bit-identical "
        "results (default: the REPRO_SERVER environment variable, "
        "else local execution)",
    )
    parser.add_argument(
        "--shards",
        metavar="URL[,URL...]",
        help="shard the plan by content-addressed cell key across "
        "several campaign-service endpoints plus this process "
        "(python -m repro serve replicas); results are bit-identical "
        "to local execution, merged through --store when given "
        "(default: the REPRO_SHARDS environment variable)",
    )
    parser.add_argument(
        "--wire",
        choices=("auto", "1", "2"),
        default="auto",
        help="plan wire format for --server/--shards submissions: "
        "1 inline cells, 2 digest-pooled (v2); auto negotiates per "
        "server and falls back to v1 for old servers (default: the "
        "REPRO_WIRE environment variable, else auto); results are "
        "bit-identical either way",
    )


def _build_machine(arch, args: argparse.Namespace) -> Machine:
    # --no-vector pins the scalar path; otherwise the REPRO_VECTOR
    # environment default applies.
    return Machine(
        arch, seed=args.seed, vector=False if args.no_vector else None
    )


def _build_executor(machine: Machine, args: argparse.Namespace):
    # Explicit flags win; unset flags fall back to the documented
    # REPRO_PARALLEL / REPRO_STORE / REPRO_SERVER / REPRO_SHARDS
    # environment knobs.
    shards = getattr(args, "shards", None) or os.environ.get("REPRO_SHARDS")
    wire_choice = getattr(args, "wire", "auto")
    wire = int(wire_choice) if wire_choice in ("1", "2") else None
    if shards:
        from repro.exec.shards import ShardedExecutor
        from repro.exec.store import ResultStore

        store_dir = getattr(args, "store", None) or os.environ.get(
            "REPRO_STORE"
        )
        return ShardedExecutor(
            machine,
            shards,
            store=ResultStore(store_dir) if store_dir else None,
            wire=wire,
        )
    server = getattr(args, "server", None) or os.environ.get("REPRO_SERVER")
    if server:
        from repro.exec.client import RemoteExecutor

        return RemoteExecutor(
            server,
            arch=args.arch,
            seed=args.seed,
            vector=False if args.no_vector else None,
            wire=wire,
        )
    return default_executor(machine, parallel=args.parallel, store=args.store)


def _report_store(executor) -> None:
    store = executor.store
    if store is not None:
        print(
            f"store {store.root}: {store.hits} cells warm, "
            f"{store.misses} measured this run, {len(store)} total"
        )
        stats = store.fault_stats()
        if stats:
            print(
                "store faults: "
                + ", ".join(
                    f"{name}={value}" for name, value in sorted(stats.items())
                )
            )
    # Surface any recovery work (retries, respawns, quarantines) the
    # run needed; a clean run prints nothing extra.
    report = getattr(executor, "last_report", None)
    if report is not None and (report.failures or report.fault_counters):
        print(f"execution: {report.describe()}")


def _report_cache_stats(machine: Machine, args: argparse.Namespace) -> None:
    """Print (and log) the substrate's memo-cache counters."""
    if not args.cache_stats:
        return
    stats = machine.cache_stats()
    print("=== cache stats ===")
    for name in sorted(stats):
        counters = stats[name]
        print(
            f"{name:>20s}  {counters['hits']:>8d} hits  "
            f"{counters['misses']:>8d} misses  "
            f"{counters['size']:>6d}/{counters['capacity']} held  "
            f"{counters['evictions']} evicted"
        )
        logger.info("cache %s: %s", name, counters)


# -- sweep ---------------------------------------------------------------------


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.measure.runner import MeasurementRunner
    from repro.workloads import daxpy_kernels, extreme_kernels, spec_cpu2006

    arch = get_architecture(args.arch)
    machine = _build_machine(arch, args)
    if args.workloads == "spec":
        workloads = spec_cpu2006()
    elif args.workloads == "daxpy":
        workloads = daxpy_kernels(arch, loop_size=args.loop_size)
    else:
        workloads = list(extreme_kernels(arch, loop_size=args.loop_size).values())

    if args.topology:
        # Heterogeneous sweep: each spec is one big.LITTLE chip shape.
        configs = [
            parse_topology(spec) for spec in args.topology.split(",")
        ]
    elif args.configs:
        configs = [parse_config(label) for label in args.configs.split(",")]
    else:
        configs = list(
            standard_configurations(arch.chip.max_cores, arch.chip.smt_modes())
        )
    p_states = (
        [get_pstate(name) for name in args.p_states.split(",")]
        if args.p_states
        else None
    )

    executor = _build_executor(machine, args)
    runner = MeasurementRunner(machine, args.duration, executor=executor)
    logger.info(
        "sweep: %d workloads x %d configurations%s",
        len(workloads),
        len(configs),
        f" x {len(p_states)} p-states" if p_states else "",
    )
    sweep = runner.run_sweep(workloads, configs=configs, p_states=p_states)

    print(f"=== {args.workloads} sweep: {len(sweep)} configurations ===")
    width = max(len(config.label) for config in sweep)
    for config, measurements in sweep.items():
        powers = [measurement.mean_power for measurement in measurements]
        hottest = max(measurements, key=lambda m: m.mean_power)
        print(
            f"{config.label:>{max(8, width)}s}  "
            f"mean {sum(powers) / len(powers):7.1f} W  "
            f"max {hottest.mean_power:7.1f} W ({hottest.workload_name})"
        )
    _report_store(executor)
    _report_cache_stats(machine, args)
    return 0


# -- campaign ------------------------------------------------------------------


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.power_model.campaign import ModelingCampaign
    from repro.power_model.metrics import max_error, paae

    arch = get_architecture(args.arch)
    machine = _build_machine(arch, args)
    executor = _build_executor(machine, args)
    campaign = ModelingCampaign(
        machine,
        scale=args.scale,
        loop_size=args.loop_size,
        duration=args.duration,
        seed=args.seed,
        executor=executor,
    )
    result = campaign.run()

    validation = [
        measurement
        for measurements in result.spec_by_config.values()
        for measurement in measurements
    ]
    models = {"BU": result.bottom_up, **result.top_down}
    print(
        f"=== modeling campaign: scale {args.scale}, "
        f"{len(result.configs)} configurations, "
        f"{len(validation)} SPEC validation measurements ==="
    )
    for name, model in models.items():
        print(
            f"{name:>10s}  PAAE {paae(model.predict, validation):5.2f} %  "
            f"max error {max_error(model.predict, validation):5.2f} %"
        )
    _report_store(executor)
    _report_cache_stats(machine, args)
    return 0


# -- stressmark ----------------------------------------------------------------


def _cmd_stressmark(args: argparse.Namespace) -> int:
    from repro.march.bootstrap import Bootstrapper
    from repro.stressmark import (
        select_candidates,
        spec_power_baseline,
        stressmark_search,
    )
    from repro.stressmark.report import (
        best_sequence,
        order_spread_analysis,
        summarize_set,
    )
    from repro.stressmark.search import covering_sequences

    arch = get_architecture(args.arch)
    machine = _build_machine(arch, args)
    executor = _build_executor(machine, args)

    logger.info("bootstrapping per-instruction EPI/IPC records")
    # The bootstrap routes through the same executor, so a warm store
    # serves the whole-ISA probe -- the command's dominant cost -- too.
    # Paper-standard 10 s windows for the bootstrap regardless of
    # --duration: the EPI/latency records are reference data.
    records = Bootstrapper(
        arch,
        machine,
        loop_size=args.bootstrap_loop,
        executor=executor,
    ).run()
    candidates = select_candidates(arch, records)
    print(f"IPC*EPI candidates per unit: {candidates}")

    logger.info("measuring the SPEC maximum-power baseline")
    baseline = spec_power_baseline(
        machine, duration=args.duration, executor=executor
    )
    print(f"SPEC CPU2006 maximum: {baseline:.1f} W")

    sequences = covering_sequences(tuple(candidates.values()))
    results = stressmark_search(
        machine,
        sequences,
        loop_size=args.loop_size,
        duration=args.duration,
        executor=executor,
    )
    summary = summarize_set("MicroProbe", results, baseline)
    spread = order_spread_analysis(results, baseline)
    print(f"best stressmark: {' '.join(best_sequence(results))}")
    print(
        f"max power: {summary.maximum:.3f}x the SPEC maximum "
        f"(+{(summary.maximum - 1) * 100:.1f}%; paper: +10.7%)"
    )
    print(
        f"order-only spread at max IPC: {spread.spread_percent:.1f}% over "
        f"{spread.sequences_at_max_ipc} orderings (paper: ~17%)"
    )
    _report_store(executor)
    _report_cache_stats(machine, args)
    return 0


# -- store ---------------------------------------------------------------------


# -- serve ---------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.exec.service import MeasurementService, build_server

    parallel = args.parallel
    if parallel is None:
        raw = os.environ.get("REPRO_PARALLEL", "")
        parallel = int(raw) if raw.strip() else None
    store = args.store or os.environ.get("REPRO_STORE")
    port = args.port
    if port is None:
        port = int(os.environ.get("REPRO_SERVE_PORT", "8787"))
    token = args.token or os.environ.get("REPRO_TOKEN")

    from repro.exec.serialize import DEFAULT_INTERN_CAPACITY

    intern_capacity = args.intern_cache
    if intern_capacity is None:
        raw = os.environ.get("REPRO_INTERN_CACHE", "")
        intern_capacity = (
            int(raw) if raw.strip() else DEFAULT_INTERN_CAPACITY
        )
    service = MeasurementService(
        store=store,
        parallel=parallel,
        token=token,
        max_inflight_cells=args.max_inflight_cells,
        max_requests=args.max_requests,
        write_deadline=args.write_deadline,
        intern_capacity=intern_capacity,
        wire_v2=not args.wire_v1,
    )
    server = build_server(service, host=args.host, port=port)
    bound = f"http://{args.host}:{server.server_port}"
    print(
        f"campaign service on {bound} "
        f"(store: {store or 'none'}, "
        f"workers: {parallel or 'serial'}, "
        f"auth: {'token' if token else 'open'}, "
        f"wire: {'+'.join(str(v) for v in service.wire_versions)})",
        flush=True,
    )
    logger.info(
        "endpoints: POST /plans, GET /runs, GET /runs/<id>, GET /stats, "
        "GET /health"
    )

    # SIGTERM drains: stop admitting (503 + Retry-After), let in-flight
    # submissions finish streaming, flush the registry, exit 0.  The
    # actual shutdown must run off-signal -- server.shutdown() blocks
    # until serve_forever returns.
    def _drain(signo, frame):  # pragma: no cover - signal path
        service.drain()
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("campaign service shutting down")
    finally:
        if service.draining:
            drained = service.wait_idle(timeout=args.drain_grace)
            print(
                "campaign service drained"
                if drained
                else f"campaign service drain grace ({args.drain_grace:g}s) "
                "expired with requests still in flight",
                flush=True,
            )
        server.server_close()
        service.close()
    return 0


# -- store ---------------------------------------------------------------------


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.exec.journal import audit_journals, gc_journals
    from repro.exec.registry import RunRegistry
    from repro.exec.store import ResultStore

    root = args.store or os.environ.get("REPRO_STORE")
    if not root:
        print(
            "store: no store directory (pass --store DIR or set REPRO_STORE)",
            file=sys.stderr,
        )
        return 2
    store = ResultStore(root)
    if args.action == "index":
        rebuilt = store.rebuild_index()
        print(
            f"store {store.root}: rebuilt {rebuilt} sidecar index(es), "
            f"{len(store)} cell(s) indexed"
        )
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"store {store.root}: {report.describe()}")
        journals = audit_journals(store.root)
        if journals["runs"]:
            print(
                f"journals: {journals['runs']} run(s), "
                f"{journals['complete']} complete, "
                f"{journals['interrupted']} interrupted"
            )
        registry = RunRegistry(store.root)
        if len(registry):
            summary = registry.summary()
            print(
                f"registry: {summary['runs']} run(s), "
                f"{summary['complete']} complete, "
                f"{summary['interrupted']} interrupted, "
                f"{summary['quarantined']} quarantined, "
                f"{summary['running']} running"
            )
        if not report.ok:
            print(
                "store has damaged records; "
                "run `python -m repro store scrub` to repair",
                file=sys.stderr,
            )
            return 1
        return 0
    report = store.scrub()
    print(f"store {store.root}: {report.describe()}")
    # Scrub is also the retention pass: journals of completed runs
    # whose cells are durable carry nothing the store does not, and
    # the run registry collapses to one line per run.
    removed = gc_journals(store)
    if removed:
        print(f"journals: {removed} completed run journal(s) reclaimed")
    registry = RunRegistry(store.root)
    if len(registry):
        dropped = registry.compact()
        if dropped > 0:
            print(f"registry: compacted away {dropped} superseded line(s)")
    return 0


# -- entry point ---------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Headless measurement campaigns over the execution engine.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="log engine/campaign progress to stderr",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sweep = subparsers.add_parser(
        "sweep", help="measure a workload set across a configuration sweep"
    )
    sweep.add_argument(
        "--workloads",
        choices=("spec", "daxpy", "extreme"),
        default="spec",
        help="workload set (default spec)",
    )
    sweep.add_argument(
        "--configs",
        metavar="LIST",
        help="comma-separated configuration labels (e.g. 8-1,8-4@p2); "
        "default: the full 24-configuration sweep",
    )
    sweep.add_argument(
        "--topology",
        metavar="LIST",
        help="comma-separated heterogeneous chip topologies to sweep "
        "instead of CMP-SMT configurations (e.g. "
        "8big,4big+4little,4big-2@p2+4little); overrides --configs",
    )
    sweep.add_argument(
        "--p-states",
        metavar="LIST",
        help="comma-separated p-state names to cross with the sweep",
    )
    sweep.add_argument(
        "--loop-size",
        type=int,
        default=1024,
        help="generated-kernel loop size (daxpy/extreme sets)",
    )
    _add_engine_options(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    campaign = subparsers.add_parser(
        "campaign", help="run the section-4 modeling campaign"
    )
    campaign.add_argument(
        "--scale",
        type=float,
        default=0.3,
        help="training-suite scale factor (1.0 = paper scale)",
    )
    campaign.add_argument(
        "--loop-size", type=int, default=1024, help="generated loop size"
    )
    _add_engine_options(campaign)
    campaign.set_defaults(handler=_cmd_campaign)

    stressmark = subparsers.add_parser(
        "stressmark", help="run the section-6 max-power stressmark hunt"
    )
    stressmark.add_argument(
        "--loop-size",
        type=int,
        default=384,
        help="stressmark loop size (steady-state metrics are "
        "size-invariant)",
    )
    stressmark.add_argument(
        "--bootstrap-loop",
        type=int,
        default=256,
        help="bootstrap micro-benchmark loop size",
    )
    _add_engine_options(stressmark)
    stressmark.set_defaults(handler=_cmd_stressmark)

    store = subparsers.add_parser(
        "store", help="audit or repair an on-disk result store"
    )
    store.add_argument(
        "action",
        choices=("verify", "scrub", "index"),
        help="verify: read-only audit (checksums, torn tails, sidecar "
        "indexes, run journals; exit 1 on damage); scrub: repair and "
        "compact every shard in place; index: force-rebuild every "
        "shard's persistent sidecar index from a full scan",
    )
    store.add_argument(
        "--store",
        metavar="DIR",
        help="store directory (default: the REPRO_STORE environment "
        "variable)",
    )
    store.set_defaults(handler=_cmd_store)

    serve = subparsers.add_parser(
        "serve",
        help="run the campaign service: a resident multi-tenant "
        "measurement server over HTTP/JSON",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="port to bind; 0 picks an ephemeral port (default: the "
        "REPRO_SERVE_PORT environment variable, else 8787)",
    )
    serve.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="shard each plan across N resident worker processes "
        "(default: REPRO_PARALLEL, else serial)",
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        help="result store backing the service; warm cells are served "
        "from disk with zero measurements (default: REPRO_STORE, "
        "else no store)",
    )
    serve.add_argument(
        "--token",
        metavar="SECRET",
        default=None,
        help="require 'Authorization: Bearer SECRET' on every endpoint "
        "but /health (default: the REPRO_TOKEN environment variable, "
        "else open)",
    )
    serve.add_argument(
        "--max-inflight-cells",
        type=int,
        default=None,
        metavar="N",
        help="admission budget: reject plan submissions with 429 + "
        "Retry-After while more than N cells are admitted and "
        "unfinished (default: unbounded)",
    )
    serve.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="admission budget: at most N concurrently admitted plan "
        "submissions; excess answers 429 + Retry-After (default: "
        "unbounded)",
    )
    serve.add_argument(
        "--write-deadline",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-connection socket deadline; a client that stops "
        "draining its response stream is disconnected instead of "
        "wedging the engine queue (default 60)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM, how long to wait for in-flight submissions "
        "to finish streaming before exiting (default 30)",
    )
    serve.add_argument(
        "--intern-cache",
        type=int,
        default=None,
        metavar="N",
        help="cross-request wire intern cache capacity: distinct "
        "workloads/configs kept rebuilt and digest-pinned so repeat "
        "campaigns deserialize zero kernels (default 4096; 0 disables)",
    )
    serve.add_argument(
        "--wire-v1",
        action="store_true",
        help="refuse wire-format-v2 (digest-pooled) plan bodies and "
        "advertise v1 only, exactly like a pre-v2 server (migration "
        "escape hatch; results are identical either way)",
    )
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
