"""The IPC*EPI candidate-selection heuristic (paper section 6).

Prior stressmark generators treat the machine as a black box and search
abstract workload spaces.  MicroProbe's differentiator is using the
bootstrapped per-instruction information to prune the space *before*
searching: per functional unit, keep the instruction with the highest
IPC*EPI product -- a balanced trade-off that penalizes high-IPC/low-EPI
and low-IPC/high-EPI extremes alike.
"""

from __future__ import annotations

from repro.errors import SearchError
from repro.march.bootstrap import BootstrapRecord
from repro.march.definition import MicroArchitecture

#: The execution units the stressmark targets (power components; the
#: branch and CR plumbing units contribute negligibly).
TARGET_UNITS = ("FXU", "LSU", "VSU")


def select_candidates(
    arch: MicroArchitecture,
    records: dict[str, BootstrapRecord],
    units: tuple[str, ...] = TARGET_UNITS,
) -> dict[str, str]:
    """Per unit, the mnemonic maximizing measured IPC * EPI.

    Only *pure* single-unit instructions are considered -- exactly one
    unit usage, no alternatives, one operation -- matching the paper's
    Table 3 category tops (``mulldo``, ``lxvw4x``, ``xvnmsubmdp`` on
    the POWER7): flexible simple-integer ops and cracked compound forms
    belong to their own categories, not to the unit categories the
    stressmark draws from.

    Raises:
        SearchError: If no candidate exists for some unit.
    """
    winners: dict[str, tuple[str, float]] = {}
    for mnemonic, record in records.items():
        props = arch.props(mnemonic)
        if len(props.usages) != 1:
            continue
        usage = props.usages[0]
        if usage.is_flexible or usage.ops != 1:
            continue
        unit = usage.units[0]
        if unit not in units:
            continue
        if arch.isa.instruction(mnemonic).is_store:
            continue
        score = record.throughput_ipc * record.epi_nj
        best = winners.get(unit)
        if best is None or score > best[1]:
            winners[unit] = (mnemonic, score)

    missing = [unit for unit in units if unit not in winners]
    if missing:
        raise SearchError(
            f"no IPC*EPI candidates found for units: {missing}"
        )
    return {unit: winners[unit][0] for unit in units}
