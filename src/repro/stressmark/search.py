"""Stressmark construction and the sequence design space.

The case study fixes everything except the 6-instruction sequence that
is replicated to fill the 4K endless loop: maximum activity means no
dependencies and no cache misses (L1-resident addresses), so the only
remaining dimensions are *which* instructions fill the sequence slots
and *in what order* -- and order alone moves power by double-digit
percents (section 6's 17 % observation).
"""

from __future__ import annotations

import logging
import math
from collections.abc import Iterable, Sequence

from repro.caching import LRUCache
from repro.dse.space import DesignPoint, DesignSpace
from repro.march.definition import MicroArchitecture
from repro.sim.kernel import Kernel, KernelInstruction

logger = logging.getLogger("repro.stressmark")

#: Interned loop-body slots: stressmark spaces reuse a small set of
#: (mnemonic, level, address) combinations across hundreds of
#: sequences, and :class:`~repro.sim.kernel.KernelInstruction` is
#: frozen, so sharing instances across kernels is safe and makes
#: building a 540-point space mostly dictionary lookups.
_SLOT_CACHE: LRUCache = LRUCache(65_536, "stressmark.slots")

#: Paper sequence length.
SEQUENCE_LENGTH = 6
#: Paper loop size; evaluations may use a smaller replication since the
#: steady-state metrics are invariant to it.
DEFAULT_LOOP_SIZE = 4096

#: L1-resident address region for the stressmark's memory slots.
_L1_REGION_BASE = 0x1000_0000
_L1_REGION_BYTES = 4096


def build_stressmark(
    arch: MicroArchitecture,
    sequence: Sequence[str],
    loop_size: int = DEFAULT_LOOP_SIZE,
    name: str | None = None,
) -> Kernel:
    """An endless loop replicating ``sequence``, dependency-free and
    L1-resident -- the stressmark recipe of section 6.

    The per-slot content (mnemonic, planned L1 address) is periodic:
    mnemonics repeat every ``len(sequence)`` slots and the round-robin
    L1 addresses every ``region / line`` slots, so the body is one
    pattern of ``lcm`` of the two lengths replicated to fill the loop.
    The builder materializes that pattern once, fills the loop by tuple
    replication, and stamps the kernel with the period fingerprint the
    evaluation engine consumes -- construction plus steady-state
    analysis cost O(period), not O(loop size).
    """
    if not sequence:
        raise ValueError("sequence must not be empty")
    if name is None:
        name = "stressmark-" + "-".join(sequence)
    line = arch.caches[0].line_bytes
    l1_name = arch.caches[0].name
    region_lines = max(1, _L1_REGION_BYTES // line)

    # Per-mnemonic memory-ness resolved once, not once per slot.
    is_memory_slot = {}
    for mnemonic in set(sequence):
        definition = arch.isa.instruction(mnemonic)
        is_memory_slot[mnemonic] = (
            definition.is_memory and not definition.is_prefetch
        )
    has_memory = any(is_memory_slot.values())
    pattern_length = (
        math.lcm(len(sequence), region_lines) if has_memory else len(sequence)
    )
    pattern_length = min(pattern_length, loop_size)

    pattern = []
    for index in range(pattern_length):
        mnemonic = sequence[index % len(sequence)]
        if is_memory_slot[mnemonic]:
            offset = (index * line) % _L1_REGION_BYTES
            slot_key = (mnemonic, l1_name, _L1_REGION_BASE + offset)
        else:
            slot_key = (mnemonic, None, None)
        slot = _SLOT_CACHE.get(slot_key)
        if slot is None:
            slot = KernelInstruction(
                mnemonic=mnemonic,
                source_level=slot_key[1],
                address=slot_key[2],
            )
            _SLOT_CACHE.put(slot_key, slot)
        pattern.append(slot)

    pattern = tuple(pattern)
    repeats, remainder = divmod(loop_size, pattern_length)
    instructions = pattern * repeats + pattern[:remainder]
    # Loop-closing branch, as the skeleton pass would emit.
    branch_key = ("b", None, None)
    branch = _SLOT_CACHE.get(branch_key)
    if branch is None:
        branch = KernelInstruction(mnemonic="b")
        _SLOT_CACHE.put(branch_key, branch)
    instructions += (branch,)
    # The fingerprint contract places everything outside the replicated
    # pattern in the remainder tail; when the branch would land exactly
    # on a period boundary ((loop_size + 1) % pattern_length == 0) the
    # body has no remainder to hold it, so no period is declared.
    period = pattern_length if (loop_size + 1) % pattern_length else None
    # The declared period is the mnemonic/address lcm, but the
    # *analytic* content (addresses excluded) repeats every
    # len(sequence) slots -- declare that too, so the evaluation
    # engine summarizes in O(sequence) without a periodicity search.
    analytic = (
        len(sequence)
        if period is not None and not pattern_length % len(sequence)
        else None
    )
    return Kernel(
        name=name,
        instructions=instructions,
        operand_entropy=1.0,
        period=period,
        analytic_period=analytic,
    )


def sequence_space(
    candidates: Iterable[str], length: int = SEQUENCE_LENGTH
) -> DesignSpace:
    """The design space: one candidate mnemonic per sequence slot."""
    return DesignSpace.from_slots(length, tuple(candidates))


def point_to_sequence(point: DesignPoint, length: int = SEQUENCE_LENGTH) -> tuple[str, ...]:
    """Decode a design point into the instruction sequence."""
    return tuple(point[f"slot{index}"] for index in range(length))


def covering_sequences(
    candidates: Sequence[str], length: int = SEQUENCE_LENGTH
) -> list[tuple[str, ...]]:
    """All sequences using *every* candidate at least once.

    For three candidates and six slots this is the paper's 540-point
    space (3^6 minus the sequences that drop an instruction).
    """
    import itertools

    required = set(candidates)
    return [
        sequence
        for sequence in itertools.product(candidates, repeat=length)
        if required <= set(sequence)
    ]


def spec_power_baseline(
    machine, duration: float = 10.0, executor=None
) -> float:
    """The Figure-9 baseline: maximum SPEC CPU2006 proxy power.

    One definition shared by the figure harness, the CLI and the
    examples: every SPEC proxy on all cores in every SMT mode, maximum
    mean sensor power.  Routed through the execution engine, so a
    store-backed executor serves a warm baseline without touching the
    machine.
    """
    from repro.exec.executors import default_executor
    from repro.exec.plan import ExperimentPlan
    from repro.sim.config import MachineConfig
    from repro.workloads.spec import spec_cpu2006

    arch = machine.arch
    if executor is None:
        executor = default_executor(machine)
    plan = ExperimentPlan.cross(
        spec_cpu2006(),
        [
            MachineConfig(arch.chip.max_cores, smt)
            for smt in arch.chip.smt_modes()
        ],
        duration=duration,
    )
    logger.info("SPEC baseline: %s", plan.describe())
    return max(
        measurement.mean_power for measurement in executor.run(plan)
    )


def stressmark_search(
    machine,
    sequences: Iterable[tuple[str, ...]],
    smt_modes: tuple[int, ...] = (1, 2, 4),
    loop_size: int = 768,
    duration: float = 10.0,
    executor=None,
) -> list[tuple[tuple[str, ...], int, float, float]]:
    """Measure every sequence in every SMT mode on all cores.

    Returns ``(sequence, smt, power, core_ipc)`` tuples -- the raw
    material for the Figure 9 summaries and the max-IPC order-spread
    analysis.

    The whole search is one experiment plan (sequences x SMT modes)
    handed to ``executor`` -- by default the environment-resolved
    executor, so ``REPRO_PARALLEL``/``REPRO_STORE`` shard the search
    across workers or serve a warm re-run from disk with zero machine
    invocations.
    """
    from repro.exec.executors import default_executor
    from repro.exec.plan import ExperimentPlan
    from repro.sim.config import MachineConfig

    arch = machine.arch
    cores = arch.chip.max_cores
    sequences = list(sequences)
    kernels = [
        build_stressmark(arch, sequence, loop_size) for sequence in sequences
    ]
    configs = [MachineConfig(cores, smt) for smt in smt_modes]
    if executor is None:
        executor = default_executor(machine)
    plan = ExperimentPlan.cross(kernels, configs, duration=duration)
    logger.info(
        "stressmark search: %d sequences x %d SMT modes (%s)",
        len(sequences),
        len(smt_modes),
        plan.describe(),
    )
    # Configuration-major plan: the measurements of SMT mode ``m`` are
    # the contiguous slice ``[m * len(kernels), (m + 1) * len(kernels))``.
    measurements = executor.run(plan)
    results = []
    for index, sequence in enumerate(sequences):
        for mode_index, smt in enumerate(smt_modes):
            measurement = measurements[mode_index * len(kernels) + index]
            ipc = arch.ipc(measurement.thread_counters[0]) * smt
            results.append((sequence, smt, measurement.mean_power, ipc))
    return results
