"""Stressmark construction and the sequence design space.

The case study fixes everything except the 6-instruction sequence that
is replicated to fill the 4K endless loop: maximum activity means no
dependencies and no cache misses (L1-resident addresses), so the only
remaining dimensions are *which* instructions fill the sequence slots
and *in what order* -- and order alone moves power by double-digit
percents (section 6's 17 % observation).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.dse.space import DesignPoint, DesignSpace
from repro.march.definition import MicroArchitecture
from repro.sim.kernel import Kernel, KernelInstruction

#: Paper sequence length.
SEQUENCE_LENGTH = 6
#: Paper loop size; evaluations may use a smaller replication since the
#: steady-state metrics are invariant to it.
DEFAULT_LOOP_SIZE = 4096

#: L1-resident address region for the stressmark's memory slots.
_L1_REGION_BASE = 0x1000_0000
_L1_REGION_BYTES = 4096


def build_stressmark(
    arch: MicroArchitecture,
    sequence: Sequence[str],
    loop_size: int = DEFAULT_LOOP_SIZE,
    name: str | None = None,
) -> Kernel:
    """An endless loop replicating ``sequence``, dependency-free and
    L1-resident -- the stressmark recipe of section 6."""
    if not sequence:
        raise ValueError("sequence must not be empty")
    if name is None:
        name = "stressmark-" + "-".join(sequence)
    line = arch.caches[0].line_bytes
    instructions = []
    for index in range(loop_size):
        mnemonic = sequence[index % len(sequence)]
        definition = arch.isa.instruction(mnemonic)
        if definition.is_memory and not definition.is_prefetch:
            offset = (index * line) % _L1_REGION_BYTES
            instructions.append(
                KernelInstruction(
                    mnemonic=mnemonic,
                    source_level=arch.caches[0].name,
                    address=_L1_REGION_BASE + offset,
                )
            )
        else:
            instructions.append(KernelInstruction(mnemonic=mnemonic))
    # Loop-closing branch, as the skeleton pass would emit.
    instructions.append(KernelInstruction(mnemonic="b"))
    return Kernel(
        name=name,
        instructions=tuple(instructions),
        operand_entropy=1.0,
    )


def sequence_space(
    candidates: Iterable[str], length: int = SEQUENCE_LENGTH
) -> DesignSpace:
    """The design space: one candidate mnemonic per sequence slot."""
    return DesignSpace.from_slots(length, tuple(candidates))


def point_to_sequence(point: DesignPoint, length: int = SEQUENCE_LENGTH) -> tuple[str, ...]:
    """Decode a design point into the instruction sequence."""
    return tuple(point[f"slot{index}"] for index in range(length))


def covering_sequences(
    candidates: Sequence[str], length: int = SEQUENCE_LENGTH
) -> list[tuple[str, ...]]:
    """All sequences using *every* candidate at least once.

    For three candidates and six slots this is the paper's 540-point
    space (3^6 minus the sequences that drop an instruction).
    """
    import itertools

    required = set(candidates)
    return [
        sequence
        for sequence in itertools.product(candidates, repeat=length)
        if required <= set(sequence)
    ]


def stressmark_search(
    machine,
    sequences: Iterable[tuple[str, ...]],
    smt_modes: tuple[int, ...] = (1, 2, 4),
    loop_size: int = 768,
    duration: float = 10.0,
) -> list[tuple[tuple[str, ...], int, float, float]]:
    """Measure every sequence in every SMT mode on all cores.

    Returns ``(sequence, smt, power, core_ipc)`` tuples -- the raw
    material for the Figure 9 summaries and the max-IPC order-spread
    analysis.
    """
    from repro.sim.config import MachineConfig

    arch = machine.arch
    cores = arch.chip.max_cores
    results = []
    for sequence in sequences:
        kernel = build_stressmark(arch, sequence, loop_size)
        for smt in smt_modes:
            measurement = machine.run(
                kernel, MachineConfig(cores, smt), duration
            )
            ipc = arch.ipc(measurement.thread_counters[0]) * smt
            results.append((sequence, smt, measurement.mean_power, ipc))
    return results
