"""Max-power stressmark generation (paper section 6)."""

from repro.stressmark.expert import expert_dse_set, expert_manual_set
from repro.stressmark.heuristics import select_candidates
from repro.stressmark.report import StressmarkReport, SetSummary
from repro.stressmark.search import (
    build_stressmark,
    sequence_space,
    spec_power_baseline,
    stressmark_search,
)

__all__ = [
    "SetSummary",
    "StressmarkReport",
    "build_stressmark",
    "expert_dse_set",
    "expert_manual_set",
    "select_candidates",
    "sequence_space",
    "spec_power_baseline",
    "stressmark_search",
]
