"""Expert stressmark sets (paper section 6 baselines).

The expert picks ``mullw``, ``xvmaddadp`` and ``lxvd2x``: the widest
data-path, highest-throughput instructions for the FXU, VSU and LSU --
exactly what a stressmark developer with target-machine experience
would do without a framework.  The *manual* set is a handful of
hand-written orderings; the *DSE* set is every 6-slot sequence using
all three instructions (540 points), which is what the expert would
run if given unlimited measurement time.
"""

from __future__ import annotations

from repro.stressmark.search import SEQUENCE_LENGTH, covering_sequences

#: The expert's instruction picks (paper section 6).
EXPERT_INSTRUCTIONS = ("mullw", "xvmaddadp", "lxvd2x")

#: Hand-crafted orderings an expert would plausibly try first.  The
#: expert reasons about unit coverage and IPC, not about inter-slot
#: switching activity, so the hand-written patterns group work by unit
#: (pairs and blocks) -- which is exactly why the DSE later finds
#: same-mix orderings that run visibly hotter.
_MANUAL_PATTERNS = (
    ("mullw", "mullw", "xvmaddadp", "xvmaddadp", "lxvd2x", "lxvd2x"),
    ("lxvd2x", "lxvd2x", "mullw", "mullw", "xvmaddadp", "xvmaddadp"),
    ("xvmaddadp", "xvmaddadp", "lxvd2x", "lxvd2x", "mullw", "mullw"),
    ("mullw", "mullw", "mullw", "xvmaddadp", "xvmaddadp", "lxvd2x"),
)


def expert_manual_set() -> list[tuple[str, ...]]:
    """The hand-crafted sequences."""
    return [tuple(pattern) for pattern in _MANUAL_PATTERNS]


def expert_dse_set(length: int = SEQUENCE_LENGTH) -> list[tuple[str, ...]]:
    """Every sequence over the expert picks using each at least once."""
    return covering_sequences(EXPERT_INSTRUCTIONS, length)
