"""Figure 9 reporting: stressmark sets versus the SPEC maximum.

All powers are normalized to the maximum power any SPEC CPU2006
benchmark exhibits across the all-core SMT modes -- the paper's
baseline of 1.0 in Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SearchError

#: Relative IPC slack within which a sequence counts as "maximum IPC"
#: for the order-spread analysis (section 6's 181-sequence set).
_MAX_IPC_TOLERANCE = 1e-3


@dataclass(frozen=True)
class SetSummary:
    """Min/mean/max normalized power of one stressmark set (Fig. 9 bars)."""

    name: str
    minimum: float
    mean: float
    maximum: float
    count: int


@dataclass(frozen=True)
class OrderSpread:
    """Power spread across same-IPC orderings (section 6 analysis)."""

    sequences_at_max_ipc: int
    min_normalized: float
    max_normalized: float

    @property
    def spread_percent(self) -> float:
        """Max-over-min power difference among max-IPC orderings."""
        if self.min_normalized <= 0:
            return 0.0
        return (self.max_normalized / self.min_normalized - 1.0) * 100.0


@dataclass(frozen=True)
class StressmarkReport:
    """Everything Figure 9 and the section-6 text report."""

    baseline_power: float  # SPEC max, absolute watts
    summaries: dict[str, SetSummary]
    best_sequences: dict[str, tuple[str, ...]]
    order_spread: OrderSpread | None = None

    def improvement_over_spec(self, set_name: str) -> float:
        """Percent by which a set's best stressmark beats the SPEC max."""
        return (self.summaries[set_name].maximum - 1.0) * 100.0


def summarize_set(
    name: str,
    results: list[tuple[tuple[str, ...], int, float, float]],
    baseline_power: float,
) -> SetSummary:
    """Reduce raw search results to a Figure 9 bar."""
    if not results:
        raise SearchError(f"stressmark set {name!r} has no results")
    powers = [power / baseline_power for _, _, power, _ in results]
    return SetSummary(
        name=name,
        minimum=min(powers),
        mean=sum(powers) / len(powers),
        maximum=max(powers),
        count=len(results),
    )


def best_sequence(
    results: list[tuple[tuple[str, ...], int, float, float]]
) -> tuple[str, ...]:
    """The sequence achieving the set's maximum power."""
    if not results:
        raise SearchError("no results to pick a best sequence from")
    return max(results, key=lambda row: row[2])[0]


def order_spread_analysis(
    results: list[tuple[tuple[str, ...], int, float, float]],
    baseline_power: float,
    smt: int = 1,
) -> OrderSpread:
    """Power spread among the max-IPC orderings of one SMT mode.

    Reproduces the paper's observation that sequences with identical
    instruction distribution and identical (maximum) core IPC still
    differ considerably in power purely through instruction order.
    """
    at_mode = [row for row in results if row[1] == smt]
    if not at_mode:
        raise SearchError(f"no results at SMT-{smt}")
    best_ipc = max(row[3] for row in at_mode)
    at_max = [
        row for row in at_mode
        if row[3] >= best_ipc * (1.0 - _MAX_IPC_TOLERANCE)
    ]
    powers = [row[2] / baseline_power for row in at_max]
    return OrderSpread(
        sequences_at_max_ipc=len(at_max),
        min_normalized=min(powers),
        max_normalized=max(powers),
    )
