"""Measurement and modeling campaign orchestration (paper section 4).

One object gathers everything the section-4 experiments need: the
Table 2 training measurements in the configurations each modeling step
requires, the SPEC proxy validation measurements across the full
CMP-SMT sweep, and the four fitted models (BU, TD_Micro, TD_Random,
TD_SPEC).  The benchmark harnesses and the integration tests all
consume this single entry point so the experiments stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.measure.measurement import Measurement
from repro.power_model.bottom_up import BottomUpModel, BottomUpTrainer
from repro.power_model.top_down import TopDownModel, TopDownTrainer
from repro.power_model.training import (
    TrainingBenchmark,
    generate_micro_suite,
    generate_random_suite,
)
from repro.sim.config import MachineConfig, standard_configurations
from repro.sim.machine import Machine
from repro.workloads.spec import spec_cpu2006


@dataclass
class CampaignResult:
    """Everything the section-4 experiments consume."""

    bottom_up: BottomUpModel
    top_down: dict[str, TopDownModel]
    configs: tuple[MachineConfig, ...]
    spec_by_config: dict[MachineConfig, list[Measurement]] = field(
        default_factory=dict
    )
    idle: Measurement | None = None


class ModelingCampaign:
    """Runs the full section-4 data gathering and model fitting."""

    def __init__(
        self,
        machine: Machine | None = None,
        scale: float = 1.0,
        loop_size: int = 4096,
        duration: float = 10.0,
        seed: int = 0,
    ) -> None:
        self.machine = machine if machine is not None else Machine()
        self.scale = scale
        self.loop_size = loop_size
        self.duration = duration
        self.seed = seed
        arch = self.machine.arch
        self.configs = standard_configurations(
            arch.chip.max_cores, arch.chip.smt_modes()
        )

    # -- data gathering -------------------------------------------------------

    def _run(self, workload, config: MachineConfig) -> Measurement:
        return self.machine.run(workload, config, self.duration)

    def gather(self) -> dict:
        """Generate the suite and run every measurement the steps need."""
        arch = self.machine.arch
        micro = generate_micro_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        randoms = generate_random_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        suite = micro + randoms

        # Step 1/2 measurements run with one benchmark copy per thread
        # on all cores: per-event weights are configuration-independent
        # (threads are homogeneous) and the 8x dynamic activity lifts
        # the unit-power signal well above sensor noise.
        cores = arch.chip.max_cores
        single = MachineConfig(cores, 1)
        smt2 = MachineConfig(cores, 2)
        smt4 = MachineConfig(cores, 4)

        data = {
            "suite": suite,
            "suite_smt1": [
                (bench.family, self._run(bench.kernel, single))
                for bench in suite
            ],
            "suite_smt2": [self._run(b.kernel, smt2) for b in suite],
            "suite_smt4": [self._run(b.kernel, smt4) for b in suite],
            "random_all": [
                self._run(bench.kernel, config)
                for bench in randoms
                for config in self.configs
            ],
            "micro_all": [
                self._run(bench.kernel, config)
                for bench in micro
                for config in self.configs
            ],
            "idle": self.machine.run_idle(duration=self.duration),
        }
        return data

    def gather_spec(self) -> dict[MachineConfig, list[Measurement]]:
        """SPEC proxy measurements across the full sweep."""
        suite = spec_cpu2006()
        return {
            config: [self._run(workload, config) for workload in suite]
            for config in self.configs
        }

    # -- model fitting ------------------------------------------------------------

    def run(self, sequential: bool = True) -> CampaignResult:
        """Gather data, fit all four models, measure SPEC validation."""
        data = self.gather()
        spec_by_config = self.gather_spec()

        bottom_up = BottomUpTrainer(sequential=sequential).train(
            suite_smt1=data["suite_smt1"],
            suite_smt2=data["suite_smt2"],
            suite_smt4=data["suite_smt4"],
            random_all_configs=data["random_all"],
            idle=data["idle"],
        )

        td_trainer = TopDownTrainer()
        spec_flat = [
            measurement
            for measurements in spec_by_config.values()
            for measurement in measurements
        ]
        top_down = {
            "TD_Micro": td_trainer.train("TD_Micro", data["micro_all"]),
            "TD_Random": td_trainer.train("TD_Random", data["random_all"]),
            "TD_SPEC": td_trainer.train("TD_SPEC", spec_flat),
        }
        return CampaignResult(
            bottom_up=bottom_up,
            top_down=top_down,
            configs=self.configs,
            spec_by_config=spec_by_config,
            idle=data["idle"],
        )
