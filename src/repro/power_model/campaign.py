"""Measurement and modeling campaign orchestration (paper section 4).

One object gathers everything the section-4 experiments need: the
Table 2 training measurements in the configurations each modeling step
requires, the SPEC proxy validation measurements across the full
CMP-SMT sweep, and the four fitted models (BU, TD_Micro, TD_Random,
TD_SPEC).  The benchmark harnesses and the integration tests all
consume this single entry point so the experiments stay consistent.

All data gathering is expressed as
:class:`~repro.exec.plan.ExperimentPlan` cross products and executed
through the campaign's executor: the default (environment-resolved)
executor keeps historical serial behaviour, while a parallel or
store-backed executor shards the hundreds of suite x configuration
cells across workers and/or serves warm re-runs from disk.  Under
every executor, the suite's kernel cells evaluate through the
machine's vectorized measurement plane (:mod:`repro.sim.vector`) --
whole sweeps as single tensor passes, bit-identical to the scalar
walk.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exec.executors import default_executor
from repro.exec.plan import ExperimentPlan
from repro.measure.measurement import Measurement
from repro.power_model.bottom_up import BottomUpModel, BottomUpTrainer
from repro.power_model.top_down import TopDownModel, TopDownTrainer
from repro.power_model.training import (
    TrainingBenchmark,
    generate_micro_suite,
    generate_random_suite,
)
from repro.sim.config import MachineConfig, standard_configurations
from repro.sim.machine import Machine
from repro.sim.pstate import NOMINAL, PState
from repro.workloads.spec import spec_cpu2006

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.executors import _ExecutorBase

logger = logging.getLogger("repro.campaign")


@dataclass
class CampaignResult:
    """Everything the section-4 experiments consume."""

    bottom_up: BottomUpModel
    top_down: dict[str, TopDownModel]
    configs: tuple[MachineConfig, ...]
    spec_by_config: dict[MachineConfig, list[Measurement]] = field(
        default_factory=dict
    )
    idle: Measurement | None = None


class ModelingCampaign:
    """Runs the full section-4 data gathering and model fitting."""

    def __init__(
        self,
        machine: Machine | None = None,
        scale: float = 1.0,
        loop_size: int = 4096,
        duration: float = 10.0,
        seed: int = 0,
        p_states: tuple[PState, ...] = (NOMINAL,),
        executor: "_ExecutorBase | None" = None,
    ) -> None:
        self.machine = machine if machine is not None else Machine()
        self.scale = scale
        self.loop_size = loop_size
        self.duration = duration
        self.seed = seed
        self.p_states = p_states
        self.executor = (
            executor if executor is not None else default_executor(self.machine)
        )
        arch = self.machine.arch
        # The validation sweep crosses the paper's CMP-SMT grid with the
        # requested operating points (24 -> 24 x |p_states| scenarios);
        # the nominal-only default reproduces the paper's sweep exactly.
        self.configs = standard_configurations(
            arch.chip.max_cores, arch.chip.smt_modes(), p_states
        )

    # -- data gathering -------------------------------------------------------

    def gather(self) -> dict:
        """Generate the suite and run every measurement the steps need."""
        arch = self.machine.arch
        micro = generate_micro_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        randoms = generate_random_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        suite = micro + randoms
        logger.info(
            "training suite: %d micro + %d random benchmarks (scale %g, "
            "loop %d)",
            len(micro),
            len(randoms),
            self.scale,
            self.loop_size,
        )

        # Step 1/2 measurements run with one benchmark copy per thread
        # on all cores: per-event weights are configuration-independent
        # (threads are homogeneous) and the 8x dynamic activity lifts
        # the unit-power signal well above sensor noise.  The SMT steps
        # follow the chip's supported modes -- (1, 2, 4) on POWER7,
        # (1, 2) on the SMT-2 eco class -- so per-cluster campaigns on
        # narrower core classes stay feasible (the SMT-effect fit
        # degrades gracefully with fewer SMT-on points).
        cores = arch.chip.max_cores
        smt_modes = arch.chip.smt_modes()
        step_configs = [MachineConfig(cores, smt) for smt in smt_modes]

        # One plan per gathering stage; the executor batches each
        # configuration through run_many (and, when store-backed,
        # serves warm cells without touching the machine at all).
        suite_kernels = [bench.kernel for bench in suite]
        logger.info("gathering step-1/2 SMT measurements")
        by_smt = self.executor.run(
            ExperimentPlan.cross(suite_kernels, step_configs, duration=self.duration)
        )
        count = len(suite_kernels)
        by_mode = {
            smt: by_smt[index * count : (index + 1) * count]
            for index, smt in enumerate(smt_modes)
        }
        data = {
            "suite": suite,
            "suite_smt1": list(
                zip([bench.family for bench in suite], by_mode.get(1, []))
            ),
            "suite_smt2": by_mode.get(2, []),
            "suite_smt4": by_mode.get(4, []),
            "random_all": self._run_sweep([b.kernel for b in randoms]),
            "micro_all": self._run_sweep([b.kernel for b in micro]),
            "idle": self.machine.run_idle(duration=self.duration),
        }
        return data

    def _run_sweep(self, kernels) -> list[Measurement]:
        """Every kernel on every configuration, kernel-major order."""
        logger.info(
            "sweeping %d kernels across %d configurations",
            len(kernels),
            len(self.configs),
        )
        by_config = self.executor.run(
            ExperimentPlan.cross(kernels, self.configs, duration=self.duration)
        )
        count = len(kernels)
        return [
            by_config[config_index * count + kernel_index]
            for kernel_index in range(count)
            for config_index in range(len(self.configs))
        ]

    def gather_spec(self) -> dict[MachineConfig, list[Measurement]]:
        """SPEC proxy measurements across the full sweep."""
        suite = spec_cpu2006()
        logger.info(
            "gathering SPEC validation: %d proxies x %d configurations",
            len(suite),
            len(self.configs),
        )
        measurements = self.executor.run(
            ExperimentPlan.cross(suite, self.configs, duration=self.duration)
        )
        count = len(suite)
        return {
            config: measurements[index * count : (index + 1) * count]
            for index, config in enumerate(self.configs)
        }

    # -- model fitting ------------------------------------------------------------

    def run(self, sequential: bool = True) -> CampaignResult:
        """Gather data, fit all four models, measure SPEC validation."""
        data = self.gather()
        spec_by_config = self.gather_spec()

        logger.info("fitting bottom-up model")
        bottom_up = BottomUpTrainer(sequential=sequential).train(
            suite_smt1=data["suite_smt1"],
            suite_smt2=data["suite_smt2"],
            suite_smt4=data["suite_smt4"],
            random_all_configs=data["random_all"],
            idle=data["idle"],
        )

        td_trainer = TopDownTrainer()
        spec_flat = [
            measurement
            for measurements in spec_by_config.values()
            for measurement in measurements
        ]
        logger.info("fitting top-down models")
        top_down = {
            "TD_Micro": td_trainer.train("TD_Micro", data["micro_all"]),
            "TD_Random": td_trainer.train("TD_Random", data["random_all"]),
            "TD_SPEC": td_trainer.train("TD_SPEC", spec_flat),
        }
        return CampaignResult(
            bottom_up=bottom_up,
            top_down=top_down,
            configs=self.configs,
            spec_by_config=spec_by_config,
            idle=data["idle"],
        )


# -- heterogeneous chips ---------------------------------------------------------


@dataclass
class HeterogeneousCampaignResult:
    """Per-core-class fitted models of one heterogeneous topology.

    ``per_class`` maps each distinct cluster core class (``None`` is
    the base class) to the full :class:`CampaignResult` fitted on that
    class's silicon -- every cluster of a big.LITTLE chip gets its own
    bottom-up and top-down models, trained on its own pipeline widths,
    cache latencies and clock.
    """

    topology: object
    per_class: dict

    def predict(self, measurement: Measurement) -> float:
        """Predict chip power of a topology measurement, watts.

        Each cluster's thread-counter segment is scored by its core
        class's bottom-up model as if it were a homogeneous chip of
        that cluster's shape; the chip-wide components (measured idle
        and the uncore constant) are counted once -- from the first
        cluster's model -- rather than once per cluster.
        """
        topology = measurement.config
        total = 0.0
        for index, (cluster, span) in enumerate(
            topology.cluster_slices()
        ):
            sub = Measurement(
                workload_name=measurement.workload_name,
                config=MachineConfig(
                    cluster.cores, cluster.smt, cluster.p_state
                ),
                duration=measurement.duration,
                thread_counters=measurement.thread_counters[span],
                mean_power=measurement.mean_power,
                power_std=measurement.power_std,
                sample_count=measurement.sample_count,
            )
            model = self.per_class[cluster.core_class].bottom_up
            breakdown = model.breakdown(sub)
            if index > 0:
                breakdown.pop("Workload_Independent", None)
                breakdown.pop("Uncore", None)
            total += sum(breakdown.values())
        return total

    __call__ = predict


class HeterogeneousCampaign:
    """Fit the section-4 models per core class of a topology.

    Runs one full :class:`ModelingCampaign` per distinct cluster core
    class -- the big class on the machine's own architecture (sharing
    its caches and any bootstrap write-backs), the little class on a
    machine built from its registered definition -- so every cluster
    of the topology gets models trained on its own silicon.

    ``executor_factory`` (machine -> executor) lets callers attach a
    store-backed or parallel executor per class machine; the default
    resolves the usual ``REPRO_PARALLEL``/``REPRO_STORE`` knobs.
    """

    def __init__(
        self,
        machine: Machine,
        topology,
        scale: float = 1.0,
        loop_size: int = 4096,
        duration: float = 10.0,
        seed: int = 0,
        executor_factory=None,
    ) -> None:
        self.machine = machine
        self.topology = topology
        self.scale = scale
        self.loop_size = loop_size
        self.duration = duration
        self.seed = seed
        self.executor_factory = (
            executor_factory
            if executor_factory is not None
            else default_executor
        )

    def run(self, sequential: bool = True) -> HeterogeneousCampaignResult:
        """Fit every cluster core class; one campaign per class."""
        per_class: dict = {}
        for core_class in self.topology.core_classes:
            key = self.machine._class_key(core_class)
            if key in per_class:
                continue
            if key is None:
                class_machine = self.machine
            else:
                class_machine = Machine(
                    self.machine.cluster_arch(core_class),
                    seed=self.seed,
                    vector=self.machine.vector_enabled,
                )
            logger.info(
                "heterogeneous campaign: fitting core class %s",
                class_machine.arch.name,
            )
            campaign = ModelingCampaign(
                class_machine,
                scale=self.scale,
                loop_size=self.loop_size,
                duration=self.duration,
                seed=self.seed,
                executor=self.executor_factory(class_machine),
            )
            result = campaign.run(sequential=sequential)
            per_class[key] = result
            if core_class != key:
                # Alias the raw class spelling (e.g. the base class
                # written by name) so predict() looks up either form.
                per_class[core_class] = result
        return HeterogeneousCampaignResult(
            topology=self.topology, per_class=per_class
        )
