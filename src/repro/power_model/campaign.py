"""Measurement and modeling campaign orchestration (paper section 4).

One object gathers everything the section-4 experiments need: the
Table 2 training measurements in the configurations each modeling step
requires, the SPEC proxy validation measurements across the full
CMP-SMT sweep, and the four fitted models (BU, TD_Micro, TD_Random,
TD_SPEC).  The benchmark harnesses and the integration tests all
consume this single entry point so the experiments stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.measure.measurement import Measurement
from repro.power_model.bottom_up import BottomUpModel, BottomUpTrainer
from repro.power_model.top_down import TopDownModel, TopDownTrainer
from repro.power_model.training import (
    TrainingBenchmark,
    generate_micro_suite,
    generate_random_suite,
)
from repro.sim.config import MachineConfig, standard_configurations
from repro.sim.machine import Machine
from repro.sim.pstate import NOMINAL, PState
from repro.workloads.spec import spec_cpu2006


@dataclass
class CampaignResult:
    """Everything the section-4 experiments consume."""

    bottom_up: BottomUpModel
    top_down: dict[str, TopDownModel]
    configs: tuple[MachineConfig, ...]
    spec_by_config: dict[MachineConfig, list[Measurement]] = field(
        default_factory=dict
    )
    idle: Measurement | None = None


class ModelingCampaign:
    """Runs the full section-4 data gathering and model fitting."""

    def __init__(
        self,
        machine: Machine | None = None,
        scale: float = 1.0,
        loop_size: int = 4096,
        duration: float = 10.0,
        seed: int = 0,
        p_states: tuple[PState, ...] = (NOMINAL,),
    ) -> None:
        self.machine = machine if machine is not None else Machine()
        self.scale = scale
        self.loop_size = loop_size
        self.duration = duration
        self.seed = seed
        self.p_states = p_states
        arch = self.machine.arch
        # The validation sweep crosses the paper's CMP-SMT grid with the
        # requested operating points (24 -> 24 x |p_states| scenarios);
        # the nominal-only default reproduces the paper's sweep exactly.
        self.configs = standard_configurations(
            arch.chip.max_cores, arch.chip.smt_modes(), p_states
        )

    # -- data gathering -------------------------------------------------------

    def gather(self) -> dict:
        """Generate the suite and run every measurement the steps need."""
        arch = self.machine.arch
        micro = generate_micro_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        randoms = generate_random_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        suite = micro + randoms

        # Step 1/2 measurements run with one benchmark copy per thread
        # on all cores: per-event weights are configuration-independent
        # (threads are homogeneous) and the 8x dynamic activity lifts
        # the unit-power signal well above sensor noise.
        cores = arch.chip.max_cores
        single = MachineConfig(cores, 1)
        smt2 = MachineConfig(cores, 2)
        smt4 = MachineConfig(cores, 4)

        # Batched measurement: one run_many sweep per configuration.
        # Every kernel's steady-state summary is computed once and
        # shared across all 26 sweeps via the machine's digest cache.
        suite_kernels = [bench.kernel for bench in suite]
        data = {
            "suite": suite,
            "suite_smt1": list(
                zip(
                    [bench.family for bench in suite],
                    self.machine.run_many(suite_kernels, single, self.duration),
                )
            ),
            "suite_smt2": self.machine.run_many(
                suite_kernels, smt2, self.duration
            ),
            "suite_smt4": self.machine.run_many(
                suite_kernels, smt4, self.duration
            ),
            "random_all": self._run_sweep([b.kernel for b in randoms]),
            "micro_all": self._run_sweep([b.kernel for b in micro]),
            "idle": self.machine.run_idle(duration=self.duration),
        }
        return data

    def _run_sweep(self, kernels) -> list[Measurement]:
        """Every kernel on every configuration, kernel-major order."""
        by_config = [
            self.machine.run_many(kernels, config, self.duration)
            for config in self.configs
        ]
        return [
            by_config[config_index][kernel_index]
            for kernel_index in range(len(kernels))
            for config_index in range(len(self.configs))
        ]

    def gather_spec(self) -> dict[MachineConfig, list[Measurement]]:
        """SPEC proxy measurements across the full sweep."""
        suite = spec_cpu2006()
        return {
            config: self.machine.run_many(suite, config, self.duration)
            for config in self.configs
        }

    # -- model fitting ------------------------------------------------------------

    def run(self, sequential: bool = True) -> CampaignResult:
        """Gather data, fit all four models, measure SPEC validation."""
        data = self.gather()
        spec_by_config = self.gather_spec()

        bottom_up = BottomUpTrainer(sequential=sequential).train(
            suite_smt1=data["suite_smt1"],
            suite_smt2=data["suite_smt2"],
            suite_smt4=data["suite_smt4"],
            random_all_configs=data["random_all"],
            idle=data["idle"],
        )

        td_trainer = TopDownTrainer()
        spec_flat = [
            measurement
            for measurements in spec_by_config.values()
            for measurement in measurements
        ]
        top_down = {
            "TD_Micro": td_trainer.train("TD_Micro", data["micro_all"]),
            "TD_Random": td_trainer.train("TD_Random", data["random_all"]),
            "TD_SPEC": td_trainer.train("TD_SPEC", spec_flat),
        }
        return CampaignResult(
            bottom_up=bottom_up,
            top_down=top_down,
            configs=self.configs,
            spec_by_config=spec_by_config,
            idle=data["idle"],
        )
