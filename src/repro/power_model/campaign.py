"""Measurement and modeling campaign orchestration (paper section 4).

One object gathers everything the section-4 experiments need: the
Table 2 training measurements in the configurations each modeling step
requires, the SPEC proxy validation measurements across the full
CMP-SMT sweep, and the four fitted models (BU, TD_Micro, TD_Random,
TD_SPEC).  The benchmark harnesses and the integration tests all
consume this single entry point so the experiments stay consistent.

All data gathering is expressed as
:class:`~repro.exec.plan.ExperimentPlan` cross products and executed
through the campaign's executor: the default (environment-resolved)
executor keeps historical serial behaviour, while a parallel or
store-backed executor shards the hundreds of suite x configuration
cells across workers and/or serves warm re-runs from disk.  Under
every executor, the suite's kernel cells evaluate through the
machine's vectorized measurement plane (:mod:`repro.sim.vector`) --
whole sweeps as single tensor passes, bit-identical to the scalar
walk.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.exec.executors import default_executor
from repro.exec.plan import ExperimentPlan
from repro.measure.measurement import Measurement
from repro.power_model.bottom_up import BottomUpModel, BottomUpTrainer
from repro.power_model.top_down import TopDownModel, TopDownTrainer
from repro.power_model.training import (
    TrainingBenchmark,
    generate_micro_suite,
    generate_random_suite,
)
from repro.sim.config import MachineConfig, standard_configurations
from repro.sim.machine import Machine
from repro.sim.pstate import NOMINAL, PState
from repro.workloads.spec import spec_cpu2006

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.executors import _ExecutorBase

logger = logging.getLogger("repro.campaign")


@dataclass
class CampaignResult:
    """Everything the section-4 experiments consume."""

    bottom_up: BottomUpModel
    top_down: dict[str, TopDownModel]
    configs: tuple[MachineConfig, ...]
    spec_by_config: dict[MachineConfig, list[Measurement]] = field(
        default_factory=dict
    )
    idle: Measurement | None = None


class ModelingCampaign:
    """Runs the full section-4 data gathering and model fitting."""

    def __init__(
        self,
        machine: Machine | None = None,
        scale: float = 1.0,
        loop_size: int = 4096,
        duration: float = 10.0,
        seed: int = 0,
        p_states: tuple[PState, ...] = (NOMINAL,),
        executor: "_ExecutorBase | None" = None,
    ) -> None:
        self.machine = machine if machine is not None else Machine()
        self.scale = scale
        self.loop_size = loop_size
        self.duration = duration
        self.seed = seed
        self.p_states = p_states
        self.executor = (
            executor if executor is not None else default_executor(self.machine)
        )
        arch = self.machine.arch
        # The validation sweep crosses the paper's CMP-SMT grid with the
        # requested operating points (24 -> 24 x |p_states| scenarios);
        # the nominal-only default reproduces the paper's sweep exactly.
        self.configs = standard_configurations(
            arch.chip.max_cores, arch.chip.smt_modes(), p_states
        )

    # -- data gathering -------------------------------------------------------

    def gather(self) -> dict:
        """Generate the suite and run every measurement the steps need."""
        arch = self.machine.arch
        micro = generate_micro_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        randoms = generate_random_suite(
            arch, self.loop_size, self.scale, self.seed
        )
        suite = micro + randoms
        logger.info(
            "training suite: %d micro + %d random benchmarks (scale %g, "
            "loop %d)",
            len(micro),
            len(randoms),
            self.scale,
            self.loop_size,
        )

        # Step 1/2 measurements run with one benchmark copy per thread
        # on all cores: per-event weights are configuration-independent
        # (threads are homogeneous) and the 8x dynamic activity lifts
        # the unit-power signal well above sensor noise.
        cores = arch.chip.max_cores
        step_configs = [
            MachineConfig(cores, 1),
            MachineConfig(cores, 2),
            MachineConfig(cores, 4),
        ]

        # One plan per gathering stage; the executor batches each
        # configuration through run_many (and, when store-backed,
        # serves warm cells without touching the machine at all).
        suite_kernels = [bench.kernel for bench in suite]
        logger.info("gathering step-1/2 SMT measurements")
        by_smt = self.executor.run(
            ExperimentPlan.cross(suite_kernels, step_configs, duration=self.duration)
        )
        count = len(suite_kernels)
        data = {
            "suite": suite,
            "suite_smt1": list(
                zip([bench.family for bench in suite], by_smt[:count])
            ),
            "suite_smt2": by_smt[count : 2 * count],
            "suite_smt4": by_smt[2 * count :],
            "random_all": self._run_sweep([b.kernel for b in randoms]),
            "micro_all": self._run_sweep([b.kernel for b in micro]),
            "idle": self.machine.run_idle(duration=self.duration),
        }
        return data

    def _run_sweep(self, kernels) -> list[Measurement]:
        """Every kernel on every configuration, kernel-major order."""
        logger.info(
            "sweeping %d kernels across %d configurations",
            len(kernels),
            len(self.configs),
        )
        by_config = self.executor.run(
            ExperimentPlan.cross(kernels, self.configs, duration=self.duration)
        )
        count = len(kernels)
        return [
            by_config[config_index * count + kernel_index]
            for kernel_index in range(count)
            for config_index in range(len(self.configs))
        ]

    def gather_spec(self) -> dict[MachineConfig, list[Measurement]]:
        """SPEC proxy measurements across the full sweep."""
        suite = spec_cpu2006()
        logger.info(
            "gathering SPEC validation: %d proxies x %d configurations",
            len(suite),
            len(self.configs),
        )
        measurements = self.executor.run(
            ExperimentPlan.cross(suite, self.configs, duration=self.duration)
        )
        count = len(suite)
        return {
            config: measurements[index * count : (index + 1) * count]
            for index, config in enumerate(self.configs)
        }

    # -- model fitting ------------------------------------------------------------

    def run(self, sequential: bool = True) -> CampaignResult:
        """Gather data, fit all four models, measure SPEC validation."""
        data = self.gather()
        spec_by_config = self.gather_spec()

        logger.info("fitting bottom-up model")
        bottom_up = BottomUpTrainer(sequential=sequential).train(
            suite_smt1=data["suite_smt1"],
            suite_smt2=data["suite_smt2"],
            suite_smt4=data["suite_smt4"],
            random_all_configs=data["random_all"],
            idle=data["idle"],
        )

        td_trainer = TopDownTrainer()
        spec_flat = [
            measurement
            for measurements in spec_by_config.values()
            for measurement in measurements
        ]
        logger.info("fitting top-down models")
        top_down = {
            "TD_Micro": td_trainer.train("TD_Micro", data["micro_all"]),
            "TD_Random": td_trainer.train("TD_Random", data["random_all"]),
            "TD_SPEC": td_trainer.train("TD_SPEC", spec_flat),
        }
        return CampaignResult(
            bottom_up=bottom_up,
            top_down=top_down,
            configs=self.configs,
            spec_by_config=spec_by_config,
            idle=data["idle"],
        )
