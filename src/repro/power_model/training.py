"""Table 2 training-suite generation.

Twenty benchmark families covering the broadest practical range of
processor activity: unit-targeted IPC sweeps (built with white-box
dependency-distance solving instead of a GA -- the march latency
information makes the dependency mean for a target IPC a closed-form
query), memory-hierarchy mixes planned by the analytical cache model,
and the 331-strong random family that calibrates the model intercept.

The ``scale`` parameter shrinks every family proportionally (and the
loop size) for fast test runs; ``scale=1.0`` reproduces the paper's
~580-benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.passes.distribution import InstructionDistribution
from repro.core.passes.ilp import DependencyDistance
from repro.core.passes.init_values import InitImmediates, InitRegisters
from repro.core.passes.memory import MemoryModel
from repro.core.passes.skeleton import EndlessLoopSkeleton
from repro.core.synthesizer import Synthesizer
from repro.march.definition import MicroArchitecture
from repro.sim.kernel import Kernel
from repro.workloads.random_gen import RandomBenchmarkPolicy

#: Pools per unit-targeted family (paper Table 2, "Units stressed").
SIMPLE_INTEGER_POOL = ("add", "or", "nor", "and", "xor", "nand", "eqv", "andc")
COMPLEX_INTEGER_POOL = ("mulld", "mulldo", "mulhd", "mullw", "rlwinm")
INTEGER_POOL = ("add", "subf", "mulld", "sld", "cntlzd", "addic")
FLOAT_VECTOR_POOL = ("fadd", "fmul", "fmadd", "xvmaddadp", "xsmuldp", "xvadddp", "dadd")
UNIT_MIX_POOL = ("add", "subf", "mulld", "fmadd", "xvmaddadp", "vand", "xsmuldp")
LOAD_POOL = ("lbz", "lhz", "lwz", "ld", "lwzx", "ldx")
LOAD_STORE_POOL = ("lwz", "ld", "lbz", "stw", "std", "sth")

#: Memory families: name -> (pool, per-level weights, count).
MEMORY_FAMILIES: dict[str, tuple[tuple[str, ...], dict[str, float], int]] = {
    "L1 ld": (LOAD_POOL, {"L1": 1.0}, 10),
    "L1 ld/st": (LOAD_STORE_POOL, {"L1": 1.0}, 10),
    "L1L2a": (LOAD_STORE_POOL, {"L1": 0.75, "L2": 0.25}, 10),
    "L1L2b": (LOAD_STORE_POOL, {"L1": 0.50, "L2": 0.50}, 10),
    "L1L2c": (LOAD_STORE_POOL, {"L1": 0.25, "L2": 0.75}, 10),
    "L1L3a": (LOAD_STORE_POOL, {"L1": 0.75, "L3": 0.25}, 10),
    "L1L3b": (LOAD_STORE_POOL, {"L1": 0.50, "L3": 0.50}, 10),
    "L1L3c": (LOAD_STORE_POOL, {"L1": 0.25, "L3": 0.75}, 10),
    "L2": (LOAD_STORE_POOL, {"L2": 1.0}, 10),
    "L2L3a": (LOAD_STORE_POOL, {"L2": 0.75, "L3": 0.25}, 10),
    "L2L3b": (LOAD_STORE_POOL, {"L2": 0.50, "L3": 0.50}, 10),
    "L2L3c": (LOAD_STORE_POOL, {"L2": 0.25, "L3": 0.75}, 10),
    "L3": (LOAD_STORE_POOL, {"L3": 1.0}, 10),
    "Caches": (LOAD_STORE_POOL, {"L1": 0.33, "L2": 0.33, "L3": 0.34}, 10),
    "Memory": (LOAD_STORE_POOL, {"MEM": 1.0}, 20),
}

#: IPC-sweep families: name -> (pool, first IPC, last IPC, step).
IPC_FAMILIES: dict[str, tuple[tuple[str, ...], float, float, float]] = {
    "Simple Integer": (SIMPLE_INTEGER_POOL, 0.5, 3.9, 0.1),
    "Complex Integer": (COMPLEX_INTEGER_POOL, 0.1, 1.1, 0.1),
    "Integer": (INTEGER_POOL, 0.1, 1.2, 0.1),
    "Float/Vector": (FLOAT_VECTOR_POOL, 0.1, 1.4, 0.1),
    "Unit Mix": (UNIT_MIX_POOL, 0.1, 2.0, 0.1),
}

#: Paper size of the random calibration family.
RANDOM_FAMILY_SIZE = 331


@dataclass(frozen=True)
class TrainingBenchmark:
    """One training-suite entry: the family it came from and its kernel."""

    family: str
    kernel: Kernel

    @property
    def name(self) -> str:
        return self.kernel.name


def solve_dependency_mean(
    arch: MicroArchitecture, pool: tuple[str, ...], target_ipc: float
) -> float:
    """White-box solve: mean dependency distance for a target IPC.

    A dependence structure with mean distance ``x`` over instructions
    of mean latency ``L`` sustains ``IPC = x / L``; the march property
    database provides ``L`` directly, replacing the design-space
    exploration a black-box framework would need (paper section 2.1.3's
    argument applied to ILP).  The result is clamped to the pass's
    valid distance range; unit-bound targets simply saturate.
    """
    mean_latency = sum(
        arch.props(mnemonic).latency for mnemonic in pool
    ) / len(pool)
    return min(max(target_ipc * mean_latency, 1.0), 32.0)


def _ipc_targets(first: float, last: float, step: float) -> list[float]:
    targets = []
    value = first
    while value <= last + 1e-9:
        targets.append(round(value, 3))
        value += step
    return targets


def generate_micro_suite(
    arch: MicroArchitecture,
    loop_size: int = 4096,
    scale: float = 1.0,
    seed: int = 0,
) -> list[TrainingBenchmark]:
    """The micro-architecture aware families (everything but Random)."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    benchmarks: list[TrainingBenchmark] = []

    for family, (pool, first, last, step) in IPC_FAMILIES.items():
        targets = _ipc_targets(first, last, step)
        targets = _scaled_subset(targets, scale)
        for index, target in enumerate(targets):
            synth = _family_synthesizer(arch, family, seed, index)
            synth.add_pass(EndlessLoopSkeleton(loop_size))
            synth.add_pass(InstructionDistribution(list(pool)))
            synth.add_pass(InitRegisters("random"))
            synth.add_pass(InitImmediates("random"))
            synth.add_pass(
                DependencyDistance(
                    "mean",
                    mean_distance=solve_dependency_mean(arch, pool, target),
                )
            )
            benchmarks.append(
                TrainingBenchmark(family, synth.synthesize().to_kernel())
            )

    for family, (pool, weights, count) in MEMORY_FAMILIES.items():
        for index in range(_scaled_count(count, scale)):
            synth = _family_synthesizer(arch, family, seed, index)
            synth.add_pass(EndlessLoopSkeleton(loop_size))
            synth.add_pass(InstructionDistribution(list(pool)))
            synth.add_pass(MemoryModel(weights))
            synth.add_pass(InitRegisters("random"))
            synth.add_pass(InitImmediates("random"))
            synth.add_pass(DependencyDistance("none"))
            benchmarks.append(
                TrainingBenchmark(family, synth.synthesize().to_kernel())
            )
    return benchmarks


def generate_random_suite(
    arch: MicroArchitecture,
    loop_size: int = 4096,
    scale: float = 1.0,
    seed: int = 0,
) -> list[TrainingBenchmark]:
    """The Random calibration family (331 benchmarks at full scale)."""
    policy = RandomBenchmarkPolicy(arch, loop_size=loop_size, seed=seed)
    count = _scaled_count(RANDOM_FAMILY_SIZE, scale)
    return [
        TrainingBenchmark("Random", kernel) for kernel in policy.build(count)
    ]


def generate_training_suite(
    arch: MicroArchitecture,
    loop_size: int = 4096,
    scale: float = 1.0,
    seed: int = 0,
) -> list[TrainingBenchmark]:
    """The full Table 2 suite: targeted families plus Random."""
    return generate_micro_suite(arch, loop_size, scale, seed) + (
        generate_random_suite(arch, loop_size, scale, seed)
    )


def _family_synthesizer(
    arch: MicroArchitecture, family: str, seed: int, index: int
) -> Synthesizer:
    slug = family.lower().replace(" ", "-").replace("/", "-")
    return Synthesizer(
        arch,
        seed=f"{seed}:{family}:{index}",
        name_prefix=f"t2-{slug}-{index}",
    )


def _scaled_count(count: int, scale: float) -> int:
    # Never fewer than 3 per family: the sequential fitting protocol
    # needs at least 3 rows per component.
    return max(3, round(count * scale))


def _scaled_subset(targets: list[float], scale: float) -> list[float]:
    """Evenly thin an IPC-target list to ``scale`` of its size."""
    wanted = max(3, round(len(targets) * scale))
    if wanted >= len(targets):
        return targets
    step = (len(targets) - 1) / (wanted - 1)
    return [targets[round(i * step)] for i in range(wanted)]
