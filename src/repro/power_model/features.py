"""Power-component definitions and rate extraction.

The bottom-up model decomposes dynamic power into seven components
(paper section 4.1 step 1): the three execution units and the four
memory hierarchy levels.  Each component has a counter formula; rates
are events per second, summed over hardware threads, so one weight
vector serves every CMP/SMT configuration.
"""

from __future__ import annotations

from repro.march.counters import CounterFormula
from repro.measure.measurement import Measurement

#: The paper's component order (FXU, VSU, LSU, L1, L2, L3, MEM).
POWER_COMPONENTS = ("FXU", "VSU", "LSU", "L1", "L2", "L3", "MEM")

#: Counter formulas per component, over *counts* for one window.
_COMPONENT_FORMULAS = {
    "FXU": CounterFormula("FXU", "PM_FXU_FIN"),
    "VSU": CounterFormula("VSU", "PM_VSU_FIN"),
    "LSU": CounterFormula("LSU", "PM_LSU_FIN"),
    "L1": CounterFormula(
        "L1",
        "PM_LD_REF_L1 + PM_ST_REF_L1 - PM_DATA_FROM_L2 "
        "- PM_DATA_FROM_L3 - PM_DATA_FROM_LMEM",
    ),
    "L2": CounterFormula("L2", "PM_DATA_FROM_L2"),
    "L3": CounterFormula("L3", "PM_DATA_FROM_L3"),
    "MEM": CounterFormula("MEM", "PM_DATA_FROM_LMEM"),
}

#: Components describing memory hierarchy traffic.
MEMORY_COMPONENTS = ("L1", "L2", "L3", "MEM")
#: Components describing execution-unit activity.
UNIT_COMPONENTS = ("FXU", "VSU", "LSU")


def component_rates(measurement: Measurement) -> dict[str, float]:
    """Per-component event rates (events/second, all threads summed)."""
    totals = measurement.total_counters()
    return {
        name: formula.evaluate(totals) / measurement.duration
        for name, formula in _COMPONENT_FORMULAS.items()
    }


def memory_rate(rates: dict[str, float]) -> float:
    """Total memory-hierarchy traffic of a rate vector."""
    return sum(rates[name] for name in MEMORY_COMPONENTS)
