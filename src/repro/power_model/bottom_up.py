"""SMT/CMP-aware bottom-up power model (paper section 4.1, Figure 4).

The four-step methodology:

1. **Single hardware context.**  On single-core SMT-1 measurements of
   the training suite, fit per-component weights with a *sequence* of
   grouped regressions: execution-unit weights from the compute-only
   families, then memory-level weights from the residuals on the
   memory families.  The intercept is calibrated on the random family
   (avoids under-estimation when only particular units are stressed).
2. **SMT effect.**  The intercept of the same model on single-core
   SMT-2/SMT-4 data minus the SMT-1 intercept: a constant per core
   with SMT enabled (the paper found the effect independent of the
   SMT way).
3. **CMP effect and uncore.**  Apply the dynamic+SMT model to the
   random benchmarks on *all* configurations; regress the residuals on
   the enabled-core count.  Slope = CMP effect, intercept = uncore.
4. **Combine.**  ``P = WI + Uncore + CMP*cores + SMT*smt_cores +
   sum_components W_c * rate_c`` where WI is the measured
   workload-independent (idle) power.

The model is *decomposable*: :meth:`BottomUpModel.breakdown` returns
the per-component powers behind Figures 5a and 8.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelingError
from repro.measure.measurement import Measurement
from repro.power_model.features import (
    MEMORY_COMPONENTS,
    POWER_COMPONENTS,
    UNIT_COMPONENTS,
    component_rates,
    memory_rate,
)
from repro.power_model.linreg import nnls_ols

#: Memory-traffic rate (events/s) under which a benchmark counts as
#: compute-only for the joint unit fit.
_COMPUTE_ONLY_THRESHOLD = 1e3

#: The sequential fitting protocol for the execution units: each
#: unit's weight comes from the training families designed to stress
#: it, regressed against the residual left by the units fitted before
#: it (paper section 4.1 step 1, following Bertran et al. [8]).  The
#: families provide rate variation through their IPC sweeps, which is
#: what makes the single-feature slopes identifiable.
_UNIT_PROTOCOL: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("FXU", ("Complex Integer",)),
    ("VSU", ("Float/Vector",)),
    ("LSU", ("Simple Integer", "Integer", "Unit Mix")),
)

#: The memory-level weights are fitted jointly over every memory
#: family: the Table 2 hit-ratio sweeps (75/25, 50/50, 25/75, pure)
#: provide the cross-level rate variation a per-level slope would lack
#: within any single family.
_MEMORY_FAMILIES = (
    "L1 ld", "L1 ld/st",
    "L1L2a", "L1L2b", "L1L2c",
    "L1L3a", "L1L3b", "L1L3c",
    "L2", "L2L3a", "L2L3b", "L2L3c",
    "L3", "Caches", "Memory",
)


@dataclass(frozen=True)
class BottomUpModel:
    """The fitted four-step model."""

    weights: dict[str, float]  # joules per component event
    smt_effect: float  # watts per core with SMT enabled
    cmp_effect: float  # watts per enabled core
    uncore: float  # watts
    workload_independent: float  # watts (measured idle)

    def dynamic_power(self, measurement: Measurement) -> float:
        """Counter-driven component of the prediction."""
        rates = component_rates(measurement)
        return sum(
            self.weights[name] * rates[name] for name in POWER_COMPONENTS
        )

    def predict(self, measurement: Measurement) -> float:
        """Full chip power prediction for one measurement window."""
        return sum(self.breakdown(measurement).values())

    # Allow the model object itself to be used as a Predictor.
    __call__ = predict

    def breakdown(self, measurement: Measurement) -> dict[str, float]:
        """Per-component powers (the paper's Figure 5a/8 stacks)."""
        config = measurement.config
        return {
            "Workload_Independent": self.workload_independent,
            "Uncore": self.uncore,
            "CMP_effect": self.cmp_effect * config.cores,
            "SMT_effect": (
                self.smt_effect * config.cores if config.smt_enabled else 0.0
            ),
            "Dynamic": self.dynamic_power(measurement),
        }


class BottomUpTrainer:
    """Fits :class:`BottomUpModel` from measurement campaigns."""

    def __init__(self, sequential: bool = True) -> None:
        #: Sequential grouped fitting (the paper's method); joint OLS
        #: over all components is available for the ablation benchmark.
        self.sequential = sequential

    def train(
        self,
        suite_smt1: Sequence[tuple[str, Measurement]],
        suite_smt2: Sequence[Measurement],
        suite_smt4: Sequence[Measurement],
        random_all_configs: Sequence[Measurement],
        idle: Measurement,
    ) -> BottomUpModel:
        """Run the four steps.

        Args:
            suite_smt1: (family, measurement) pairs of the full training
                suite on the 1-core SMT-1 configuration.
            suite_smt2: Training-suite measurements on 1-core SMT-2.
            suite_smt4: Training-suite measurements on 1-core SMT-4.
            random_all_configs: Random-family measurements across the
                full CMP-SMT sweep.
            idle: Idle measurement (workload-independent power).
        """
        workload_independent = idle.mean_power

        # Step 1: single hardware context.
        weights, intercept_smt1 = self._fit_weights(
            suite_smt1, workload_independent
        )

        # Step 2: SMT effect from the SMT-on intercepts.  The intercept
        # grows by one SMT-logic constant per core running with SMT
        # enabled, so the delta is normalized by the core count of the
        # SMT measurements.
        smt_measurements = list(suite_smt2) + list(suite_smt4)
        intercept_smt24 = self._intercept(
            smt_measurements, weights, workload_independent
        )
        smt_cores = smt_measurements[0].config.cores if smt_measurements else 1
        smt_effect = max(
            0.0, (intercept_smt24 - intercept_smt1) / smt_cores
        )

        # Step 3: CMP effect and uncore from all-config residuals.
        cmp_effect, uncore = self._fit_cmp(
            random_all_configs, weights, smt_effect, workload_independent
        )

        # Step 4: combine.
        return BottomUpModel(
            weights=weights,
            smt_effect=smt_effect,
            cmp_effect=cmp_effect,
            uncore=uncore,
            workload_independent=workload_independent,
        )

    # -- step 1 internals ---------------------------------------------------

    def _fit_weights(
        self,
        suite: Sequence[tuple[str, Measurement]],
        workload_independent: float,
    ) -> tuple[dict[str, float], float]:
        rows = [
            (family, component_rates(m), m.mean_power - workload_independent)
            for family, m in suite
        ]
        if self.sequential:
            weights = self._fit_sequential(rows)
        else:
            weights = self._fit_joint(rows)
        intercept = self._calibrate_intercept(rows, weights)
        return weights, intercept

    def _fit_sequential(
        self, rows: list[tuple[str, dict[str, float], float]]
    ) -> dict[str, float]:
        """The paper's sequence of regressions.

        Execution units first, one component at a time over the
        families crafted to stress it (residualizing the components
        already fitted); then the four memory levels jointly over the
        hit-ratio sweep families.  Weights are energies and therefore
        clamped at zero.
        """
        weights: dict[str, float] = {name: 0.0 for name in POWER_COMPONENTS}
        for component, families in _UNIT_PROTOCOL:
            selected = [
                (rates, target) for family, rates, target in rows
                if family in families and rates[component] > 0
            ]
            if len(selected) < 3:
                raise ModelingError(
                    f"component {component}: need at least 3 training rows "
                    f"from families {families}, got {len(selected)}"
                )
            feature = np.array(
                [[rates[component]] for rates, _ in selected]
            )
            residual = np.array(
                [
                    target - sum(
                        weights[other] * rates[other]
                        for other in POWER_COMPONENTS
                        if other != component
                    )
                    for rates, target in selected
                ]
            )
            slope, _ = nnls_ols(feature, residual)
            weights[component] = float(slope[0])

        memory_rows = [
            (rates, target) for family, rates, target in rows
            if family in _MEMORY_FAMILIES
        ]
        if len(memory_rows) < len(MEMORY_COMPONENTS) + 2:
            raise ModelingError("too few memory-family training rows")
        matrix = np.array(
            [[rates[c] for c in MEMORY_COMPONENTS] for rates, _ in memory_rows]
        )
        residual = np.array(
            [
                target - sum(
                    weights[unit] * rates[unit] for unit in UNIT_COMPONENTS
                )
                for rates, target in memory_rows
            ]
        )
        memory_weights, _ = nnls_ols(matrix, residual)
        weights.update(dict(zip(MEMORY_COMPONENTS, memory_weights)))
        return weights

    def _fit_joint(
        self, rows: list[tuple[str, dict[str, float], float]]
    ) -> dict[str, float]:
        matrix = np.array(
            [[rates[c] for c in POWER_COMPONENTS] for _, rates, _ in rows]
        )
        targets = np.array([target for _, _, target in rows])
        coefficients, _ = nnls_ols(matrix, targets)
        return dict(zip(POWER_COMPONENTS, coefficients))

    def _calibrate_intercept(
        self,
        rows: list[tuple[str, dict[str, float], float]],
        weights: dict[str, float],
    ) -> float:
        random_rows = [
            (rates, target) for family, rates, target in rows
            if family == "Random"
        ]
        if not random_rows:
            random_rows = [(rates, target) for _, rates, target in rows]
        residuals = [
            target - sum(weights[c] * rates[c] for c in POWER_COMPONENTS)
            for rates, target in random_rows
        ]
        return float(np.mean(residuals))

    # -- steps 2 and 3 internals ------------------------------------------------

    def _intercept(
        self,
        measurements: Iterable[Measurement],
        weights: dict[str, float],
        workload_independent: float,
    ) -> float:
        residuals = []
        for measurement in measurements:
            rates = component_rates(measurement)
            dynamic = sum(
                weights[c] * rates[c] for c in POWER_COMPONENTS
            )
            residuals.append(
                measurement.mean_power - workload_independent - dynamic
            )
        if not residuals:
            raise ModelingError("no measurements for intercept estimation")
        return float(np.mean(residuals))

    def _fit_cmp(
        self,
        measurements: Sequence[Measurement],
        weights: dict[str, float],
        smt_effect: float,
        workload_independent: float,
    ) -> tuple[float, float]:
        if len(measurements) < 4:
            raise ModelingError("too few all-config measurements for step 3")
        cores = []
        residuals = []
        for measurement in measurements:
            rates = component_rates(measurement)
            dynamic = sum(weights[c] * rates[c] for c in POWER_COMPONENTS)
            smt = (
                smt_effect * measurement.config.cores
                if measurement.config.smt_enabled
                else 0.0
            )
            cores.append(measurement.config.cores)
            residuals.append(
                measurement.mean_power
                - workload_independent
                - dynamic
                - smt
            )
        design = np.vstack([cores, np.ones(len(cores))]).T
        solution, *_ = np.linalg.lstsq(
            design, np.array(residuals), rcond=None
        )
        cmp_effect, uncore = float(solution[0]), float(solution[1])
        return max(0.0, cmp_effect), uncore
