"""Top-down baseline models (paper section 4.1.2).

A single multiple linear regression over the same inputs the bottom-up
model consumes -- the component counter rates plus the enabled-core
count and the SMT flag -- trained on whichever workload set names the
model: TD_Micro (micro-architecture aware benchmarks), TD_Random
(random benchmarks) and TD_SPEC (the validation suite itself, the
optimistic bound).  Top-down models predict well in-distribution but
are not decomposable and extrapolate poorly to extreme activity
(Figure 7's 62 % TD_Random error on FXU-High).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelingError
from repro.measure.measurement import Measurement
from repro.power_model.features import POWER_COMPONENTS, component_rates
from repro.power_model.linreg import ols

#: Feature order: component rates, then cores, then the SMT flag.
_EXTRA_FEATURES = ("cores", "smt_enabled")


def _feature_vector(measurement: Measurement) -> list[float]:
    rates = component_rates(measurement)
    features = [rates[name] for name in POWER_COMPONENTS]
    features.append(float(measurement.config.cores))
    features.append(1.0 if measurement.config.smt_enabled else 0.0)
    return features


@dataclass(frozen=True)
class TopDownModel:
    """A fitted single-regression model."""

    name: str
    coefficients: tuple[float, ...]
    intercept: float

    def predict(self, measurement: Measurement) -> float:
        features = _feature_vector(measurement)
        return float(
            np.dot(self.coefficients, features) + self.intercept
        )

    __call__ = predict

    @property
    def feature_names(self) -> tuple[str, ...]:
        return POWER_COMPONENTS + _EXTRA_FEATURES


class TopDownTrainer:
    """Fits :class:`TopDownModel` via one multiple linear regression."""

    def train(
        self, name: str, measurements: Sequence[Measurement]
    ) -> TopDownModel:
        if len(measurements) < len(POWER_COMPONENTS) + len(_EXTRA_FEATURES) + 2:
            raise ModelingError(
                f"top-down model {name!r} needs more training measurements"
            )
        matrix = np.array(
            [_feature_vector(measurement) for measurement in measurements]
        )
        targets = np.array(
            [measurement.mean_power for measurement in measurements]
        )
        coefficients, intercept = ols(matrix, targets)
        return TopDownModel(
            name=name,
            coefficients=tuple(float(c) for c in coefficients),
            intercept=intercept,
        )
