"""Counter-based processor power models (paper section 4).

The centerpiece is the SMT/CMP-aware *bottom-up* modeling methodology
of Figure 4 -- per-component weights fitted from micro-architecture
aware micro-benchmarks, an SMT-effect constant, a linear CMP effect and
the uncore intercept -- plus the three *top-down* baselines (TD_Micro,
TD_Random, TD_SPEC) the paper compares against, the PAAE accuracy
metric, and the per-component power breakdown used in Figures 5a and 8.
"""

from repro.power_model.bottom_up import BottomUpModel, BottomUpTrainer
from repro.power_model.campaign import (
    CampaignResult,
    HeterogeneousCampaign,
    HeterogeneousCampaignResult,
    ModelingCampaign,
)
from repro.power_model.features import POWER_COMPONENTS, component_rates
from repro.power_model.metrics import paae, prediction_errors
from repro.power_model.top_down import TopDownModel, TopDownTrainer
from repro.power_model.training import (
    TrainingBenchmark,
    generate_micro_suite,
    generate_random_suite,
    generate_training_suite,
)

__all__ = [
    "POWER_COMPONENTS",
    "BottomUpModel",
    "BottomUpTrainer",
    "CampaignResult",
    "HeterogeneousCampaign",
    "HeterogeneousCampaignResult",
    "ModelingCampaign",
    "TopDownModel",
    "TopDownTrainer",
    "TrainingBenchmark",
    "component_rates",
    "generate_micro_suite",
    "generate_random_suite",
    "generate_training_suite",
    "paae",
    "prediction_errors",
]
