"""Small linear-regression helpers over numpy.

Power weights are energies (joules per event), so negative
coefficients are physically meaningless; the non-negative variant
projects and refits rather than silently clamping.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelingError


def ols(
    features: np.ndarray, targets: np.ndarray, intercept: bool = True
) -> tuple[np.ndarray, float]:
    """Ordinary least squares; returns (coefficients, intercept)."""
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    if features.ndim != 2:
        raise ModelingError("features must be a 2-D matrix")
    if len(features) != len(targets):
        raise ModelingError("features and targets must have equal rows")
    if len(features) <= features.shape[1] + int(intercept):
        raise ModelingError(
            f"underdetermined fit: {len(features)} samples for "
            f"{features.shape[1]} features"
        )
    if intercept:
        design = np.hstack([features, np.ones((len(features), 1))])
    else:
        design = features
    solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
    if intercept:
        return solution[:-1], float(solution[-1])
    return solution, 0.0


def nnls_ols(
    features: np.ndarray, targets: np.ndarray, intercept: bool = True
) -> tuple[np.ndarray, float]:
    """OLS with non-negative coefficients (active-set by elimination).

    Columns whose unconstrained coefficient comes out negative are
    removed and the fit repeated; the final coefficients for removed
    columns are zero.  The intercept is left unconstrained.
    """
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    active = list(range(features.shape[1]))
    for _ in range(features.shape[1] + 1):
        if not active:
            intercept_value = float(np.mean(targets)) if intercept else 0.0
            return np.zeros(features.shape[1]), intercept_value
        coefficients, intercept_value = ols(
            features[:, active], targets, intercept
        )
        negative = [i for i, c in enumerate(coefficients) if c < 0]
        if not negative:
            full = np.zeros(features.shape[1])
            for position, column in enumerate(active):
                full[column] = coefficients[position]
            return full, intercept_value
        worst = min(negative, key=lambda i: coefficients[i])
        active.pop(worst)
    raise ModelingError("non-negative fit did not converge")
