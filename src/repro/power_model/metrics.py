"""Accuracy metrics: PAAE and friends (paper Figures 5b, 6, 7)."""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import ModelingError
from repro.measure.measurement import Measurement

#: A fitted power model's prediction interface.
Predictor = Callable[[Measurement], float]


def prediction_errors(
    model: Predictor, measurements: Iterable[Measurement]
) -> list[float]:
    """Absolute relative prediction errors, in percent."""
    errors = []
    for measurement in measurements:
        actual = measurement.mean_power
        if actual <= 0:
            raise ModelingError(
                f"measurement {measurement.workload_name!r} has "
                "non-positive power"
            )
        predicted = model(measurement)
        errors.append(abs(predicted - actual) / actual * 100.0)
    return errors


def paae(model: Predictor, measurements: Iterable[Measurement]) -> float:
    """Percentage Average Absolute prediction Error (Bircher et al.)."""
    errors = prediction_errors(model, measurements)
    if not errors:
        raise ModelingError("PAAE needs at least one measurement")
    return sum(errors) / len(errors)


def max_error(model: Predictor, measurements: Iterable[Measurement]) -> float:
    """Worst-case absolute relative error, in percent."""
    errors = prediction_errors(model, measurements)
    if not errors:
        raise ModelingError("max_error needs at least one measurement")
    return max(errors)
