"""Size-capped LRU memo caches with hit/miss accounting.

Every long-lived memo in the system -- kernel-digest summaries, machine
activity vectors, mixed-core contention solves, architecture digests,
packed vector-plane kernels -- goes through :class:`LRUCache` so a
week-long campaign cannot grow memory without bound: the cache holds at
most ``capacity`` entries and evicts the least-recently-used one past
that.  Hit/miss counters are kept per cache and surfaced through
:meth:`LRUCache.stats` (see ``Machine.cache_stats`` for the aggregate
view), so throughput investigations can see whether a campaign is
actually re-using its memoized work.

The implementation is a thin shell over :class:`collections.OrderedDict`
-- ``move_to_end`` on hit, ``popitem(last=False)`` on eviction -- which
keeps ``get``/``put`` O(1) and cheap enough for the evaluation engine's
hot path.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable
from typing import Generic, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """A size-capped least-recently-used mapping with hit/miss counters."""

    __slots__ = ("name", "capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int, name: str = "lru") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """The cached value, refreshed to most-recently-used on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value  # type: ignore[return-value]

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU one past capacity."""
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._data.clear()

    def stats(self) -> dict:
        """Size/capacity/hit/miss/eviction counters, for diagnostics."""
        return {
            "name": self.name,
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache({self.name!r}, {len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
