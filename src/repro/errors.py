"""Exception hierarchy for the repro package.

Every error raised by the framework derives from :class:`MicroProbeError`
so callers can catch framework failures without masking programming
errors (``TypeError``, ``KeyError`` from unrelated code, and so on).
"""

from __future__ import annotations


class MicroProbeError(Exception):
    """Base class for all errors raised by the framework."""


#: Friendly alias: callers catch ``ReproError`` to mean "any error this
#: framework raises" without reaching for the historical class name.
ReproError = MicroProbeError


class DefinitionError(MicroProbeError):
    """A textual ISA or micro-architecture definition file is invalid."""

    def __init__(self, path: str, line_number: int, message: str) -> None:
        self.path = path
        self.line_number = line_number
        super().__init__(f"{path}:{line_number}: {message}")


class UnknownInstructionError(MicroProbeError):
    """An instruction mnemonic is not present in the loaded ISA."""

    def __init__(self, mnemonic: str) -> None:
        self.mnemonic = mnemonic
        super().__init__(f"unknown instruction: {mnemonic!r}")


class UnknownArchitectureError(MicroProbeError):
    """A requested architecture name has no registered definition."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown architecture {name!r}; known architectures: {', '.join(known)}"
        )


class PassError(MicroProbeError):
    """A code-generation pass could not be applied to the program IR."""


class SynthesisError(MicroProbeError):
    """The synthesizer could not produce a valid micro-benchmark."""


class CacheModelError(MicroProbeError):
    """The analytical cache model cannot satisfy a requested distribution."""


class SearchError(MicroProbeError):
    """A design-space exploration failed or was misconfigured."""


class MeasurementError(MicroProbeError):
    """The measurement harness was used incorrectly."""


class ServiceError(MicroProbeError):
    """A campaign-service request cannot be served.

    Carries the HTTP status the service handler should answer with;
    raised before any response bytes stream, so clients always get a
    clean error document rather than a truncated result stream.

    ``retry_after`` (seconds) is set on backpressure responses --
    admission-control 429s and drain-time 503s -- and rendered as the
    HTTP ``Retry-After`` header; clients with retry budget left sleep
    that long before resubmitting.  :attr:`transient` is the client's
    retry predicate: true exactly for connection/transport failures and
    the backpressure statuses, never for plan errors (a malformed plan
    stays malformed however often it is retried).
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        retry_after: float | None = None,
    ) -> None:
        self.status = status
        self.retry_after = retry_after
        super().__init__(message)

    @property
    def transient(self) -> bool:
        return self.status in (429, 503)


class PlanValidationError(MicroProbeError):
    """An experiment plan asks for configurations the chip cannot run.

    Raised at plan-build/plan-submit time -- before any cell is
    measured -- so a bad ``MachineConfig`` or :class:`ChipTopology`
    fails fast with a clear message instead of surfacing as a deep
    failure in the middle of a campaign.
    """


class ModelingError(MicroProbeError):
    """Power-model training or application failed."""


class FaultInjectedError(MicroProbeError):
    """A deterministic injected fault fired (chaos testing only).

    Raised by the ``poison`` fault site of
    :mod:`repro.exec.faults`; never raised in production runs.
    """


class ExecutionError(MicroProbeError):
    """A plan finished executing with quarantined cells.

    Raised by :meth:`~repro.exec.report.ExecutionReport.require_complete`
    -- the list-returning ``run()`` convenience of the executors -- when
    retries *and* the degraded in-process fallback could not measure
    every cell.  Carries the full :class:`~repro.exec.report.ExecutionReport`
    as :attr:`report`, so callers can still consume the partial results
    and the structured per-cell failures.
    """

    def __init__(self, report) -> None:
        self.report = report
        failures = report.failures
        preview = "; ".join(
            f"{failure.workload_name} on {failure.config_label} "
            f"({failure.kind} after {failure.attempts} attempts)"
            for failure in failures[:3]
        )
        if len(failures) > 3:
            preview += f"; ... {len(failures) - 3} more"
        super().__init__(
            f"{len(failures)} of {len(report.measurements)} cells "
            f"quarantined: {preview}"
        )
