"""Exception hierarchy for the repro package.

Every error raised by the framework derives from :class:`MicroProbeError`
so callers can catch framework failures without masking programming
errors (``TypeError``, ``KeyError`` from unrelated code, and so on).
"""

from __future__ import annotations


class MicroProbeError(Exception):
    """Base class for all errors raised by the framework."""


#: Friendly alias: callers catch ``ReproError`` to mean "any error this
#: framework raises" without reaching for the historical class name.
ReproError = MicroProbeError


class DefinitionError(MicroProbeError):
    """A textual ISA or micro-architecture definition file is invalid."""

    def __init__(self, path: str, line_number: int, message: str) -> None:
        self.path = path
        self.line_number = line_number
        super().__init__(f"{path}:{line_number}: {message}")


class UnknownInstructionError(MicroProbeError):
    """An instruction mnemonic is not present in the loaded ISA."""

    def __init__(self, mnemonic: str) -> None:
        self.mnemonic = mnemonic
        super().__init__(f"unknown instruction: {mnemonic!r}")


class UnknownArchitectureError(MicroProbeError):
    """A requested architecture name has no registered definition."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown architecture {name!r}; known architectures: {', '.join(known)}"
        )


class PassError(MicroProbeError):
    """A code-generation pass could not be applied to the program IR."""


class SynthesisError(MicroProbeError):
    """The synthesizer could not produce a valid micro-benchmark."""


class CacheModelError(MicroProbeError):
    """The analytical cache model cannot satisfy a requested distribution."""


class SearchError(MicroProbeError):
    """A design-space exploration failed or was misconfigured."""


class MeasurementError(MicroProbeError):
    """The measurement harness was used incorrectly."""


class PlanValidationError(MicroProbeError):
    """An experiment plan asks for configurations the chip cannot run.

    Raised at plan-build/plan-submit time -- before any cell is
    measured -- so a bad ``MachineConfig`` or :class:`ChipTopology`
    fails fast with a clear message instead of surfacing as a deep
    failure in the middle of a campaign.
    """


class ModelingError(MicroProbeError):
    """Power-model training or application failed."""
