"""Internal representation of a micro-benchmark under construction.

A :class:`Program` is an endless loop: a body of :class:`IRInstruction`
slots plus a closing backward branch.  Passes transform the program in
place; emission and simulation read it.  The IR keeps both the static
side (mnemonics, register assignments, immediates) and the dynamic
annotations the machine model needs (dependency distances, planned
memory levels and addresses, operand entropy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import SynthesisError
from repro.isa.instruction import InstructionDef
from repro.isa.operand import OperandKind
from repro.march.definition import MicroArchitecture
from repro.sim.kernel import Kernel, KernelInstruction

#: Value-initialisation policies and the operand-data entropy they induce.
DATA_ENTROPY = {"zero": 0.0, "pattern": 0.5, "random": 1.0}


@dataclass
class IRInstruction:
    """One slot of the loop body.

    Attributes:
        definition: The ISA instruction occupying this slot.
        registers: Register number per register operand name.
        immediates: Immediate value per immediate operand name.
        dep_distance: Slots back to this instruction's producer, or
            ``None`` when independent.
        dep_operand: Name of the source operand carrying the dependency
            (set alongside ``dep_distance`` by the ILP pass).
        address: Planned byte address for memory operations.
        source_level: Hierarchy level the address is planned to hit.
        structural: True for skeleton-owned slots (the loop-closing
            branch) that distribution passes must not replace.
        comment: Free-form annotation carried into emitted code.
    """

    definition: InstructionDef
    registers: dict[str, int] = field(default_factory=dict)
    immediates: dict[str, int] = field(default_factory=dict)
    dep_distance: int | None = None
    dep_operand: str | None = None
    address: int | None = None
    source_level: str | None = None
    structural: bool = False
    comment: str = ""

    @property
    def mnemonic(self) -> str:
        return self.definition.mnemonic

    def target_register(self) -> tuple[str, OperandKind, int] | None:
        """(operand name, kind, number) of the primary written register."""
        for operand in self.definition.operands:
            if operand.is_register and operand.direction.is_write:
                number = self.registers.get(operand.name)
                if number is not None:
                    return operand.name, operand.kind, number
        return None

    def source_operands(self) -> list[tuple[str, OperandKind]]:
        """Names and kinds of readable register operands."""
        return [
            (operand.name, operand.kind)
            for operand in self.definition.operands
            if operand.is_register and operand.direction.is_read
        ]


@dataclass
class Program:
    """A micro-benchmark: an endless loop over a fixed body.

    Built by the skeleton pass, refined by the remaining passes.
    """

    name: str
    arch: MicroArchitecture
    body: list[IRInstruction] = field(default_factory=list)
    loop_label: str = "loop"
    register_init: str = "random"
    immediate_init: str = "random"
    init_pattern: int = 0
    memory_base: int = 0
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Body slots, excluding structural slots."""
        return sum(1 for ins in self.body if not ins.structural)

    @property
    def operand_entropy(self) -> float:
        """Data-switching entropy implied by the value-init policies."""
        register_entropy = DATA_ENTROPY[self.register_init]
        immediate_entropy = DATA_ENTROPY[self.immediate_init]
        # Register values dominate datapath toggling; immediates only
        # feed a slice of the operand bits.
        return 0.8 * register_entropy + 0.2 * immediate_entropy

    def workload_slots(self) -> list[int]:
        """Indices of non-structural slots, in program order."""
        return [
            index for index, ins in enumerate(self.body) if not ins.structural
        ]

    def memory_instructions(self) -> list[IRInstruction]:
        """Memory-op slots (loads and stores), program order."""
        return [
            ins for ins in self.body
            if ins.definition.is_memory and not ins.definition.is_prefetch
            and not ins.structural
        ]

    # -- downstream views ------------------------------------------------------

    def to_kernel(self) -> Kernel:
        """The simulator-facing view of this program.

        Bodies the pass pipeline left analytically uniform (every
        workload slot shares mnemonic, dependency link and memory
        level -- the bootstrap's single-instruction loops) are stamped
        with a period fingerprint so the steady-state evaluation engine
        summarizes them in O(period) work.
        """
        if not self.body:
            raise SynthesisError(
                f"program {self.name!r} has no body; run a skeleton pass"
            )
        instructions = tuple(
            KernelInstruction(
                mnemonic=ins.mnemonic,
                dep_distance=ins.dep_distance,
                source_level=ins.source_level,
                address=ins.address,
            )
            for ins in self.body
        )
        return Kernel(
            name=self.name,
            instructions=instructions,
            operand_entropy=self.operand_entropy,
            period=self._analytic_period(instructions),
        )

    def _analytic_period(
        self, instructions: tuple[KernelInstruction, ...]
    ) -> int | None:
        """Period fingerprint of a uniform body, or ``None``.

        The fingerprint contract places the trailing structural slots
        (the loop-closing branch) in the remainder tail, so the period
        must divide the workload length while leaving the tail short of
        one full period; the smallest such divisor is returned.
        """
        tail = 0
        while tail < len(self.body) and self.body[-1 - tail].structural:
            tail += 1
        workload = len(self.body) - tail
        if workload < 2 or any(
            ins.structural for ins in self.body[:workload]
        ):
            return None
        key = instructions[0].analytic_key()
        if any(
            instructions[index].analytic_key() != key
            for index in range(1, workload)
        ):
            return None
        for divisor in (2, 3, 5, 7, 11, 13):
            if tail < divisor and workload % divisor == 0:
                return divisor
        return None

    def save(self, path: str | Path) -> Path:
        """Emit the program to ``path`` (.c or .s decides the emitter)."""
        from repro.core.emit.asm_emitter import emit_assembly
        from repro.core.emit.c_emitter import emit_c

        path = Path(path)
        if path.suffix == ".c":
            text = emit_c(self)
        elif path.suffix == ".s":
            text = emit_assembly(self)
        else:
            raise SynthesisError(
                f"cannot infer emitter from suffix {path.suffix!r}; "
                "use .c or .s"
            )
        path.write_text(text)
        return path

    def mnemonic_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for ins in self.body:
            counts[ins.mnemonic] = counts.get(ins.mnemonic, 0) + 1
        return counts
