"""The micro-benchmark synthesizer: the pass manager (paper Fig. 1-2).

The synthesizer holds a user-ordered list of passes and applies them to
a fresh program on every :meth:`Synthesizer.synthesize` call.  Each
call derives its own random stream from the synthesizer seed and the
call ordinal, so ``for i in range(10): synth.synthesize()`` yields ten
*different* micro-benchmarks implementing the same policy -- exactly
the paper's Figure-2 example.
"""

from __future__ import annotations

import random

from repro.core.ir import Program
from repro.core.passes.base import Pass, PassContext
from repro.core.passes.verify import ValidateProgram
from repro.core.registers import RegisterPools
from repro.errors import SynthesisError
from repro.march.definition import MicroArchitecture


class Synthesizer:
    """Applies an ordered pass pipeline to produce micro-benchmarks.

    Args:
        arch: Target micro-architecture (binds the ISA too).
        seed: Base seed; synthesis ``i`` uses stream ``(seed, i)``.
        name_prefix: Benchmark names are ``{prefix}-{ordinal}``.
        validate: Append the :class:`ValidateProgram` pass automatically.
    """

    def __init__(
        self,
        arch: MicroArchitecture,
        seed: int = 0,
        name_prefix: str = "ubench",
        validate: bool = True,
    ) -> None:
        self.arch = arch
        self.seed = seed
        self.name_prefix = name_prefix
        self.validate = validate
        self._passes: list[Pass] = []
        self._counter = 0

    @property
    def passes(self) -> tuple[Pass, ...]:
        """The configured pipeline, in application order."""
        return tuple(self._passes)

    def add_pass(self, pass_: Pass) -> "Synthesizer":
        """Append a pass; returns self so calls chain."""
        if not isinstance(pass_, Pass):
            raise SynthesisError(
                f"add_pass needs a Pass instance, got {type(pass_).__name__}"
            )
        self._passes.append(pass_)
        return self

    def clear_passes(self) -> None:
        self._passes.clear()

    def synthesize(self, name: str | None = None) -> Program:
        """Apply the pipeline to a fresh program.

        Raises:
            SynthesisError: If no passes are configured.
            PassError: If a pass cannot be applied (bad ordering etc.).
        """
        if not self._passes:
            raise SynthesisError("no passes configured")
        ordinal = self._counter
        self._counter += 1
        if name is None:
            name = f"{self.name_prefix}-{ordinal}"

        context = PassContext(
            arch=self.arch,
            rng=random.Random(f"{self.seed}:{ordinal}"),
            pools=RegisterPools(),
            synthesis_index=ordinal,
        )
        program = Program(name=name, arch=self.arch)
        pipeline = list(self._passes)
        if self.validate:
            pipeline.append(ValidateProgram())
        for pass_ in pipeline:
            pass_.apply(program, context)
        program.metadata["passes"] = [pass_.name for pass_ in pipeline]
        return program
