"""Code generation module (paper section 2.2).

The micro-benchmark synthesizer works like a compiler: an internal
representation (:mod:`repro.core.ir`) is transformed by a user-ordered
sequence of passes (:mod:`repro.core.passes`) and finally emitted as C
with inline assembly or as a plain assembly file
(:mod:`repro.core.emit`), or handed to the machine substrate as a
:class:`~repro.sim.kernel.Kernel`.

The public surface mirrors the paper's Figure-2 script::

    arch = repro.arch.get_architecture("POWER7")
    synth = repro.code.Synthesizer(arch)
    synth.add_pass(passes.EndlessLoopSkeleton(4096))
    synth.add_pass(passes.InstructionDistribution(loads_vsu))
    synth.add_pass(passes.MemoryModel({"L1": 1/3, "L2": 1/3, "L3": 1/3}))
    synth.add_pass(passes.InitRegisters(pattern=0b01010101))
    synth.add_pass(passes.DependencyDistance(mode="random"))
    bench = synth.synthesize()
    bench.save("example.c")
"""

from repro.core import passes
from repro.core.ir import IRInstruction, Program
from repro.core.synthesizer import Synthesizer

__all__ = ["IRInstruction", "Program", "Synthesizer", "passes"]
