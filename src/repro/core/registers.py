"""Architected register pools and round-robin allocation.

Code generation needs concrete register numbers for emission and for
expressing dependencies (a consumer reads the producer's target
register).  The allocator reserves the ABI registers a real POWER
toolchain would (r0 quirk, r1 stack, r2 TOC, r13 thread pointer) plus
the registers the generated skeleton itself uses (loop counter and
memory base).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.operand import OperandKind

#: Register reserved as the memory-region base pointer in generated code.
MEMORY_BASE_REGISTER = 28
#: Register reserved as scratch for large-displacement address forming.
ADDRESS_SCRATCH_REGISTER = 27

_RESERVED_GPRS = frozenset({0, 1, 2, 13, ADDRESS_SCRATCH_REGISTER, MEMORY_BASE_REGISTER})

_POOL_SIZES = {
    OperandKind.GPR: 32,
    OperandKind.FPR: 32,
    OperandKind.VR: 32,
    OperandKind.VSR: 64,
    OperandKind.CR: 8,
    OperandKind.SPR: 1,
}


@dataclass
class RegisterPools:
    """Round-robin register allocator over the architected files."""

    _cursors: dict[OperandKind, int] = field(default_factory=dict)

    def allocatable(self, kind: OperandKind) -> list[int]:
        """Register numbers available to generated code for ``kind``."""
        size = _POOL_SIZES.get(kind)
        if size is None:
            raise ValueError(f"no register pool for {kind}")
        if kind is OperandKind.GPR:
            return [n for n in range(size) if n not in _RESERVED_GPRS]
        return list(range(size))

    def take(self, kind: OperandKind) -> int:
        """Next register in round-robin order for ``kind``."""
        pool = self.allocatable(kind)
        cursor = self._cursors.get(kind, 0)
        register = pool[cursor % len(pool)]
        self._cursors[kind] = cursor + 1
        return register

    def reset(self) -> None:
        self._cursors.clear()


def register_prefix(kind: OperandKind) -> str:
    """Assembly prefix for a register kind (``r3``, ``f5``, ``vs12``...)."""
    prefixes = {
        OperandKind.GPR: "r",
        OperandKind.FPR: "f",
        OperandKind.VR: "v",
        OperandKind.VSR: "vs",
        OperandKind.CR: "cr",
        OperandKind.SPR: "",
    }
    return prefixes[kind]


def format_register(kind: OperandKind, number: int) -> str:
    """Render a register operand for assembly output."""
    if kind is OperandKind.SPR:
        return ""  # SPR operands are implicit in PowerPC mnemonics
    return f"{register_prefix(kind)}{number}"
