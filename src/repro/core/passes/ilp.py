"""ILP pass: dependency distances via register allocation.

The paper models instruction-level parallelism by choosing the
*dependency distance* between instructions -- how many slots back the
producer of each instruction's input sits -- and realizing it through
register allocation: the consumer reads the register the producer
writes.

Modes:

* ``none`` -- clear all dependencies (maximum ILP; bootstrap benchmark
  #2 and all max-power stressmarks).
* ``chain`` -- every instruction depends on its predecessor (serialized
  execution; bootstrap benchmark #1, used to derive latencies).
* ``fixed`` -- a constant distance.
* ``random`` -- distances drawn uniformly from
  ``[min_distance, max_distance]`` (the Figure-2 example's
  "Set instruction dependency distance randomly").

A dependency is only realized when the producer's target register kind
matches one of the consumer's source operand kinds; otherwise nearby
distances are tried, and the slot is left independent if none within
the search window is compatible.  Store-class consumers link through
their data register; memory consumers link through their index
register (the value-initialisation contract guarantees producers of
address inputs yield the planned region offsets).
"""

from __future__ import annotations

from repro.core.ir import IRInstruction, Program
from repro.core.passes.base import Pass, PassContext
from repro.errors import PassError
from repro.isa.operand import OperandKind

_MODES = ("none", "chain", "fixed", "random", "mean")
#: How far around the requested distance to search for a compatible producer.
_SEARCH_WINDOW = 8

class DependencyDistance(Pass):
    """Assign dependency distances and wire registers accordingly."""

    def __init__(
        self,
        mode: str = "random",
        distance: int | None = None,
        min_distance: int = 1,
        max_distance: int = 32,
        mean_distance: float | None = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if mode == "fixed" and (distance is None or distance < 1):
            raise ValueError("fixed mode needs distance >= 1")
        if mode == "mean" and (mean_distance is None or mean_distance < 1):
            raise ValueError("mean mode needs mean_distance >= 1")
        if min_distance < 1 or max_distance < min_distance:
            raise ValueError("need 1 <= min_distance <= max_distance")
        self.mode = mode
        self.distance = distance
        self.min_distance = min_distance
        self.max_distance = max_distance
        self.mean_distance = mean_distance

    @property
    def name(self) -> str:
        if self.mode == "fixed":
            return f"DependencyDistance(fixed={self.distance})"
        if self.mode == "random":
            return (
                f"DependencyDistance(random "
                f"[{self.min_distance}, {self.max_distance}])"
            )
        if self.mode == "mean":
            return f"DependencyDistance(mean={self.mean_distance:g})"
        return f"DependencyDistance({self.mode})"

    def apply(self, program: Program, context: PassContext) -> None:
        slots = program.workload_slots()
        if not slots:
            raise PassError(f"{program.name}: no instructions to link")

        if self.mode == "none":
            for index in slots:
                program.body[index].dep_distance = None
                program.body[index].dep_operand = None
            return

        for index in slots:
            wanted = self._wanted_distance(context)
            self._link(program, index, wanted)

    def _wanted_distance(self, context: PassContext) -> int:
        if self.mode == "chain":
            return 1
        if self.mode == "fixed":
            assert self.distance is not None
            return self.distance
        if self.mode == "mean":
            # Bernoulli mix of floor/ceil realizes a fractional mean
            # distance; random assignment mixes the distances within
            # dependence cycles, so steady-state IPC interpolates.
            assert self.mean_distance is not None
            low = int(self.mean_distance)
            fraction = self.mean_distance - low
            if context.rng.random() < fraction:
                return low + 1
            return low
        return context.rng.randint(self.min_distance, self.max_distance)

    def _link(self, program: Program, index: int, wanted: int) -> None:
        """Try body distances around ``wanted`` until kinds are compatible.

        Distances are expressed in *body* positions (the same space the
        machine substrate and the validation pass use); structural
        slots are never selected as producers.  Data-register sources
        are preferred across the whole search window before any
        address-register (pointer-chase) link is considered, so memory
        operations keep their planned addressing whenever a data
        dependency can realize the distance.
        """
        consumer = program.body[index]
        all_sources = self._dependency_sources(consumer)
        if not all_sources:
            consumer.dep_distance = None
            return
        address_names = {
            op.name for op in consumer.definition.memory_operands
        }
        data_sources = [
            source for source in all_sources
            if source[0] not in address_names
        ]
        size = len(program.body)
        for sources in (data_sources, all_sources):
            if not sources:
                continue
            for delta in range(_SEARCH_WINDOW + 1):
                for candidate in (wanted + delta, wanted - delta):
                    if candidate < 1 or candidate > size - 1:
                        continue
                    producer = program.body[(index - candidate) % size]
                    if producer.structural:
                        continue
                    target = producer.target_register()
                    if target is None:
                        continue
                    __, kind, number = target
                    for source_name, source_kind in sources:
                        if source_kind is kind:
                            consumer.registers[source_name] = number
                            consumer.dep_distance = candidate
                            consumer.dep_operand = source_name
                            return
        consumer.dep_distance = None
        consumer.dep_operand = None

    @staticmethod
    def _dependency_sources(
        instruction: IRInstruction,
    ) -> list[tuple[str, OperandKind]]:
        """Candidate source operands, preferring data over address inputs.

        For memory instructions, the effective-address operands come
        last (dependency through the index register is a pointer-chase
        pattern); for everything else all register sources are data.
        """
        address_names = {
            op.name for op in instruction.definition.memory_operands
        }
        data, index_reg, base_reg = [], [], []
        for name, kind in instruction.source_operands():
            if kind is OperandKind.SPR:
                continue
            if name not in address_names:
                data.append((name, kind))
            elif name == "RB":
                index_reg.append((name, kind))
            else:
                base_reg.append((name, kind))
        return data + index_reg + base_reg
