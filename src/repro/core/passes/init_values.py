"""Value-initialisation passes.

Registers, immediates and memory regions can be initialised to zero, a
fixed bit pattern, or random values.  The choice matters for power:
random data maximizes datapath toggling while all-zero operands can
reduce EPI by up to 40 % (paper section 5); the bootstrap process uses
random values "to minimize the possible data switching effects,
allowing fair comparison between instructions".
"""

from __future__ import annotations

from repro.core.ir import DATA_ENTROPY, Program
from repro.core.passes.base import Pass, PassContext
from repro.errors import PassError
from repro.isa.operand import OperandKind

_MODES = tuple(DATA_ENTROPY)


def _check_mode(mode: str) -> None:
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")


class InitRegisters(Pass):
    """Set the register-initialisation policy of the program.

    The Figure-2 example's "Init registers to 0b01010101" is
    ``InitRegisters("pattern", pattern=0b01010101)``.
    """

    def __init__(self, mode: str = "random", pattern: int = 0b01010101) -> None:
        _check_mode(mode)
        self.mode = mode
        self.pattern = pattern

    @property
    def name(self) -> str:
        if self.mode == "pattern":
            return f"InitRegisters(pattern=0b{self.pattern:b})"
        return f"InitRegisters({self.mode})"

    def apply(self, program: Program, context: PassContext) -> None:
        program.register_init = self.mode
        if self.mode == "pattern":
            program.init_pattern = self.pattern


class InitImmediates(Pass):
    """Assign immediate operand values throughout the body.

    Displacement operands are exempt: they carry addresses planned by
    the memory pass, not data.
    """

    def __init__(self, mode: str = "random", pattern: int = 0b01010101) -> None:
        _check_mode(mode)
        self.mode = mode
        self.pattern = pattern

    @property
    def name(self) -> str:
        if self.mode == "pattern":
            return f"InitImmediates(pattern=0b{self.pattern:b})"
        return f"InitImmediates({self.mode})"

    def apply(self, program: Program, context: PassContext) -> None:
        if not program.body:
            raise PassError(f"{program.name}: nothing to initialize")
        program.immediate_init = self.mode
        for instruction in program.body:
            for operand in instruction.definition.immediates:
                if operand.kind is OperandKind.DISP:
                    continue
                instruction.immediates[operand.name] = self._value(
                    operand.width, context
                )

    def _value(self, width: int, context: PassContext) -> int:
        # Immediates are encoded as signed fields; stay within the
        # non-negative half so every mode emits valid assembly.
        limit = max(1, 2 ** (width - 1) - 1)
        if self.mode == "zero":
            return 0
        if self.mode == "pattern":
            return self.pattern & limit
        return context.rng.randint(0, limit)
