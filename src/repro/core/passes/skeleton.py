"""Program-skeleton pass: the endless loop."""

from __future__ import annotations

from repro.core.ir import IRInstruction, Program
from repro.core.passes.base import Pass, PassContext
from repro.errors import PassError


class EndlessLoopSkeleton(Pass):
    """Define the program as an endless loop of ``size`` instructions.

    The body is created as ``size`` nop placeholder slots that the
    instruction-distribution pass later fills, plus a structural
    backward branch closing the loop.  This is the paper's
    "Single end-less loop of 4096 instructions" pass.
    """

    def __init__(self, size: int = 4096) -> None:
        if size < 1:
            raise ValueError("loop size must be >= 1")
        self.size = size

    @property
    def name(self) -> str:
        return f"EndlessLoopSkeleton({self.size})"

    def apply(self, program: Program, context: PassContext) -> None:
        if program.body:
            raise PassError(
                f"{program.name}: skeleton applied to a non-empty program"
            )
        isa = context.arch.isa
        nop = isa.instruction("nop")
        branch = isa.instruction("b")
        program.body = [
            IRInstruction(definition=nop) for _ in range(self.size)
        ]
        closing = IRInstruction(
            definition=branch,
            structural=True,
            comment="loop-closing branch",
        )
        program.body.append(closing)
        program.loop_label = "loop"
