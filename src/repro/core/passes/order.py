"""Sequence-order passes.

Section 6 of the paper reports that stressmarks with the *same*
instruction distribution and activity rate but different instruction
order differ by up to 17 % in power.  These passes rearrange the body
without changing its multiset of instructions, which is exactly the
dimension the max-power search explores.

Order passes clear dependency distances (a reorder invalidates them);
run any :class:`~repro.core.passes.ilp.DependencyDistance` pass *after*
ordering.
"""

from __future__ import annotations

from repro.core.ir import Program
from repro.core.passes.base import Pass, PassContext
from repro.errors import PassError

_MODES = ("shuffle", "interleave", "blocked", "rotate")


class SequenceOrder(Pass):
    """Reorder the workload slots of the body.

    Modes:
        * ``shuffle`` -- random permutation;
        * ``interleave`` -- round-robin across functional-unit groups
          (maximizes unit alternation between neighbours);
        * ``blocked`` -- group instructions by functional unit
          (minimizes alternation);
        * ``rotate`` -- rotate the sequence by ``amount`` slots.
    """

    def __init__(self, mode: str = "shuffle", amount: int = 0) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode
        self.amount = amount

    @property
    def name(self) -> str:
        if self.mode == "rotate":
            return f"SequenceOrder(rotate {self.amount})"
        return f"SequenceOrder({self.mode})"

    def apply(self, program: Program, context: PassContext) -> None:
        slots = program.workload_slots()
        if not slots:
            raise PassError(f"{program.name}: nothing to reorder")
        instructions = [program.body[index] for index in slots]

        if self.mode == "shuffle":
            context.rng.shuffle(instructions)
        elif self.mode == "rotate":
            shift = self.amount % len(instructions)
            instructions = instructions[shift:] + instructions[:shift]
        else:
            groups: dict[str, list] = {}
            for instruction in instructions:
                props = context.arch.props(instruction.mnemonic)
                unit = props.usages[0].units[0] if props.usages else "-"
                groups.setdefault(unit, []).append(instruction)
            if self.mode == "blocked":
                instructions = [
                    instruction
                    for unit in sorted(groups)
                    for instruction in groups[unit]
                ]
            else:  # interleave
                instructions = []
                queues = [groups[unit] for unit in sorted(groups)]
                cursors = [0] * len(queues)
                while any(c < len(q) for c, q in zip(cursors, queues)):
                    for position, queue in enumerate(queues):
                        if cursors[position] < len(queue):
                            instructions.append(queue[cursors[position]])
                            cursors[position] += 1

        for index, instruction in zip(slots, instructions):
            program.body[index] = instruction
            instruction.dep_distance = None
