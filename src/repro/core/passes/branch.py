"""Branch-behaviour pass.

Controls the speculation profile of the benchmark by planting
conditional branches into the body.  Benchmarks in this paper's case
studies keep branches predictable (forward, never-taken), so the pass
models the *presence* of branch work (BRU occupancy, front-end
bandwidth) without perturbing the planned instruction stream --
mirrored from the paper's basic branch modeling pass.
"""

from __future__ import annotations

from repro.core.ir import Program
from repro.core.passes.base import Pass, PassContext
from repro.errors import PassError


class BranchBehavior(Pass):
    """Replace a fraction of slots with predictable conditional branches.

    Args:
        fraction: Fraction of workload slots to turn into branches.
        mnemonic: Branch mnemonic to plant (default ``bc`` -- a
            conditional branch whose condition the init passes keep
            false, so it falls through and the loop structure is
            preserved).
    """

    def __init__(self, fraction: float, mnemonic: str = "bc") -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        self.fraction = fraction
        self.mnemonic = mnemonic

    @property
    def name(self) -> str:
        return f"BranchBehavior({self.fraction:.0%} {self.mnemonic})"

    def apply(self, program: Program, context: PassContext) -> None:
        slots = program.workload_slots()
        if not slots:
            raise PassError(f"{program.name}: no slots for branch planting")
        definition = context.arch.isa.instruction(self.mnemonic)
        if not definition.is_branch:
            raise PassError(f"{self.mnemonic!r} is not a branch")
        count = round(self.fraction * len(slots))
        for index in context.rng.sample(slots, count):
            instruction = program.body[index]
            instruction.definition = definition
            instruction.registers = {}
            instruction.immediates = {}
            instruction.dep_distance = None
            instruction.address = None
            instruction.source_level = None
            instruction.comment = "planted branch (fall-through)"
