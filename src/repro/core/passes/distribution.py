"""Instruction-distribution pass.

Fills the skeleton's slots with instructions drawn from a user-selected
pool, either as an exact proportional mix (shuffled multiset, the
default -- distributions are then exact, not just expected) or by
independent weighted draws.  Register operands receive round-robin
default assignments; memory operands are left for the memory pass.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.ir import IRInstruction, Program
from repro.core.passes.base import Pass, PassContext
from repro.core.registers import MEMORY_BASE_REGISTER
from repro.errors import PassError
from repro.isa.instruction import InstructionDef


class InstructionDistribution(Pass):
    """Fill workload slots with a mix of instructions.

    Args:
        pool: Instruction definitions (or mnemonics, resolved against
            the target ISA) to draw from.
        weights: Optional relative weight per pool entry, parallel to
            ``pool``; uniform when omitted.
        exact: When true (default), realize the weights exactly as a
            shuffled multiset; when false, draw each slot independently.
    """

    def __init__(
        self,
        pool: Sequence[InstructionDef | str],
        weights: Sequence[float] | None = None,
        exact: bool = True,
    ) -> None:
        if not pool:
            raise ValueError("instruction pool must not be empty")
        if weights is not None and len(weights) != len(pool):
            raise ValueError("weights must parallel the pool")
        if weights is not None and (min(weights) < 0 or sum(weights) <= 0):
            raise ValueError("weights must be non-negative and sum > 0")
        self.pool = list(pool)
        self.weights = list(weights) if weights is not None else None
        self.exact = exact

    @property
    def name(self) -> str:
        return f"InstructionDistribution({len(self.pool)} instructions)"

    def apply(self, program: Program, context: PassContext) -> None:
        slots = program.workload_slots()
        if not slots:
            raise PassError(
                f"{program.name}: no slots to fill; run a skeleton pass first"
            )
        definitions = [
            entry if isinstance(entry, InstructionDef)
            else context.arch.isa.instruction(entry)
            for entry in self.pool
        ]
        if self.exact:
            choices = self._exact_mix(definitions, len(slots), context)
        else:
            weights = self.weights or [1.0] * len(definitions)
            choices = context.rng.choices(definitions, weights, k=len(slots))

        for slot, definition in zip(slots, choices):
            program.body[slot] = self._instantiate(definition, context)

    def _exact_mix(
        self,
        definitions: list[InstructionDef],
        count: int,
        context: PassContext,
    ) -> list[InstructionDef]:
        weights = self.weights or [1.0] * len(definitions)
        total = sum(weights)
        raw = [weight / total * count for weight in weights]
        counts = [int(value) for value in raw]
        remainder = count - sum(counts)
        order = sorted(
            range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True
        )
        for index in order[:remainder]:
            counts[index] += 1
        mix: list[InstructionDef] = []
        for definition, amount in zip(definitions, counts):
            mix.extend([definition] * amount)
        context.rng.shuffle(mix)
        return mix

    def _instantiate(
        self, definition: InstructionDef, context: PassContext
    ) -> IRInstruction:
        """Create an instruction instance with default register operands."""
        instruction = IRInstruction(definition=definition)
        memory_names = {op.name for op in definition.memory_operands}
        for operand in definition.operands:
            if not operand.is_register:
                continue
            if definition.is_memory and operand.name in memory_names:
                # Address operands: base points at the benchmark's
                # memory region; the memory pass plans the rest.
                if operand.name == "RA":
                    instruction.registers[operand.name] = MEMORY_BASE_REGISTER
                else:
                    instruction.registers[operand.name] = context.pools.take(
                        operand.kind
                    )
                continue
            instruction.registers[operand.name] = context.pools.take(
                operand.kind
            )
        return instruction
