"""Pass protocol and the shared pass context."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.ir import Program
from repro.core.registers import RegisterPools
from repro.march.definition import MicroArchitecture


@dataclass
class PassContext:
    """State shared by the passes of one synthesis run.

    Attributes:
        arch: The target micro-architecture.
        rng: Seeded generator; all pass randomness must come from here
            so a synthesis run is reproducible from its seed.
        pools: Round-robin register allocator shared across passes.
        synthesis_index: Ordinal of this run within the synthesizer
            (the paper's example calls ``synthesize()`` ten times).
    """

    arch: MicroArchitecture
    rng: random.Random
    pools: RegisterPools = field(default_factory=RegisterPools)
    synthesis_index: int = 0


class Pass(ABC):
    """One transformation of the program under construction."""

    @property
    def name(self) -> str:
        """Human-readable pass name (defaults to the class name)."""
        return type(self).__name__

    @abstractmethod
    def apply(self, program: Program, context: PassContext) -> None:
        """Transform ``program`` in place.

        Raises:
            PassError: If the program is not in a state this pass can
                handle (e.g. distribution before skeleton).
        """

    def __repr__(self) -> str:
        return f"<pass {self.name}>"
