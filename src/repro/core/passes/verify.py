"""Final IR validation pass.

The synthesizer appends this pass automatically: it enforces the
invariants every downstream consumer (emitters, machine substrate)
relies on, so a mis-ordered pass pipeline fails loudly at synthesis
time rather than producing a silently wrong micro-benchmark.
"""

from __future__ import annotations

from repro.core.ir import Program
from repro.core.passes.base import Pass, PassContext
from repro.errors import PassError


class ValidateProgram(Pass):
    """Check IR well-formedness after all transformations."""

    def apply(self, program: Program, context: PassContext) -> None:
        if not program.body:
            raise PassError(f"{program.name}: empty program")
        size = len(program.body)
        for index, instruction in enumerate(program.body):
            where = f"{program.name} slot {index} ({instruction.mnemonic})"
            for operand in instruction.definition.operands:
                if operand.is_register and not operand.kind.name == "SPR":
                    if operand.name not in instruction.registers:
                        raise PassError(f"{where}: operand {operand.name} unassigned")
            if instruction.definition.is_memory and not instruction.definition.is_prefetch:
                if not instruction.structural and instruction.address is None:
                    raise PassError(
                        f"{where}: memory instruction without a planned "
                        "address; run a MemoryModel pass"
                    )
            distance = instruction.dep_distance
            if distance is not None:
                if distance < 1 or distance >= size:
                    raise PassError(
                        f"{where}: dependency distance {distance} out of range"
                    )
                producer = program.body[(index - distance) % size]
                if producer.target_register() is None:
                    raise PassError(
                        f"{where}: producer at distance {distance} "
                        f"({producer.mnemonic}) writes no register"
                    )
