"""Memory-behaviour pass: plan addresses with the analytical cache model.

"Generate addresses according to model" from the paper's Figure-2
script: every memory instruction in the body receives a planned byte
address and the hierarchy level that address is statically guaranteed
to hit, using the set-associative cache model of section 2.1.3 -- no
design-space exploration required.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.ir import Program
from repro.core.passes.base import Pass, PassContext
from repro.errors import PassError
from repro.march.cache_model import SetAssociativeCacheModel


class MemoryModel(Pass):
    """Assign addresses realizing a target hierarchy hit distribution.

    Args:
        weights: Per-level hit fractions, e.g. ``{"L1": 1/3, "L2": 1/3,
            "L3": 1/3}``.  Keys are the architecture's level names.
        base_address: Optional override of the model's memory-region
            base (useful to give concurrent benchmarks disjoint
            regions).
    """

    def __init__(
        self,
        weights: Mapping[str, float],
        base_address: int | None = None,
    ) -> None:
        self.weights = dict(weights)
        self.base_address = base_address

    @property
    def name(self) -> str:
        spec = ", ".join(
            f"{level}={weight:.0%}" for level, weight in self.weights.items()
        )
        return f"MemoryModel({spec})"

    def apply(self, program: Program, context: PassContext) -> None:
        memory_instructions = program.memory_instructions()
        if not memory_instructions:
            raise PassError(
                f"{program.name}: memory model applied but the body has "
                "no memory instructions; order the distribution pass first"
            )
        if self.base_address is not None:
            model = SetAssociativeCacheModel(
                context.arch.caches,
                context.arch.memory,
                base_address=self.base_address,
            )
        else:
            model = SetAssociativeCacheModel.for_architecture(context.arch)

        plan = model.plan(
            self.weights,
            slot_count=len(memory_instructions),
            seed=context.rng.randrange(2 ** 31),
        )
        program.memory_base = model.base_address
        program.metadata["memory_plan"] = plan

        fits_dform = 0
        for instruction, address, level in zip(
            memory_instructions, plan.slots, plan.slot_levels
        ):
            instruction.address = address
            instruction.source_level = level
            offset = address - model.base_address
            displacement = next(
                (op for op in instruction.definition.operands
                 if op.name in ("D", "DS", "DQ")),
                None,
            )
            if displacement is not None:
                instruction.immediates[displacement.name] = offset
                if -32768 <= offset <= 32767:
                    fits_dform += 1
        program.metadata["dform_offsets_in_range"] = fits_dform
