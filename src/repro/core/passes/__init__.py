"""The pass repository (paper section 2.2).

Every transformation the synthesizer can apply lives here.  The paper's
five canonical steps map to: skeleton
(:class:`~repro.core.passes.skeleton.EndlessLoopSkeleton`), instruction
distribution
(:class:`~repro.core.passes.distribution.InstructionDistribution`),
memory behaviour (:class:`~repro.core.passes.memory.MemoryModel`),
branch behaviour (:class:`~repro.core.passes.branch.BranchBehavior`)
and ILP via register allocation
(:class:`~repro.core.passes.ilp.DependencyDistance`), plus the
value-initialisation and sequence-order passes the case studies use.
"""

from repro.core.passes.base import Pass, PassContext
from repro.core.passes.branch import BranchBehavior
from repro.core.passes.distribution import InstructionDistribution
from repro.core.passes.ilp import DependencyDistance
from repro.core.passes.init_values import InitImmediates, InitRegisters
from repro.core.passes.memory import MemoryModel
from repro.core.passes.order import SequenceOrder
from repro.core.passes.skeleton import EndlessLoopSkeleton
from repro.core.passes.verify import ValidateProgram

__all__ = [
    "BranchBehavior",
    "DependencyDistance",
    "EndlessLoopSkeleton",
    "InitImmediates",
    "InitRegisters",
    "InstructionDistribution",
    "MemoryModel",
    "Pass",
    "PassContext",
    "SequenceOrder",
    "ValidateProgram",
]
