"""Emitters: turn the IR into compilable C or assembly artifacts.

The generated micro-benchmarks are what a user of the framework would
actually compile and run on real hardware: a ``.c`` file with the loop
as one inline-assembly block, or a bare ``.s`` file.  The machine
substrate consumes the same IR directly (``Program.to_kernel``), so
emission and simulation can never drift apart.
"""

from repro.core.emit.asm_emitter import emit_assembly
from repro.core.emit.c_emitter import emit_c
from repro.core.emit.formatting import format_instruction

__all__ = ["emit_assembly", "emit_c", "format_instruction"]
