"""Assembly rendering of IR instructions.

One IR slot can render to several assembly lines: memory operations
whose planned offset exceeds the 16-bit displacement reach emit the
standard PowerPC medium-model address-forming prelude (``addis``/``li``
into the reserved scratch register).  The slight instruction-mix
perturbation this causes on real hardware is inherent to large-footprint
micro-benchmarks and documented in DESIGN.md; the simulated kernel uses
the planned addresses directly.
"""

from __future__ import annotations

from repro.core.ir import IRInstruction, Program
from repro.core.registers import (
    ADDRESS_SCRATCH_REGISTER,
    MEMORY_BASE_REGISTER,
    format_register,
)
from repro.isa.operand import OperandKind

_D_FORM_MIN, _D_FORM_MAX = -32768, 32767


def format_instruction(
    instruction: IRInstruction, program: Program
) -> list[str]:
    """Render one IR slot as assembly lines."""
    definition = instruction.definition
    if definition.is_nop:
        return ["nop"]
    if definition.is_branch:
        return [_format_branch(instruction, program)]
    if definition.is_memory:
        return _format_memory(instruction, program)
    return [_format_plain(instruction)]


def _operand_text(instruction: IRInstruction, name: str, kind: OperandKind) -> str:
    if kind in (OperandKind.IMM, OperandKind.DISP):
        return str(instruction.immediates.get(name, 0))
    return format_register(kind, instruction.registers.get(name, 0))


def _format_plain(instruction: IRInstruction) -> str:
    parts = []
    for operand in instruction.definition.operands:
        if operand.kind is OperandKind.SPR:
            continue  # SPRs are implicit in the mnemonic (mtctr etc.)
        parts.append(_operand_text(instruction, operand.name, operand.kind))
    if not parts:
        return instruction.mnemonic
    return f"{instruction.mnemonic} {', '.join(parts)}"


def _format_branch(instruction: IRInstruction, program: Program) -> str:
    mnemonic = instruction.mnemonic
    if instruction.structural:
        return f"{mnemonic} {program.loop_label}"
    if mnemonic in ("b", "bl"):
        return f"{mnemonic} {program.loop_label}"
    if mnemonic in ("blr", "bctr"):
        return mnemonic
    if mnemonic == "bdnz":
        return f"bdnz {program.loop_label}"
    # Planted conditional branches fall through: branch-never encoding.
    return "bc 4, 2, . + 4"


def _format_memory(instruction: IRInstruction, program: Program) -> list[str]:
    definition = instruction.definition
    offset = 0
    if instruction.address is not None:
        offset = instruction.address - program.memory_base

    # Dependency-carried addressing: the producer's value is the
    # address input, so no forming prelude is emitted.
    if instruction.dep_operand in ("RA", "RB"):
        return [_format_plain(instruction)]

    if definition.is_prefetch:
        base = format_register(OperandKind.GPR, MEMORY_BASE_REGISTER)
        index = format_register(
            OperandKind.GPR,
            instruction.registers.get("RB", ADDRESS_SCRATCH_REGISTER),
        )
        return [f"{definition.mnemonic} {base}, {index}"]

    if definition.is_indexed:
        return _format_xform(instruction, offset)
    return _format_dform(instruction, offset)


def _data_operands(instruction: IRInstruction) -> list[str]:
    """Non-address operands, rendered, in assembly order."""
    address_names = {"RA", "RB", "D", "DS", "DQ"}
    rendered = []
    for operand in instruction.definition.operands:
        if operand.name in address_names or operand.kind is OperandKind.SPR:
            continue
        rendered.append(
            _operand_text(instruction, operand.name, operand.kind)
        )
    return rendered


def _format_dform(instruction: IRInstruction, offset: int) -> list[str]:
    base_number = instruction.registers.get("RA", MEMORY_BASE_REGISTER)
    base = format_register(OperandKind.GPR, base_number)
    data = ", ".join(_data_operands(instruction))
    if _D_FORM_MIN <= offset <= _D_FORM_MAX:
        return [f"{instruction.mnemonic} {data}, {offset}({base})"]
    high = (offset + 0x8000) >> 16
    low = offset - (high << 16)
    scratch = format_register(OperandKind.GPR, ADDRESS_SCRATCH_REGISTER)
    return [
        f"addis {scratch}, {base}, {high}",
        f"{instruction.mnemonic} {data}, {low}({scratch})",
    ]


def _format_xform(instruction: IRInstruction, offset: int) -> list[str]:
    base_number = instruction.registers.get("RA", MEMORY_BASE_REGISTER)
    base = format_register(OperandKind.GPR, base_number)
    scratch = format_register(OperandKind.GPR, ADDRESS_SCRATCH_REGISTER)
    data = ", ".join(_data_operands(instruction))
    operands = f"{data}, {base}, {scratch}" if data else f"{base}, {scratch}"
    if _D_FORM_MIN <= offset <= _D_FORM_MAX:
        prelude = [f"li {scratch}, {offset}"]
    else:
        high = (offset >> 16) & 0xFFFF
        low = offset & 0xFFFF
        prelude = [
            f"lis {scratch}, {high}",
            f"ori {scratch}, {scratch}, {low}",
        ]
    return prelude + [f"{instruction.mnemonic} {operands}"]
