"""C-with-inline-assembly emitter (``.c`` files).

The artifact matches what the paper's framework deploys on the real
machine: a C translation unit that allocates and initializes the
benchmark's memory region, binds the reserved registers, and spins the
endless loop inside one ``__asm__ volatile`` block (so the compiler
cannot reorder or delete the generated instruction stream).
"""

from __future__ import annotations

from repro.core.emit.asm_emitter import DEFAULT_REGION_BYTES, _prologue
from repro.core.emit.formatting import format_instruction
from repro.core.ir import Program

_INIT_EXPRESSION = {
    "zero": "0",
    "pattern": "pattern",
    "random": "(unsigned char)(rand())",
}


def emit_c(program: Program) -> str:
    """Render the program as a complete C translation unit."""
    asm_lines: list[str] = []
    for line in _prologue(program, materialize_base=False):
        if line.startswith("#"):
            continue
        asm_lines.append(line)
    asm_lines.append(f"{program.loop_label}:")
    for instruction in program.body:
        asm_lines.extend(format_instruction(instruction, program))

    formatted_asm = "\n".join(
        f'        "{line}\\n\\t"' for line in asm_lines
    )
    pass_names = program.metadata.get("passes", [])
    pass_comment = "\n".join(f" *   {name}" for name in pass_names)
    init_expression = _INIT_EXPRESSION[program.register_init]

    return f"""\
/* {program.name}.c -- generated micro-benchmark.
 *
 * Target: {program.arch.name} ({program.arch.isa.name})
 * Value init: registers={program.register_init}, immediates={program.immediate_init}
 * Passes applied:
{pass_comment}
 *
 * Build: gcc -O0 -mcpu=power7 -o {program.name} {program.name}.c
 * The endless loop never returns; the measurement harness samples
 * power sensors and performance counters while it runs, then kills
 * the process (paper section 3: 10-second windows, one copy pinned
 * per hardware thread).
 */
#include <stdlib.h>
#include <string.h>

#define REGION_BYTES ({DEFAULT_REGION_BYTES}UL)

static unsigned char region[REGION_BYTES]
    __attribute__((aligned(128), section(".bss")));

static void init_region(void)
{{
    unsigned char pattern = (unsigned char)0b01010101;
    (void)pattern;
    for (unsigned long i = 0; i < REGION_BYTES; i++) {{
        region[i] = {init_expression};
    }}
}}

int main(void)
{{
    init_region();
    /* The generated code addresses the region through r28 (the
     * framework's reserved base register); r27 is the address-forming
     * scratch.  Binding them here keeps the compiler honest. */
    register unsigned char *base __asm__("r28") = region;
    __asm__ volatile(
{formatted_asm}
        :
        : "r"(base)
        : "r27", "memory");
    return 0; /* unreachable: the loop above never exits */
}}
"""
