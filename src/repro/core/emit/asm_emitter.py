"""Bare-assembly emitter (``.s`` files).

The generated file is a self-contained POWER assembly translation unit:
a BSS memory region sized to the benchmark's planned footprint, a
prologue that materializes the base pointer and initializes the
architected registers per the program's value-init policy, the endless
loop, and (for completeness of the artifact) a never-reached epilogue.
"""

from __future__ import annotations

import random

from repro.core.ir import Program
from repro.core.emit.formatting import format_instruction
from repro.core.registers import (
    ADDRESS_SCRATCH_REGISTER,
    MEMORY_BASE_REGISTER,
    format_register,
)
from repro.isa.operand import OperandKind

#: Memory region size when no memory plan bounds it (64 MiB covers
#: every stream the analytical model generates for the POWER7 hierarchy).
DEFAULT_REGION_BYTES = 64 * 1024 * 1024


def _init_value(program: Program, rng: random.Random) -> int:
    if program.register_init == "zero":
        return 0
    if program.register_init == "pattern":
        pattern = program.init_pattern & 0xFFFF
        return pattern | (pattern << 16)
    return rng.getrandbits(32)


def _used_registers(program: Program) -> dict[OperandKind, set[int]]:
    used: dict[OperandKind, set[int]] = {}
    for instruction in program.body:
        for operand in instruction.definition.operands:
            if not operand.is_register or operand.kind is OperandKind.SPR:
                continue
            number = instruction.registers.get(operand.name)
            if number is not None:
                used.setdefault(operand.kind, set()).add(number)
    return used


def _prologue(program: Program, materialize_base: bool = True) -> list[str]:
    rng = random.Random(program.name)
    base = format_register(OperandKind.GPR, MEMORY_BASE_REGISTER)
    scratch = format_register(OperandKind.GPR, ADDRESS_SCRATCH_REGISTER)
    lines = []
    if materialize_base:
        lines += [
            f"# materialize the memory-region base pointer in {base}",
            f"lis {base}, ubench_region@highest",
            f"ori {base}, {base}, ubench_region@higher",
            f"rldicr {base}, {base}, 32, 31",
            f"oris {base}, {base}, ubench_region@ha",
            f"addi {base}, {base}, ubench_region@l",
        ]
    lines.append(
        f"# initialize architected registers ({program.register_init})"
    )
    used = _used_registers(program)
    for number in sorted(used.get(OperandKind.GPR, ())):
        if number in (MEMORY_BASE_REGISTER, ADDRESS_SCRATCH_REGISTER):
            continue
        value = _init_value(program, rng)
        register = format_register(OperandKind.GPR, number)
        lines.append(f"lis {register}, {value >> 16}")
        lines.append(f"ori {register}, {register}, {value & 0xFFFF}")
    for number in sorted(used.get(OperandKind.FPR, ())):
        register = format_register(OperandKind.FPR, number)
        lines.append(f"lfd {register}, {8 * number}({base})")
    for kind in (OperandKind.VSR, OperandKind.VR):
        for number in sorted(used.get(kind, ())):
            register = format_register(kind, number)
            mnemonic = "lxvd2x" if kind is OperandKind.VSR else "lvx"
            lines.append(f"li {scratch}, {16 * number}")
            lines.append(f"{mnemonic} {register}, {base}, {scratch}")
    return lines


def emit_assembly(program: Program) -> str:
    """Render the program as a complete ``.s`` translation unit."""
    pass_names = program.metadata.get("passes", [])
    header = [
        f"# {program.name}.s -- generated micro-benchmark",
        f"# target: {program.arch.name} ({program.arch.isa.name})",
        f"# passes: {', '.join(pass_names)}" if pass_names else "# passes: (none recorded)",
        f"# value init: registers={program.register_init}, "
        f"immediates={program.immediate_init}",
        '\t.machine "power7"',
        "\t.abiversion 2",
        "\t.section .bss",
        "\t.align 7",
        "ubench_region:",
        f"\t.space {DEFAULT_REGION_BYTES}",
        "\t.text",
        "\t.globl ubench_main",
        "\t.type ubench_main, @function",
        "ubench_main:",
    ]
    body_lines: list[str] = []
    for line in _prologue(program):
        prefix = "" if line.startswith("#") else "\t"
        body_lines.append(prefix + line)
    body_lines.append(f"{program.loop_label}:")
    for instruction in program.body:
        for line in format_instruction(instruction, program):
            comment = f"\t# {instruction.comment}" if instruction.comment else ""
            body_lines.append(f"\t{line}{comment}")
    footer = [
        "\t.size ubench_main, . - ubench_main",
        "",
    ]
    return "\n".join(header + body_lines + footer)
