"""Deterministic fault injection for the execution engine.

Long unattended campaigns treat partial failure as the normal case:
workers crash, workers hang, store I/O hiccups, records tear.  Every
recovery path in :mod:`repro.exec` is therefore exercised by *injected*
faults rather than hoped-for ones -- and the injection is deterministic,
so a failing chaos run reproduces from its seed alone.

A :class:`FaultPlan` holds per-site fault specs.  Whether a fault fires
at a given site for a given key is a pure function of ``(seed, site,
key)`` through the shared content hash -- never of wall clock, process
id or call order -- so the same plan makes the same worker crash on the
same chunk in every run, in every process.  A ``times`` cap per site
bounds how many *attempts* of one key the fault hits, which is how
transient faults (fail once, succeed on retry) are modeled.

Sites:

``crash``    the worker process hard-exits (``os._exit``) before
             measuring a chunk -- a segfault/OOM-kill stand-in.
``hang``     the worker sleeps ``hang_s`` seconds before measuring --
             a wedged worker the watchdog must reap.
``slow``     a measured batch sleeps ``slow_s`` seconds first -- for
             pacing kill/resume tests; results are unaffected.
``io``       store reads/appends raise a transient ``OSError``.
``corrupt``  a persisted record's payload is tampered *after* its
             checksum is computed, so reads must detect it.
``torn``     a store append writes half its payload and hard-exits --
             a ``kill -9`` mid-write, leaving a torn shard tail.
``poison``   measuring a matching cell raises
             :class:`FaultInjectedError` everywhere (worker *and*
             in-process), so the cell ends up quarantined.
``reject``   the campaign service answers a plan submission with
             ``429 Too Many Requests`` (+ ``Retry-After``) before any
             work happens -- an admission-control rejection, for
             exercising client retry/backoff deterministically.
``stall``    the campaign service sleeps ``stall_s`` seconds mid-plan
             (after the stream header, before any cell) -- a slow
             replica, for exercising shard circuit breakers and
             follower timeouts; results are unaffected.

Activation: :func:`active` returns the installed plan (tests inject one
with :func:`injected`) or, failing that, parses the ``REPRO_FAULTS``
environment variable -- which worker processes inherit, so one knob
arms the whole execution tree.  The spec is comma-separated tokens::

    REPRO_FAULTS="seed:42,crash:0.05,hang:0.01:2,io:0.1,slow:1.0"

``site:probability[:times]`` arms a site (``times`` defaults to 1 for
crash/hang/io/corrupt/torn/reject/stall -- transient -- and unbounded
for slow/poison); ``seed:N`` seeds the draws;
``hang_s:X``/``slow_s:X``/``stall_s:X`` set the sleep durations.  No variable, no installed plan: zero
overhead -- every hook starts with an ``active() is None`` check.
"""

from __future__ import annotations

import contextlib
import logging
import os
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import FaultInjectedError, MeasurementError
from repro.hashing import content_hash

logger = logging.getLogger("repro.exec.faults")

#: Sites that default to firing once per key (transient faults); the
#: rest (slow, poison) default to firing on every attempt.
_TRANSIENT_SITES = frozenset(
    {"crash", "hang", "io", "corrupt", "torn", "reject", "stall"}
)
SITES = frozenset(
    {
        "crash",
        "hang",
        "io",
        "corrupt",
        "torn",
        "slow",
        "poison",
        "reject",
        "stall",
    }
)

_UNBOUNDED = 1 << 30


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault site: fire with ``probability`` per key, at most
    ``times`` attempts of that key."""

    site: str
    probability: float
    times: int

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise MeasurementError(
                f"unknown fault site {self.site!r}; known: {sorted(SITES)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise MeasurementError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.times < 1:
            raise MeasurementError("fault times cap must be >= 1")


def _unit_draw(seed: int, site: str, key: str) -> float:
    """Deterministic draw in [0, 1) for one (seed, site, key)."""
    return content_hash(f"fault-v1|{seed}|{site}|{key}") / float(1 << 64)


@dataclass
class FaultPlan:
    """A seeded set of fault specs, deterministic per (site, key, attempt).

    The plan is cheap, picklable state; the decision function
    :meth:`fire` is pure given an explicit attempt number, so parent
    and worker processes sharing a spec agree on every decision.  When
    no attempt number is available (store-side sites), the plan counts
    calls per (site, key) locally -- each process sees its *own*
    attempt sequence, which is exactly the transient-fault semantics
    retries need.
    """

    seed: int = 0
    specs: dict[str, FaultSpec] = field(default_factory=dict)
    hang_s: float = 30.0
    slow_s: float = 0.05
    stall_s: float = 0.5
    _attempts: dict[tuple[str, str], int] = field(
        default_factory=dict, repr=False
    )

    def arm(
        self, site: str, probability: float = 1.0, times: int | None = None
    ) -> "FaultPlan":
        """Arm one site; returns the plan for chaining."""
        if times is None:
            times = 1 if site in _TRANSIENT_SITES else _UNBOUNDED
        self.specs[site] = FaultSpec(site, probability, times)
        return self

    def wants(self, site: str) -> bool:
        return site in self.specs

    def fire(self, site: str, key: str, attempt: int | None = None) -> bool:
        """Whether the fault fires at ``site`` for ``key`` on ``attempt``."""
        spec = self.specs.get(site)
        if spec is None:
            return False
        if attempt is None:
            slot = (site, key)
            attempt = self._attempts.get(slot, 0)
            self._attempts[slot] = attempt + 1
        if attempt >= spec.times:
            return False
        fired = _unit_draw(self.seed, site, key) < spec.probability
        if fired:
            logger.warning(
                "injected fault %s on %s (attempt %d)", site, key, attempt
            )
        return fired

    # -- fault actions ---------------------------------------------------------

    def maybe_crash(self, key: str, attempt: int) -> None:
        """Hard-exit the current process (worker-side only)."""
        if self.fire("crash", key, attempt):  # pragma: no cover - kills proc
            logging.shutdown()
            os._exit(113)

    def maybe_hang(self, key: str, attempt: int) -> None:
        if self.fire("hang", key, attempt):
            time.sleep(self.hang_s)

    def maybe_slow(self, key: str) -> None:
        if self.fire("slow", key):
            time.sleep(self.slow_s)

    def maybe_io_error(self, key: str) -> None:
        if self.fire("io", key):
            raise OSError(f"injected transient I/O fault on {key}")

    def maybe_reject(self, key: str) -> bool:
        """Whether the service should 429 this submission (service-side)."""
        return self.fire("reject", key)

    def maybe_stall(self, key: str) -> None:
        if self.fire("stall", key):
            time.sleep(self.stall_s)

    def maybe_poison(self, key: str) -> None:
        if self.fire("poison", key):
            raise FaultInjectedError(f"injected poison fault on cell {key}")

    # -- spec round trip -------------------------------------------------------

    def render(self) -> str:
        """The ``REPRO_FAULTS`` spec string reproducing this plan."""
        tokens = [f"seed:{self.seed}"]
        for spec in self.specs.values():
            default_times = 1 if spec.site in _TRANSIENT_SITES else _UNBOUNDED
            token = f"{spec.site}:{spec.probability:g}"
            if spec.times != default_times:
                token += f":{spec.times}"
            tokens.append(token)
        if self.specs.get("hang") and self.hang_s != 30.0:
            tokens.append(f"hang_s:{self.hang_s:g}")
        if self.specs.get("slow") and self.slow_s != 0.05:
            tokens.append(f"slow_s:{self.slow_s:g}")
        if self.specs.get("stall") and self.stall_s != 0.5:
            tokens.append(f"stall_s:{self.stall_s:g}")
        return ",".join(tokens)


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    plan = FaultPlan()
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        parts = token.split(":")
        name = parts[0].strip()
        try:
            if name == "seed":
                plan.seed = int(parts[1])
            elif name == "hang_s":
                plan.hang_s = float(parts[1])
            elif name == "slow_s":
                plan.slow_s = float(parts[1])
            elif name == "stall_s":
                plan.stall_s = float(parts[1])
            elif name in SITES:
                probability = float(parts[1]) if len(parts) > 1 else 1.0
                times = int(parts[2]) if len(parts) > 2 else None
                plan.arm(name, probability, times)
            else:
                raise MeasurementError(
                    f"unknown fault token {name!r} in REPRO_FAULTS"
                )
        except (IndexError, ValueError) as exc:
            raise MeasurementError(
                f"malformed fault token {token!r} in REPRO_FAULTS: {exc}"
            ) from None
    return plan


# -- activation ----------------------------------------------------------------

_INSTALLED: FaultPlan | None = None
#: (env value, parsed plan) memo so the per-call hook cost is one dict
#: lookup and a string compare.
_ENV_CACHE: tuple[str, FaultPlan] | None = None


def install(plan: FaultPlan | None) -> None:
    """Install (or with ``None`` clear) the process-local fault plan.

    An installed plan wins over ``REPRO_FAULTS`` but does *not*
    propagate to worker processes -- use the environment variable (or
    the :func:`injected` fixture-style context manager, which sets
    both) when worker-side sites must fire.
    """
    global _INSTALLED
    _INSTALLED = plan


def active() -> FaultPlan | None:
    """The fault plan in effect, or ``None`` (the overwhelmingly common
    case -- a single dict lookup and string compare)."""
    global _ENV_CACHE
    if _INSTALLED is not None:
        return _INSTALLED
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return None
    if _ENV_CACHE is None or _ENV_CACHE[0] != spec:
        _ENV_CACHE = (spec, parse_faults(spec))
    return _ENV_CACHE[1]


@contextlib.contextmanager
def injected(plan: FaultPlan):
    """Context manager arming ``plan`` in-process *and* in the
    environment, so freshly spawned workers inherit it.

    The test-suite idiom::

        with faults.injected(FaultPlan(seed=7).arm("crash")):
            report = executor.execute(plan)
    """
    previous_env = os.environ.get("REPRO_FAULTS")
    install(plan)
    os.environ["REPRO_FAULTS"] = plan.render()
    try:
        yield plan
    finally:
        install(None)
        if previous_env is None:
            os.environ.pop("REPRO_FAULTS", None)
        else:
            os.environ["REPRO_FAULTS"] = previous_env


# -- site keys -----------------------------------------------------------------


def cell_key(cell) -> str:
    """Stable fault key of one plan cell (content identity, not order)."""
    return f"cell:{content_hash(str(cell.identity())):016x}"


def chunk_key(cells: Sequence) -> str:
    """Stable fault key of one executor chunk (its cells' identities)."""
    return "chunk:" + format(
        content_hash("|".join(str(cell.identity()) for cell in cells)), "016x"
    )
