"""Multi-host shard scheduler: one plan across N serve replicas.

:class:`ShardedExecutor` scales a campaign across machines the way
:class:`~repro.exec.executors.ParallelExecutor` scales it across
cores: the plan's unique cells are partitioned by **content-addressed
cell-key prefix** across N ``python -m repro serve`` endpoints (plus,
optionally, this process's own measurement plane as one more shard),
each shard executes as an ordinary sub-plan on its backend, and the
results merge back -- through the local content-addressed
:class:`~repro.exec.store.ResultStore` when one is attached -- into
plan order.

Why this is sound, and bit-identical to one-shot serial execution:

* **Purity.**  Every measurement is a deterministic pure function of
  the architecture definition, the machine seed and the cell content.
  *Where* a cell runs can never change a byte of its result, so any
  partition of the plan reassembles into exactly the serial bytes.
* **Content-addressed sharding.**  The shard of a cell is a prefix of
  the same key the store files it under (``int(key[:8], 16) % N``) --
  deterministic across runs and hosts, uniformly spread (the key is a
  content hash), and independent of plan order.  Re-running a
  campaign routes every cell to the same replica, so replica-side
  store warmth accumulates per shard.
* **Digest probing.**  Before any cell is routed, every endpoint is
  probed (``POST /probe``) with the content digests the plan depends
  on -- the base architecture's and every cluster core class's.  A
  replica that cannot rebuild them exactly (version skew, customized
  definitions, unregistered classes) is excluded up front with a log
  line, instead of silently serving divergent bytes.
* **Failover.**  A shard whose endpoint dies mid-run (connection
  refused, torn stream, HTTP failure) falls back to the local
  measurement plane: its cells re-measure in-process, bit-identical
  by purity.  Losing a replica costs time, never correctness -- and
  with a store attached, whatever the dead replica already persisted
  locally is not re-measured on the next run.
* **Self-healing.**  Each replica sits behind a circuit breaker:
  consecutive failures (probe or mid-run) open it, an open breaker
  takes no cells, and after a cooldown the next plan half-opens it --
  one fresh health + digest probe re-admits a recovered replica
  mid-campaign (a campaign is many plans through one executor).  The
  transient layer underneath -- :class:`~repro.exec.client.RemoteExecutor`
  resubmitting on transport deaths and 429/503 backpressure with
  capped deterministic backoff -- means the breaker only ever counts
  *exhausted* failures, not blips.  Per-replica fault counters ride
  the :class:`~repro.exec.report.ExecutionReport` and
  :meth:`ShardedExecutor.replica_stats`.

The scheduler subclasses the executor base, so stores, journals, warm
serving, quarantine reports and the ``execute``/``run`` surface all
behave exactly like the local executors; only ``_measure_cells`` --
"measure these cold cells" -- is sharded.  Remote shards execute on
daemon threads (each blocks on its HTTP stream); the local shard, when
enabled, runs on the calling thread and doubles as the failover
target.
"""

from __future__ import annotations

import logging
import threading
import time
from collections.abc import Sequence
from urllib.parse import urlsplit

from repro.errors import ServiceError
from repro.exec.client import RemoteExecutor, ServiceClient
from repro.exec.executors import _ExecutorBase
from repro.exec.plan import ExperimentPlan, PlanCell
from repro.exec.report import ReportBuilder
from repro.exec.store import ResultStore
from repro.measure.measurement import Measurement
from repro.sim.machine import Machine
from repro.sim.topology import ChipTopology

logger = logging.getLogger("repro.exec.shards")

#: Hex digits of the cell key folded into the shard index.  Eight
#: digits (32 bits of content hash) spread uniformly at any realistic
#: replica count.
_SHARD_PREFIX = 8

#: Consecutive exhausted failures (probe or mid-run, each already past
#: the transient-retry layer) that open a replica's circuit breaker.
_BREAKER_THRESHOLD = 3

#: Seconds an open breaker sits out before the next plan half-opens it
#: with a fresh probe.
_BREAKER_COOLDOWN_S = 5.0


def parse_shard_endpoints(spec: str) -> list[str]:
    """Split a ``--shards host1:port,host2:port`` spec into endpoints.

    Entries are normalized (surrounding whitespace and trailing
    slashes stripped) and deduplicated on their resolved (host, port)
    -- ``http://a:1/`` and ``a:1`` are the same replica, and routing
    the same shard twice would silently halve the fabric's width.
    """
    endpoints: list[str] = []
    seen: set[tuple] = set()
    for entry in spec.split(","):
        entry = entry.strip().rstrip("/")
        if not entry:
            continue
        parts = urlsplit(entry if "//" in entry else f"http://{entry}")
        identity = (parts.hostname or "127.0.0.1", parts.port or 80)
        if identity in seen:
            logger.warning(
                "duplicate shard endpoint %s (same host:port already "
                "listed); ignoring it", entry,
            )
            continue
        seen.add(identity)
        endpoints.append(entry)
    return endpoints


class _CircuitBreaker:
    """Consecutive-failure breaker guarding one replica.

    ``closed`` routes normally; ``threshold`` consecutive failures trip
    it ``open`` (the replica takes no cells); once ``cooldown`` seconds
    pass, the next routing decision half-opens it -- exactly one fresh
    probe is allowed, whose outcome either closes the breaker (the
    replica rejoins mid-campaign) or re-opens it for another cooldown.
    All counters are lifetime totals for observability.
    """

    __slots__ = (
        "threshold",
        "cooldown",
        "state",
        "consecutive",
        "failures",
        "successes",
        "opened",
        "opened_at",
    )

    def __init__(
        self,
        threshold: int = _BREAKER_THRESHOLD,
        cooldown: float = _BREAKER_COOLDOWN_S,
    ) -> None:
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive = 0
        self.failures = 0
        self.successes = 0
        self.opened = 0
        self.opened_at: float | None = None

    def admits(self) -> bool:
        """Whether the replica may be probed/routed right now.

        An open breaker past its cooldown transitions to half-open and
        admits one probe; before the cooldown it admits nothing.
        """
        if self.state == "open":
            if (
                self.opened_at is not None
                and time.monotonic() - self.opened_at >= self.cooldown
            ):
                self.state = "half-open"
                return True
            return False
        return True

    def record_success(self) -> None:
        rejoined = self.state != "closed"
        self.state = "closed"
        self.consecutive = 0
        self.successes += 1
        self.opened_at = None
        if rejoined:
            logger.info("circuit breaker closed: replica rejoins routing")

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive += 1
        if self.state == "half-open" or self.consecutive >= self.threshold:
            if self.state != "open":
                self.opened += 1
            self.state = "open"
            self.opened_at = time.monotonic()

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive,
            "failures": self.failures,
            "successes": self.successes,
            "opened": self.opened,
        }


class _RemoteShard:
    """One serve replica: its client, executor adapter and breaker."""

    __slots__ = ("endpoint", "client", "executor", "breaker")

    def __init__(
        self,
        endpoint: str,
        executor: RemoteExecutor,
        breaker: _CircuitBreaker,
    ) -> None:
        self.endpoint = endpoint
        self.client = executor.client
        self.executor = executor
        #: Health state machine: probe/mid-run failures (each already
        #: past the transient-retry layer) open it, a cooldown-gated
        #: half-open probe re-admits a recovered replica.
        self.breaker = breaker


class ShardedExecutor(_ExecutorBase):
    """Plan execution sharded by cell-key prefix across serve replicas.

    ``endpoints`` are ``repro serve`` base URLs; ``local=True`` (the
    default) adds this process's machine as one more shard and as the
    failover target for dead replicas.  With ``local=False`` and at
    least one live endpoint, nothing measures in this process -- but a
    plan whose every endpoint is dead or digest-unsound still
    completes locally (loudly) rather than failing: the scheduler
    prioritizes campaign completion, and purity makes the fallback
    invisible in the bytes.

    The executor surface is the standard one (``execute``/``run``/
    ``last_report``/``close``), with a store attaching exactly like
    the local executors: warm cells serve from disk before any shard
    is contacted, and every remotely measured cell is persisted into
    the local store, which is how N replicas' outputs merge into one
    content-addressed corpus.
    """

    def __init__(
        self,
        machine: Machine,
        endpoints: Sequence[str] | str,
        store: ResultStore | None = None,
        local: bool = True,
        retries: int | None = None,
        timeout: float | None = None,
        request_timeout: float | None = None,
        breaker_threshold: int = _BREAKER_THRESHOLD,
        breaker_cooldown: float = _BREAKER_COOLDOWN_S,
        wire: int | None = None,
    ) -> None:
        super().__init__(machine, store, retries=retries, timeout=timeout)
        if isinstance(endpoints, str):
            endpoints = parse_shard_endpoints(endpoints)
        self.local = bool(local)
        arch_name = machine.arch.name
        # Each replica negotiates its plan-body wire version
        # independently (the digest probes every routing decision
        # already makes double as the handshake), so a mixed fleet of
        # v1 and v2 servers serves one campaign bit-identically.
        self._shards = [
            _RemoteShard(
                endpoint,
                RemoteExecutor(
                    ServiceClient(endpoint, timeout=request_timeout, wire=wire),
                    arch=arch_name,
                    seed=machine.seed,
                    vector=machine.vector_enabled,
                ),
                _CircuitBreaker(breaker_threshold, breaker_cooldown),
            )
            for endpoint in endpoints
        ]
        if not self._shards and not self.local:
            raise ValueError(
                "ShardedExecutor needs at least one endpoint or local=True"
            )
        #: Endpoint -> positive digest verdict, memoized per (plan
        #: class-set).  Only *answers* memoize; transport failures feed
        #: the breaker and are always re-probed, which is what lets a
        #: restarted replica rejoin.
        self._probe_memo: dict[tuple, bool] = {}

    # -- probing ---------------------------------------------------------------

    def _plan_digests(self, cells: Sequence[PlanCell]) -> dict:
        """Cluster-class content digests this cell batch depends on."""
        digests: dict = {}
        for cell in cells:
            if not isinstance(cell.config, ChipTopology):
                continue
            for cluster in cell.config.clusters:
                core_class = cluster.core_class
                if self.machine._class_key(core_class) is None:
                    continue  # the base class is probed separately
                if core_class not in digests:
                    digests[core_class] = self.machine.cluster_arch(
                        core_class
                    ).content_digest()
        return digests

    def _probe_shard(self, shard: _RemoteShard, classes: dict) -> bool:
        """Whether one endpoint is reachable and rebuilds every
        definition exactly; feeds the replica's breaker.

        Digest verdicts memoize (content answers are stable), so a
        closed-breaker replica probes at most once per class-set; a
        half-open replica always re-probes over the wire -- that fresh
        round trip *is* the health re-check that rejoins a recovered
        replica mid-campaign.
        """
        memo_key = (shard.endpoint, tuple(sorted(classes)))
        recovering = shard.breaker.state != "closed"
        if not recovering:
            found = self._probe_memo.get(memo_key)
            if found is not None:
                return found
        try:
            verdict = shard.client.probe(
                self.machine.arch.name, self._arch_digest, classes
            )
            sound = bool(verdict.get("ok"))
            if not sound:
                logger.warning(
                    "shard %s cannot rebuild this plan's definitions "
                    "(%s); excluding it from routing",
                    shard.endpoint,
                    verdict,
                )
        except ServiceError as exc:
            logger.warning(
                "shard %s is unreachable (%s); excluding it from routing",
                shard.endpoint,
                exc,
            )
            shard.breaker.record_failure()
            return False
        # The replica answered: transport-wise it is healthy, whatever
        # the digest verdict (a digest-unsound replica is excluded by
        # the memo, not the breaker -- it is up, just wrong for this
        # plan).
        shard.breaker.record_success()
        self._probe_memo[memo_key] = sound
        return sound

    # -- execution -------------------------------------------------------------

    def _measure_cells(
        self,
        cells: Sequence[PlanCell],
        persist,
        builder: ReportBuilder,
        plan: ExperimentPlan | None = None,
    ) -> list[Measurement | None]:
        self._refresh_arch_digest()
        classes = self._plan_digests(cells)
        live = [
            shard
            for shard in self._shards
            if shard.breaker.admits() and self._probe_shard(shard, classes)
        ]
        lanes = len(live) + (1 if self.local else 0)
        if lanes == 0 or (lanes == 1 and not live):
            if self._shards:
                logger.warning(
                    "no usable shard endpoint; measuring all %d cells "
                    "locally",
                    len(cells),
                )
            return self._measure_inprocess(cells, persist, builder, plan=plan)

        # Content-addressed routing: the shard index is a prefix of
        # the same key the store files the cell under.  Remote shards
        # take indices [0, len(live)); the local lane, when enabled,
        # is the last index.
        keys = [self._key(cell) for cell in cells]
        routed: list[list[int]] = [[] for _ in range(lanes)]
        for index, key in enumerate(keys):
            routed[int(key[:_SHARD_PREFIX], 16) % lanes].append(index)
        logger.info(
            "sharding %d cells across %d remote replica(s)%s: %s",
            len(cells),
            len(live),
            " + local" if self.local else "",
            [len(lane) for lane in routed],
        )

        results: list[Measurement | None] = [None] * len(cells)
        failed_lanes: list[list[int]] = []
        lock = threading.Lock()

        def run_remote(shard: _RemoteShard, indices: list[int]) -> None:
            subplan = ExperimentPlan([cells[i] for i in indices])
            retries_before = shard.executor.transport_retries
            try:
                report = shard.executor.execute(subplan)
            except Exception as exc:
                # ServiceError for transport/HTTP deaths (already past
                # RemoteExecutor's transient retries); anything else a
                # sick replica managed to produce routes through the
                # same failover -- a shard must never take the campaign
                # down with it.
                with lock:
                    shard.breaker.record_failure()
                    failed_lanes.append(indices)
                    builder.count(f"shard[{shard.endpoint}].failures")
                logger.warning(
                    "shard %s died mid-run (%s); its %d cells fail over "
                    "to the local plane (breaker: %s)",
                    shard.endpoint,
                    exc,
                    len(indices),
                    shard.breaker.state,
                )
                return
            with lock:
                shard.breaker.record_success()
                for position, index in enumerate(indices):
                    results[index] = report.measurements[position]
                # A remotely quarantined cell failed *measurement*, not
                # transport (the replica already retried and degraded);
                # carry the failure through instead of re-failing it
                # locally.
                builder.failures.extend(report.failures)
                for name, value in report.fault_counters.items():
                    builder.count(name, value)
                retried = shard.executor.transport_retries - retries_before
                if retried:
                    builder.count(
                        f"shard[{shard.endpoint}].retries", retried
                    )

        threads = [
            threading.Thread(
                target=run_remote,
                args=(shard, indices),
                name=f"shard-{shard.endpoint}",
                daemon=True,
            )
            for shard, indices in zip(live, routed)
            if indices
        ]
        for thread in threads:
            thread.start()

        if self.local and routed[-1]:
            local_indices = routed[-1]
            local_cells = [cells[i] for i in local_indices]
            measured = self._measure_inprocess(local_cells, None, builder)
            for position, index in enumerate(local_indices):
                results[index] = measured[position]

        for thread in threads:
            thread.join()

        # Failover: cells of dead shards re-measure in-process --
        # bit-identical by purity, so losing a replica costs time,
        # never correctness.
        for indices in failed_lanes:
            builder.count("shard_failovers")
            builder.count("shard_failover_cells", len(indices))
            rerouted = [cells[i] for i in indices]
            measured = self._measure_inprocess(rerouted, None, builder)
            for position, index in enumerate(indices):
                results[index] = measured[position]

        # Merge: persistence (store append + journal + progress
        # streaming) happens here on the calling thread, in routing
        # order, so the content-addressed store absorbs every shard's
        # output through the ordinary single-writer path.
        if persist is not None:
            landed = [
                index
                for index in range(len(cells))
                if results[index] is not None
            ]
            if landed:
                persist(
                    [cells[index] for index in landed],
                    [results[index] for index in landed],
                )
        return results

    # -- observability ---------------------------------------------------------

    def replica_stats(self) -> list[dict]:
        """Per-replica health: breaker state + lifetime fault counters.

        The campaign CLI logs this after a sharded run; the same
        numbers ride the :class:`~repro.exec.report.ExecutionReport`
        fault counters as ``shard[<endpoint>].*`` keys.
        """
        return [
            {
                "endpoint": shard.endpoint,
                "transport_retries": shard.executor.transport_retries,
                "wire": shard.executor.client.wire_version,
                **shard.breaker.to_dict(),
            }
            for shard in self._shards
        ]

    def close(self) -> None:
        """Release backend adapters (remote shards hold no sockets open)."""
        for shard in self._shards:
            shard.executor.close()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
