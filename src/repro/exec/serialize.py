"""JSON wire forms for experiment plans: cells, workloads, configs.

The campaign service (:mod:`repro.exec.service`) accepts
:class:`~repro.exec.plan.ExperimentPlan`s over HTTP, so every plan
ingredient needs a JSON round trip that preserves *content identity*
exactly: a cell rebuilt from its wire form must produce the same
workload fingerprint, the same store key, the same noise salt and
therefore the same measurement bytes as the original.  Kernels and
placements already round-trip through their own ``to_dict``/``from_dict``
(digest-exact by design); this module adds the workload/config
discriminators and the profiled-workload form on top.

Profiled workloads (the SPEC CPU2006 proxies) serialize their full
:class:`~repro.workloads.profiles.ActivityProfile`.  Their plan
fingerprint hashes ``repr(profile)``, which embeds dict iteration
order -- so the wire form preserves insertion order (JSON objects keep
key order through ``json`` both ways) and restores the integer keys of
``smt_scaling`` that JSON stringifies.  A round-tripped profile is
``repr``-identical to the original, so fingerprints, dedup slots and
store keys all agree between client and server.
"""

from __future__ import annotations

import json
import threading
from dataclasses import fields

from repro.caching import LRUCache
from repro.errors import MeasurementError
from repro.exec.plan import ExperimentPlan, PlanCell, workload_fingerprint
from repro.hashing import content_hex
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.placement import Placement
from repro.sim.topology import ChipTopology
from repro.workloads.profiles import ActivityProfile, ProfiledWorkload


# -- activity profiles ---------------------------------------------------------


def profile_to_dict(profile: ActivityProfile) -> dict:
    """JSON-able form of one activity profile, field order preserved."""
    data = {}
    for spec in fields(profile):
        value = getattr(profile, spec.name)
        if spec.name == "smt_scaling":
            # JSON object keys are strings; stringify here, restore in
            # :func:`profile_from_dict`.  Insertion order is preserved.
            value = {str(way): scale for way, scale in value.items()}
        elif isinstance(value, dict):
            value = dict(value)
        data[spec.name] = value
    return data


def profile_from_dict(data: dict) -> ActivityProfile:
    """Rebuild a profile serialized by :func:`profile_to_dict`."""
    kwargs = dict(data)
    kwargs["smt_scaling"] = {
        int(way): scale for way, scale in data["smt_scaling"].items()
    }
    return ActivityProfile(**kwargs)


# -- workloads -----------------------------------------------------------------


def workload_to_dict(workload: object) -> dict:
    """Wire form of one plan workload, tagged by kind.

    Kernels and kernel placements carry their full content; profiled
    workloads carry their activity profile.  Anything else (an opaque
    protocol workload) cannot cross a process boundary faithfully and
    raises :class:`~repro.errors.MeasurementError`.
    """
    if isinstance(workload, Kernel):
        return {"kind": "kernel", "kernel": workload.to_dict()}
    if isinstance(workload, Placement):
        return {"kind": "placement", "placement": workload.to_dict()}
    if isinstance(workload, ProfiledWorkload):
        return {"kind": "profile", "profile": profile_to_dict(workload.profile)}
    raise MeasurementError(
        f"workload {getattr(workload, 'name', workload)!r} of type "
        f"{type(workload).__name__} has no JSON wire form; only kernels, "
        "kernel placements and profiled workloads can be submitted to a "
        "campaign service"
    )


def workload_from_dict(data: dict) -> object:
    """Rebuild a workload serialized by :func:`workload_to_dict`."""
    kind = data.get("kind")
    if kind == "kernel":
        return Kernel.from_dict(data["kernel"])
    if kind == "placement":
        return Placement.from_dict(data["placement"])
    if kind == "profile":
        return ProfiledWorkload(profile_from_dict(data["profile"]))
    raise MeasurementError(f"unknown workload kind {kind!r} in plan request")


# -- configurations ------------------------------------------------------------


def config_to_dict(config: MachineConfig | ChipTopology) -> dict:
    """Wire form of a configuration; topologies marked by ``clusters``."""
    return config.to_dict()


def config_from_dict(data: dict) -> MachineConfig | ChipTopology:
    """Rebuild a configuration, dispatching on shape like
    :meth:`~repro.measure.measurement.Measurement.from_dict` does."""
    if "clusters" in data:
        return ChipTopology.from_dict(data)
    return MachineConfig.from_dict(data)


# -- cells and plans -----------------------------------------------------------


def cell_to_dict(cell: PlanCell) -> dict:
    """Wire form of one plan cell."""
    return {
        "workload": workload_to_dict(cell.workload),
        "config": config_to_dict(cell.config),
        "duration": cell.duration,
    }


def cell_from_dict(data: dict) -> PlanCell:
    """Rebuild a cell serialized by :func:`cell_to_dict`."""
    try:
        return PlanCell(
            workload=workload_from_dict(data["workload"]),
            config=config_from_dict(data["config"]),
            duration=float(data["duration"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MeasurementError(f"malformed plan cell: {exc}") from None


def plan_to_dict(plan: ExperimentPlan) -> dict:
    """Wire form of a plan: its *unique* cells, construction order.

    Duplicate requested cells are a client-side concern (the client
    keeps its plan and fans unique results back out with
    :meth:`~repro.exec.plan.ExperimentPlan.expand`), so only the
    deduplicated cells travel.
    """
    return {"cells": [cell_to_dict(cell) for cell in plan.cells]}


# -- wire format v2: digest-interned pools -------------------------------------
#
# A v1 plan body repeats the full workload/config wire form in every
# cell, so a 24-config sweep over one stressmark ships the kernel 24
# times and the server rebuilds it 24 times.  Wire v2 ships each
# distinct ingredient once in a digest-keyed pool and cells reference
# pool entries by digest:
#
#     {"wire": "plan-v2",
#      "pool": {"workloads": [[digest, entry], ...],
#               "configs":   [[digest, entry], ...]},
#      "cells": [{"workload": digest, "config": digest, "duration": s}, ...]}
#
# The digest is the content hash of the entry's *compact, order
# preserving* JSON encoding (``wire_digest``).  Order preservation
# matters: profiled-workload fingerprints hash ``repr(profile)``, which
# embeds dict insertion order, so two profiles that differ only in key
# order are different content and must not alias to one pool entry --
# ``sort_keys`` would merge them.  Pools are [digest, entry] pairs, not
# JSON objects, because object parsing silently collapses duplicate
# keys and a duplicated digest must be *rejected*, not absorbed.
#
# A server-side :class:`WireInternCache` keys rebuilt objects on these
# digests across requests: the first intern of a claimed digest is
# verified (the entry is re-hashed) and the rebuilt object's own content
# digest/fingerprint is pinned, so repeat campaigns rebuild zero kernels
# and skip every fingerprint recompute.  Rebuilt objects are frozen
# (kernels, placements, configs) or never mutated (profiled workloads),
# so sharing them across handler threads is safe.

PLAN_WIRE_V2 = "plan-v2"
WIRE_V1 = 1
WIRE_V2 = 2
WIRE_VERSIONS = (WIRE_V1, WIRE_V2)
DEFAULT_INTERN_CAPACITY = 4096


def wire_digest(entry: dict) -> str:
    """Content digest of one pool entry's canonical (compact) encoding."""
    return content_hex(
        "wire-v2|" + json.dumps(entry, separators=(",", ":"))
    )


def _pin_workload(workload: object) -> None:
    """Precompute the rebuilt workload's content identity once.

    Kernel digests and placement/profile fingerprints are pure content;
    computing them at intern time means every later request served from
    the cache skips the recursive fingerprint walk entirely.
    """
    workload_fingerprint(workload)


class WireInternCache:
    """Bounded cross-request intern cache: wire digest -> rebuilt object.

    Thread-safe.  ``verify=True`` (untrusted, client-claimed digests)
    re-hashes the entry before first intern and rejects mismatches;
    ``verify=False`` (digests the server computed itself from a v1 body)
    trusts the key.  Hits return the already-built object -- same
    instance, same pinned digest -- so overlapping campaigns share one
    kernel graph.
    """

    def __init__(self, capacity: int = DEFAULT_INTERN_CAPACITY) -> None:
        self._lock = threading.Lock()
        self._workloads: LRUCache[str, object] = LRUCache(
            capacity, "wire.workloads"
        )
        self._configs: LRUCache[str, object] = LRUCache(capacity, "wire.configs")
        self.verified = 0
        self.rejected = 0

    def _intern(self, cache, digest, entry, builder, pin, verify):
        with self._lock:
            found = cache.get(digest)
            if found is not None:
                return found
            if entry is None:
                raise MeasurementError(
                    f"references pool digest {digest!r} which the pool does "
                    "not define"
                )
            if verify:
                actual = wire_digest(entry)
                if actual != digest:
                    self.rejected += 1
                    raise MeasurementError(
                        f"pool entry claims digest {digest!r} but its content "
                        f"hashes to {actual!r}"
                    )
                self.verified += 1
            built = builder(entry)
            pin(built)
            cache.put(digest, built)
            return built

    def workload(
        self, digest: str, entry: dict | None = None, *, verify: bool = True
    ) -> object:
        """The interned workload for ``digest``, building from ``entry``."""
        return self._intern(
            self._workloads, digest, entry, workload_from_dict,
            _pin_workload, verify,
        )

    def config(
        self, digest: str, entry: dict | None = None, *, verify: bool = True
    ) -> object:
        """The interned configuration for ``digest``."""
        return self._intern(
            self._configs, digest, entry, config_from_dict,
            lambda built: None, verify,
        )

    def clear(self) -> None:
        """Drop every interned object (counters are preserved)."""
        with self._lock:
            self._workloads.clear()
            self._configs.clear()

    def stats(self) -> dict:
        """Hit/miss/eviction and verification counters for diagnostics."""
        with self._lock:
            return {
                "workloads": self._workloads.stats(),
                "configs": self._configs.stats(),
                "verified": self.verified,
                "rejected": self.rejected,
            }


def plan_to_dict_v2(plan: ExperimentPlan) -> dict:
    """Dictionary-encoded wire form: pooled ingredients, digest refs.

    Each distinct workload/config serializes once; repeated objects
    (the common case -- ``ExperimentPlan.cross`` shares instances) are
    recognized by identity before falling back to content digest, so a
    stressmark x 24-config sweep hashes the kernel once, not 24 times.
    """
    workload_pool: list[list] = []
    config_pool: list[list] = []
    workload_by_id: dict[int, str] = {}
    config_by_id: dict[int, str] = {}
    workload_digests: set[str] = set()
    config_digests: set[str] = set()
    cells = []
    for cell in plan.cells:
        wdigest = workload_by_id.get(id(cell.workload))
        if wdigest is None:
            entry = workload_to_dict(cell.workload)
            wdigest = wire_digest(entry)
            if wdigest not in workload_digests:
                workload_digests.add(wdigest)
                workload_pool.append([wdigest, entry])
            workload_by_id[id(cell.workload)] = wdigest
        cdigest = config_by_id.get(id(cell.config))
        if cdigest is None:
            entry = config_to_dict(cell.config)
            cdigest = wire_digest(entry)
            if cdigest not in config_digests:
                config_digests.add(cdigest)
                config_pool.append([cdigest, entry])
            config_by_id[id(cell.config)] = cdigest
        cells.append(
            {"workload": wdigest, "config": cdigest, "duration": cell.duration}
        )
    return {
        "wire": PLAN_WIRE_V2,
        "pool": {"workloads": workload_pool, "configs": config_pool},
        "cells": cells,
    }


def _pool_entries(raw: object, label: str, cells: list, field: str) -> dict:
    """Validate one pool section into a digest -> entry mapping.

    Duplicate digests are rejected (they signal a malformed or
    tampered encoder) and the error names the first cell that
    references the offending digest so the client can locate it.
    """
    if raw is None:
        return {}
    if not isinstance(raw, list):
        raise MeasurementError(
            f"plan-v2 pool {label!r} must be a list of [digest, entry] pairs"
        )
    entries: dict[str, dict] = {}
    for item in raw:
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not isinstance(item[0], str)
            or not isinstance(item[1], dict)
        ):
            raise MeasurementError(
                f"plan-v2 pool {label!r} entry {item!r} is not a "
                "[digest, entry] pair"
            )
        digest, entry = item
        if digest in entries:
            index = next(
                (
                    i
                    for i, cell in enumerate(cells)
                    if isinstance(cell, dict) and cell.get(field) == digest
                ),
                None,
            )
            where = (
                f" (first referenced by cell {index})" if index is not None else ""
            )
            raise MeasurementError(
                f"plan-v2 pool {label!r} defines digest {digest!r} "
                f"twice{where}"
            )
        entries[digest] = entry
    return entries


def _plan_from_v2(data: dict, intern: WireInternCache | None) -> ExperimentPlan:
    """Rebuild a v2 plan, interning pool entries through ``intern``."""
    pool = data.get("pool")
    if not isinstance(pool, dict):
        raise MeasurementError("plan-v2 request carries no 'pool' object")
    cell_forms = data.get("cells")
    if not isinstance(cell_forms, list):
        raise MeasurementError("plan request carries no 'cells' list")
    workloads = _pool_entries(
        pool.get("workloads"), "workloads", cell_forms, "workload"
    )
    configs = _pool_entries(pool.get("configs"), "configs", cell_forms, "config")
    if intern is None:
        # One-shot private intern: a standalone decode still deduplicates
        # rebuild work within the request.
        intern = WireInternCache(
            capacity=max(1, len(workloads) + len(configs))
        )
    cells = []
    for index, form in enumerate(cell_forms):
        try:
            workload = intern.workload(
                form["workload"], workloads.get(form["workload"])
            )
            config = intern.config(form["config"], configs.get(form["config"]))
            duration = float(form["duration"])
        except MeasurementError as exc:
            raise MeasurementError(f"plan-v2 cell {index}: {exc}") from None
        except (KeyError, TypeError, ValueError) as exc:
            raise MeasurementError(
                f"plan-v2 cell {index}: malformed cell reference ({exc})"
            ) from None
        cells.append(
            PlanCell(workload=workload, config=config, duration=duration)
        )
    return ExperimentPlan(cells)


def _cell_from_dict_interned(data: dict, intern: WireInternCache) -> PlanCell:
    """v1 cell decode routed through the intern cache.

    The server computes the digests itself from the inline entries, so
    they are trusted (``verify=False``); a warm cache then hands v1
    clients the same zero-rebuild path v2 clients get.
    """
    try:
        workload_entry = data["workload"]
        config_entry = data["config"]
        workload = intern.workload(
            wire_digest(workload_entry), workload_entry, verify=False
        )
        config = intern.config(
            wire_digest(config_entry), config_entry, verify=False
        )
        return PlanCell(
            workload=workload,
            config=config,
            duration=float(data["duration"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MeasurementError(f"malformed plan cell: {exc}") from None


def plan_from_dict(
    data: dict, intern: WireInternCache | None = None
) -> ExperimentPlan:
    """Rebuild a plan serialized by :func:`plan_to_dict` or
    :func:`plan_to_dict_v2`, dispatching on the ``wire`` marker.

    ``intern`` (optional) is a cross-request :class:`WireInternCache`;
    with one attached, both wire versions rebuild each distinct
    ingredient at most once per cache lifetime.
    """
    if data.get("wire") == PLAN_WIRE_V2:
        return _plan_from_v2(data, intern)
    cells = data.get("cells")
    if not isinstance(cells, list):
        raise MeasurementError("plan request carries no 'cells' list")
    if intern is None:
        return ExperimentPlan(cell_from_dict(cell) for cell in cells)
    return ExperimentPlan(
        _cell_from_dict_interned(cell, intern) for cell in cells
    )
