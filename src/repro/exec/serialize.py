"""JSON wire forms for experiment plans: cells, workloads, configs.

The campaign service (:mod:`repro.exec.service`) accepts
:class:`~repro.exec.plan.ExperimentPlan`s over HTTP, so every plan
ingredient needs a JSON round trip that preserves *content identity*
exactly: a cell rebuilt from its wire form must produce the same
workload fingerprint, the same store key, the same noise salt and
therefore the same measurement bytes as the original.  Kernels and
placements already round-trip through their own ``to_dict``/``from_dict``
(digest-exact by design); this module adds the workload/config
discriminators and the profiled-workload form on top.

Profiled workloads (the SPEC CPU2006 proxies) serialize their full
:class:`~repro.workloads.profiles.ActivityProfile`.  Their plan
fingerprint hashes ``repr(profile)``, which embeds dict iteration
order -- so the wire form preserves insertion order (JSON objects keep
key order through ``json`` both ways) and restores the integer keys of
``smt_scaling`` that JSON stringifies.  A round-tripped profile is
``repr``-identical to the original, so fingerprints, dedup slots and
store keys all agree between client and server.
"""

from __future__ import annotations

from dataclasses import fields

from repro.errors import MeasurementError
from repro.exec.plan import ExperimentPlan, PlanCell
from repro.sim.config import MachineConfig
from repro.sim.kernel import Kernel
from repro.sim.placement import Placement
from repro.sim.topology import ChipTopology
from repro.workloads.profiles import ActivityProfile, ProfiledWorkload


# -- activity profiles ---------------------------------------------------------


def profile_to_dict(profile: ActivityProfile) -> dict:
    """JSON-able form of one activity profile, field order preserved."""
    data = {}
    for spec in fields(profile):
        value = getattr(profile, spec.name)
        if spec.name == "smt_scaling":
            # JSON object keys are strings; stringify here, restore in
            # :func:`profile_from_dict`.  Insertion order is preserved.
            value = {str(way): scale for way, scale in value.items()}
        elif isinstance(value, dict):
            value = dict(value)
        data[spec.name] = value
    return data


def profile_from_dict(data: dict) -> ActivityProfile:
    """Rebuild a profile serialized by :func:`profile_to_dict`."""
    kwargs = dict(data)
    kwargs["smt_scaling"] = {
        int(way): scale for way, scale in data["smt_scaling"].items()
    }
    return ActivityProfile(**kwargs)


# -- workloads -----------------------------------------------------------------


def workload_to_dict(workload: object) -> dict:
    """Wire form of one plan workload, tagged by kind.

    Kernels and kernel placements carry their full content; profiled
    workloads carry their activity profile.  Anything else (an opaque
    protocol workload) cannot cross a process boundary faithfully and
    raises :class:`~repro.errors.MeasurementError`.
    """
    if isinstance(workload, Kernel):
        return {"kind": "kernel", "kernel": workload.to_dict()}
    if isinstance(workload, Placement):
        return {"kind": "placement", "placement": workload.to_dict()}
    if isinstance(workload, ProfiledWorkload):
        return {"kind": "profile", "profile": profile_to_dict(workload.profile)}
    raise MeasurementError(
        f"workload {getattr(workload, 'name', workload)!r} of type "
        f"{type(workload).__name__} has no JSON wire form; only kernels, "
        "kernel placements and profiled workloads can be submitted to a "
        "campaign service"
    )


def workload_from_dict(data: dict) -> object:
    """Rebuild a workload serialized by :func:`workload_to_dict`."""
    kind = data.get("kind")
    if kind == "kernel":
        return Kernel.from_dict(data["kernel"])
    if kind == "placement":
        return Placement.from_dict(data["placement"])
    if kind == "profile":
        return ProfiledWorkload(profile_from_dict(data["profile"]))
    raise MeasurementError(f"unknown workload kind {kind!r} in plan request")


# -- configurations ------------------------------------------------------------


def config_to_dict(config: MachineConfig | ChipTopology) -> dict:
    """Wire form of a configuration; topologies marked by ``clusters``."""
    return config.to_dict()


def config_from_dict(data: dict) -> MachineConfig | ChipTopology:
    """Rebuild a configuration, dispatching on shape like
    :meth:`~repro.measure.measurement.Measurement.from_dict` does."""
    if "clusters" in data:
        return ChipTopology.from_dict(data)
    return MachineConfig.from_dict(data)


# -- cells and plans -----------------------------------------------------------


def cell_to_dict(cell: PlanCell) -> dict:
    """Wire form of one plan cell."""
    return {
        "workload": workload_to_dict(cell.workload),
        "config": config_to_dict(cell.config),
        "duration": cell.duration,
    }


def cell_from_dict(data: dict) -> PlanCell:
    """Rebuild a cell serialized by :func:`cell_to_dict`."""
    try:
        return PlanCell(
            workload=workload_from_dict(data["workload"]),
            config=config_from_dict(data["config"]),
            duration=float(data["duration"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MeasurementError(f"malformed plan cell: {exc}") from None


def plan_to_dict(plan: ExperimentPlan) -> dict:
    """Wire form of a plan: its *unique* cells, construction order.

    Duplicate requested cells are a client-side concern (the client
    keeps its plan and fans unique results back out with
    :meth:`~repro.exec.plan.ExperimentPlan.expand`), so only the
    deduplicated cells travel.
    """
    return {"cells": [cell_to_dict(cell) for cell in plan.cells]}


def plan_from_dict(data: dict) -> ExperimentPlan:
    """Rebuild a plan serialized by :func:`plan_to_dict`."""
    cells = data.get("cells")
    if not isinstance(cells, list):
        raise MeasurementError("plan request carries no 'cells' list")
    return ExperimentPlan(cell_from_dict(cell) for cell in cells)
