"""Experiment execution engine: plans, executors, persistent results.

The automation layer behind every measurement campaign::

    plan      what to measure  -- a deduplicated cross product of
              workloads/placements x configurations x p-states x window
    executor  how to measure   -- serially, or sharded across worker
              processes (bit-identical to serial)
    store     where results go -- an on-disk JSON store keyed by
              content-addressed cell keys, so warm re-runs never touch
              ``Machine.run``

All measurement consumers (the runner, the section-4 modeling
campaign, the DSE evaluators, the stressmark search, the figure
benchmarks and the ``python -m repro`` CLI) route through this engine.
The campaign service (``python -m repro serve`` /
:mod:`repro.exec.service`) keeps the whole engine resident behind an
HTTP/JSON API; :class:`~repro.exec.client.RemoteExecutor` is the
executor-shaped client for it.
"""

from repro.exec.client import RemoteExecutor, ServiceClient
from repro.exec.executors import (
    ParallelExecutor,
    SerialExecutor,
    default_executor,
)
from repro.exec.faults import FaultPlan, parse_faults
from repro.exec.journal import RunJournal, gc_journals, run_id
from repro.exec.registry import RunRegistry
from repro.exec.plan import (
    ExperimentPlan,
    PlanCell,
    sweep_configs,
    workload_fingerprint,
)
from repro.exec.report import CellFailure, ExecutionReport
from repro.exec.serialize import (
    WIRE_V1,
    WIRE_V2,
    WIRE_VERSIONS,
    WireInternCache,
    cell_from_dict,
    cell_to_dict,
    plan_from_dict,
    plan_to_dict,
    plan_to_dict_v2,
    wire_digest,
)
from repro.exec.service import MeasurementService, build_server
from repro.exec.shards import ShardedExecutor, parse_shard_endpoints
from repro.exec.store import ResultStore, StoreReport

__all__ = [
    "CellFailure",
    "ExecutionReport",
    "ExperimentPlan",
    "FaultPlan",
    "MeasurementService",
    "ParallelExecutor",
    "PlanCell",
    "RemoteExecutor",
    "ResultStore",
    "RunJournal",
    "RunRegistry",
    "SerialExecutor",
    "ServiceClient",
    "ShardedExecutor",
    "StoreReport",
    "WIRE_V1",
    "WIRE_V2",
    "WIRE_VERSIONS",
    "WireInternCache",
    "build_server",
    "cell_from_dict",
    "cell_to_dict",
    "default_executor",
    "gc_journals",
    "parse_faults",
    "parse_shard_endpoints",
    "plan_from_dict",
    "plan_to_dict",
    "plan_to_dict_v2",
    "run_id",
    "sweep_configs",
    "wire_digest",
    "workload_fingerprint",
]
