"""Persistent run registry: every run the service ever served, durably.

The campaign service's ``GET /runs``/``GET /runs/<id>`` endpoints were
originally backed by the per-run journals alone -- and journals of
*completed* runs are garbage-collected once their cells are durable in
the store, so a run's very existence was forgotten minutes after it
finished.  The :class:`RunRegistry` fixes that: an append-only, flock'd
``<store>/registry.jsonl`` records one line per run state transition
(submitted, completed, interrupted, quarantined), is replayed on server
start, and survives both journal GC and server restarts.

Records are JSON lines; per run, the *last* record wins on replay::

    {"registry": "repro-registry-v1", "run": ..., "state": "running",
     "cells": N, "plan": ..., "plan_digest": ..., "arch": ..., "seed": ...}
    {"run": ..., "state": "complete", "measured": N, "warm": N, ...}

The registry is *accounting*, never a second store: losing a line
degrades the run listing, not results (the store remains the source of
truth for measurements, the journals for per-cell resume).  Appends
therefore log-and-continue on ``OSError`` exactly like the journals,
and a torn tail from a ``kill -9`` mid-append is skipped on replay.

Crash recovery: a registry entry still in state ``running`` when a
server *starts* belongs to a run interrupted by the previous process's
death -- nothing can be running before the first request.
:meth:`RunRegistry.recover` reconciles those entries against the run's
journal (a journal that says complete wins) and appends the corrected
state, so ``GET /runs`` on a restarted server lists the interrupted
run immediately; resubmitting its plan is the resume path, warm cells
serving from the store with zero re-measurement.

Retention: one line per state transition grows forever on a busy
server; :meth:`RunRegistry.compact` rewrites the file to one line per
run (newest state), called from ``python -m repro store scrub``
alongside journal GC.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path

from repro.exec.journal import RunJournal, append_jsonl
from repro.hashing import content_hex

logger = logging.getLogger("repro.exec.registry")

FORMAT = "repro-registry-v1"

STATES = ("running", "complete", "interrupted", "quarantined")


def plan_digest(cell_keys) -> str:
    """Content digest of a plan as submitted: its store keys, in order.

    Distinct from the run id only in salt -- recorded separately so a
    registry consumer can group resubmissions of the same plan without
    re-deriving key lists.
    """
    return content_hex("plan-v1|" + "|".join(cell_keys), size=12)


class RunRegistry:
    """Durable, replayable record of every run against one store."""

    def __init__(self, store_root: str | os.PathLike) -> None:
        self.path = Path(store_root) / "registry.jsonl"
        self._lock = threading.Lock()
        #: run id -> merged record (last state wins), insertion-ordered
        #: by first sighting, so listings read oldest-first.
        self._runs: dict[str, dict] = {}
        self._replay()

    # -- reading ---------------------------------------------------------------

    def _replay(self) -> None:
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return
        except OSError as exc:
            logger.warning("cannot read run registry %s: %s", self.path, exc)
            return
        for line in data.split(b"\n"):
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # A torn tail from a kill mid-append; later appends
                # land on their own line (append_jsonl writes whole
                # lines), so only the remnant is lost.
                logger.warning(
                    "skipping torn line in run registry %s", self.path
                )
                continue
            run = entry.get("run")
            if not run:
                continue
            entry.pop("registry", None)
            merged = self._runs.get(run)
            if merged is None:
                self._runs[run] = dict(entry)
            else:
                merged.update(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)

    def __contains__(self, run: str) -> bool:
        with self._lock:
            return run in self._runs

    def get(self, run: str) -> dict | None:
        """The merged record of one run, or ``None``."""
        with self._lock:
            found = self._runs.get(run)
            return dict(found) if found is not None else None

    def runs(self) -> list[dict]:
        """Every run's merged record, oldest first."""
        with self._lock:
            return [dict(record) for record in self._runs.values()]

    def summary(self) -> dict[str, int]:
        """Run counts per state, for ``GET /stats`` and ``store verify``."""
        totals = {"runs": 0, **{state: 0 for state in STATES}}
        with self._lock:
            for record in self._runs.values():
                totals["runs"] += 1
                state = record.get("state")
                if state in totals:
                    totals[state] += 1
        return totals

    # -- writing ---------------------------------------------------------------

    def record(self, run: str, state: str, **fields) -> None:
        """Append one state transition (and merge it in memory).

        ``fields`` ride along on the record -- plan description and
        digest on submission, accounting on completion.  Never raises:
        the registry is observability, the store has the results.
        """
        entry: dict = {"run": run, "state": state, **fields}
        with self._lock:
            merged = self._runs.get(run)
            if merged is None:
                entry.setdefault("first_seen", time.time())
                self._runs[run] = dict(entry)
            else:
                merged.update(entry)
            entry["updated"] = self._runs[run]["updated"] = time.time()
        try:
            append_jsonl(self.path, {"registry": FORMAT, **entry})
        except OSError as exc:
            logger.warning(
                "cannot append to run registry %s: %s", self.path, exc
            )

    def recover(self, store_root: str | os.PathLike | None = None) -> int:
        """Reconcile stale ``running`` entries after a process death.

        Called once on server start, before any request: every entry
        still ``running`` was interrupted by the previous process (a
        fresh server runs nothing).  The run's journal gets the final
        word -- a journal with a completion trailer means the run
        finished and only the registry append was lost -- otherwise the
        entry flips to ``interrupted``.  Returns how many entries were
        corrected.
        """
        root = Path(store_root) if store_root is not None else self.path.parent
        with self._lock:
            stale = [
                run
                for run, record in self._runs.items()
                if record.get("state") == "running"
            ]
        corrected = 0
        for run in stale:
            journal = RunJournal(root, run)
            state = journal.state if journal.path.exists() else "interrupted"
            self.record(run, state, recovered=True)
            corrected += 1
            logger.warning(
                "run %s was in flight when the previous server died; "
                "registry now records it %s",
                run,
                state,
            )
        return corrected

    def compact(self) -> int:
        """Rewrite the file to one line per run; lines dropped, or -1.

        Uses the journals' atomic-enough discipline: write a sibling
        then ``os.replace``.  Safe against concurrent *readers*; run it
        from ``store scrub``, between campaigns, like shard compaction.
        """
        with self._lock:
            records = [dict(record) for record in self._runs.values()]
        try:
            raw = self.path.read_bytes() if self.path.exists() else b""
            before = sum(1 for line in raw.split(b"\n") if line)
            fresh = self.path.with_suffix(".jsonl.compact")
            with fresh.open("wb") as handle:
                for record in records:
                    handle.write(
                        json.dumps(
                            {"registry": FORMAT, **record}, sort_keys=True
                        ).encode()
                        + b"\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(fresh, self.path)
        except OSError as exc:
            logger.warning("cannot compact run registry %s: %s", self.path, exc)
            return -1
        return before - len(records)
