"""Declarative experiment plans: what to measure, expressed as data.

Every measurement campaign in the system -- the 24-configuration
CMP/SMT sweep, the section-4 training suites, DSE populations, the
Figure-9 stressmark search -- reduces to the same shape: a set of
*cells*, each one workload (or placement) on one configuration for one
window.  An :class:`ExperimentPlan` captures that cross product
declaratively, deduplicates cells that describe the same physical
measurement, and gives every cell a deterministic content-addressed
key derived from the same kernel digests the evaluation engine's
summary memoization uses.  Executors (:mod:`repro.exec.executors`)
consume plans; the :class:`~repro.exec.store.ResultStore` persists
results under the cell keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import MeasurementError, PlanValidationError
from repro.hashing import content_hash, content_hex
from repro.measure.measurement import DEFAULT_DURATION_S
from repro.sim.config import MachineConfig
from repro.sim.placement import Placement, workload_key
from repro.sim.pstate import PState
from repro.sim.topology import ChipTopology


def workload_fingerprint(workload: object) -> tuple:
    """Deterministic, process-stable identity of one plan workload.

    Kernels are identified by name plus analytic-content digest (the
    identity :class:`~repro.sim.summary.KernelSummary` memoization
    already keys on); placements by name, canonical salt and the
    recursive fingerprints of their threads in declaration order
    (counter readings keep declaration order, so two placements that
    permute co-runners are *different* cells even though their power
    draws coincide, while a same-named co-runner with different
    content stays distinct); profiled workloads by name plus a digest
    of their profile content; anything else by its protocol name --
    the one place a caller-defined workload type must either keep
    names unique or expose a ``fingerprint()`` method (which overrides
    all of the above) to avoid aliasing.
    """
    custom = getattr(workload, "fingerprint", None)
    if callable(custom):
        return tuple(custom())
    if isinstance(workload, Placement):
        # Placements are frozen; their recursive fingerprint is pure
        # content, so cache it on the instance the same way kernels
        # cache their digest.  Interned wire objects (serialize.py)
        # are fingerprinted once per process instead of once per
        # request.
        cached = workload.__dict__.get("_fingerprint")
        if cached is None:
            cached = (
                "placement",
                workload.name,
                workload.canonical_salt(),
                tuple(
                    workload_fingerprint(w) for w in workload.thread_workloads
                ),
            )
            object.__setattr__(workload, "_fingerprint", cached)
        return cached
    profile = getattr(workload, "profile", None)
    if profile is not None:
        cached = getattr(workload, "_fingerprint", None)
        if cached is None:
            name = getattr(workload, "name", type(workload).__name__)
            cached = ("profile", name, content_hash(repr(profile)))
            try:
                workload._fingerprint = cached  # type: ignore[attr-defined]
            except (AttributeError, TypeError):
                pass  # exotic profile carriers may refuse attributes
        return cached
    # Kernels and bare protocol workloads share the noise-salt identity
    # (delegation, so the store/dedup identity can never drift from the
    # physical noise identity): ("kernel", name, digest) for kernels,
    # ("workload", name, 0) otherwise.
    return workload_key(workload)


def sweep_configs(
    configs: Sequence[MachineConfig],
    p_states: Sequence[PState] | None = None,
) -> list[MachineConfig]:
    """Cross a configuration list with a DVFS ladder, p-state-major.

    The single definition of the sweep order (the whole CMP-SMT list
    repeated per operating point, as a DVFS campaign runs it) shared by
    :meth:`ExperimentPlan.cross` and the measurement runner's
    ``run_sweep``.  ``p_states=None`` returns the list as given.
    """
    swept = list(configs)
    if p_states is not None:
        swept = [
            config.with_p_state(p_state)
            for p_state in p_states
            for config in swept
        ]
    return swept


@dataclass(frozen=True)
class PlanCell:
    """One measurement: one workload on one configuration for one window.

    ``config`` is a :class:`~repro.sim.config.MachineConfig` or a
    heterogeneous :class:`~repro.sim.topology.ChipTopology`.  A
    degenerate single-cluster topology is collapsed to its
    MachineConfig at construction, so the two spellings of the same
    physical chip share one cell identity -- and therefore one store
    key, one dedup slot and one noise seed.
    """

    workload: object
    config: MachineConfig | ChipTopology
    duration: float = DEFAULT_DURATION_S

    def __post_init__(self) -> None:
        if isinstance(self.config, ChipTopology):
            degenerate = self.config.degenerate_config()
            if degenerate is not None:
                object.__setattr__(self, "config", degenerate)

    def identity(self) -> tuple:
        """Machine-independent identity, used for in-plan deduplication.

        Includes the configuration label alongside the configuration:
        ``PState`` equality deliberately ignores the operating-point
        *name*, but the label (which embeds it) seeds sensor noise, so
        two same-scale points with different names are physically
        distinct measurements and must never dedup into one cell.
        """
        return (
            workload_fingerprint(self.workload),
            self.config,
            self.config.label,
            self.duration,
        )

    def key(
        self,
        arch_name: str,
        machine_seed: int,
        arch_digest: int = 0,
        cluster_digests: "dict[str | None, int] | None" = None,
    ) -> str:
        """Content-addressed store key of this cell on one machine.

        Everything the measurement depends on flows in: the
        architecture -- by name *and* definition-content digest
        (:meth:`~repro.march.definition.MicroArchitecture.content_digest`),
        so editing a bundled ``.isa``/``.march`` file invalidates
        stale store entries rather than silently serving them -- the
        machine seed (which seeds sensor noise), the workload's content
        fingerprint (kernel digests -- two kernels sharing a name never
        collide), the CMP-SMT mode, the operating point (name *and*
        physical scales: the name enters the noise seed through the
        configuration label, the scales enter the physics), and the
        window length.

        Topology cells use a ``cell-topo-v1`` key folding every
        cluster's shape *and* its core class's own definition digest
        (``cluster_digests``, by class name; the base class under
        ``None``), so editing the eco definition invalidates exactly
        the cells whose little clusters measured on it.  Degenerate
        topologies were collapsed at construction and produce the
        historical ``cell-v1`` key bit for bit.
        """
        if isinstance(self.config, ChipTopology):
            digests = cluster_digests or {}
            parts = [
                "cell-topo-v1",
                arch_name,
                arch_digest,
                machine_seed,
                self.duration,
                workload_fingerprint(self.workload),
            ]
            for cluster in self.config.clusters:
                p_state = cluster.p_state
                parts.append(
                    (
                        cluster.name,
                        cluster.core_class or "",
                        digests.get(cluster.core_class, 0),
                        cluster.cores,
                        cluster.smt,
                        p_state.name,
                        p_state.freq_scale,
                        p_state.volt_scale,
                    )
                )
            return content_hex("|".join(str(part) for part in parts))
        p_state: PState = self.config.p_state
        parts = (
            "cell-v1",
            arch_name,
            arch_digest,
            machine_seed,
            self.config.cores,
            self.config.smt,
            p_state.name,
            p_state.freq_scale,
            p_state.volt_scale,
            self.duration,
            workload_fingerprint(self.workload),
        )
        return content_hex("|".join(str(part) for part in parts))


class ExperimentPlan:
    """A deduplicated, ordered collection of measurement cells.

    The plan remembers every *requested* cell but holds each distinct
    physical measurement once: :attr:`cells` is the unique sequence an
    executor measures, and :meth:`expand` fans unique results back out
    to the requested order.  Construction order is preserved, so an
    executor that walks :attr:`cells` front to back reproduces the
    historical serial measurement order.
    """

    def __init__(self, cells: Iterable[PlanCell]) -> None:
        unique: list[PlanCell] = []
        index_of: dict[tuple, int] = {}
        expansion: list[int] = []
        for cell in cells:
            identity = cell.identity()
            index = index_of.get(identity)
            if index is None:
                index = len(unique)
                index_of[identity] = index
                unique.append(cell)
            expansion.append(index)
        # An empty plan is valid and executes to an empty result list,
        # matching the historical behaviour of running zero workloads.
        self.cells: tuple[PlanCell, ...] = tuple(unique)
        self._expansion: tuple[int, ...] = tuple(expansion)

    # -- construction ----------------------------------------------------------

    @classmethod
    def cross(
        cls,
        workloads: Sequence[object],
        configs: Sequence[MachineConfig],
        p_states: Sequence[PState] | None = None,
        duration: float = DEFAULT_DURATION_S,
    ) -> "ExperimentPlan":
        """The cross product ``configs x workloads``, configuration-major.

        Passing ``p_states`` crosses the configuration list with that
        DVFS ladder first (via :func:`sweep_configs`, p-state-major,
        the order a DVFS campaign runs): the scenario count grows to
        ``|p_states| x |configs| x |workloads|``.  Requested order is
        configuration-major with workloads innermost, so the cells of
        configuration ``i`` are the contiguous slice ``[i *
        len(workloads), (i + 1) * len(workloads))`` of the expanded
        results.
        """
        swept = sweep_configs(configs, p_states)
        return cls(
            PlanCell(workload, config, duration)
            for config in swept
            for workload in workloads
        )

    @classmethod
    def single(
        cls,
        workload: object,
        config: MachineConfig,
        duration: float = DEFAULT_DURATION_S,
    ) -> "ExperimentPlan":
        """A one-cell plan."""
        return cls([PlanCell(workload, config, duration)])

    # -- shape -----------------------------------------------------------------

    @property
    def size(self) -> int:
        """Distinct physical measurements the plan requires."""
        return len(self.cells)

    @property
    def requested(self) -> int:
        """Cells as requested, duplicates included."""
        return len(self._expansion)

    def validate_against(self, machine) -> "ExperimentPlan":
        """Fail fast if some cell's configuration cannot run on ``machine``.

        Checks every distinct configuration of the plan -- CMP-SMT
        modes against the chip geometry, topology clusters against
        their core classes' geometries -- *before* anything is
        measured, so a bad sweep ladder surfaces as one clear
        :class:`~repro.errors.PlanValidationError` (a ``ReproError``)
        at plan-build time instead of a deep failure mid-campaign.
        Returns the plan for call chaining.
        """
        seen: set[int] = set()
        for cell in self.cells:
            marker = id(cell.config)
            if marker in seen:
                continue
            seen.add(marker)
            try:
                machine.validate_config(cell.config)
            except MeasurementError as exc:
                raise PlanValidationError(
                    f"plan cell cannot run on {machine.arch.name}: {exc}"
                ) from None
        return self

    def expand(self, unique_results: Sequence) -> list:
        """Fan per-unique-cell results back out to requested order."""
        if len(unique_results) != len(self.cells):
            raise ValueError(
                f"expected {len(self.cells)} unique results, "
                f"got {len(unique_results)}"
            )
        return [unique_results[index] for index in self._expansion]

    def describe(self) -> str:
        """One-line summary for logs."""
        configs = {cell.config.label for cell in self.cells}
        return (
            f"{self.size} unique cells ({self.requested} requested) "
            f"across {len(configs)} configuration(s)"
        )
