"""Persistent measurement results, keyed by content-addressed cell keys.

A :class:`ResultStore` is a directory of *shard* files --
``shards/<xx>.jsonl``, fanned out on the first key byte -- each an
append-only sequence of JSON lines, one per persisted measurement
cell.  Because keys are derived from the architecture, machine seed,
workload content digest, configuration, operating point and window
length (:meth:`~repro.exec.plan.PlanCell.key`), a store survives
process restarts and is shared safely between serial and parallel
executors: the same cell always lands under the same key with the
same payload, and a warm re-run of any campaign skips ``Machine.run``
entirely.

Writes are *append-style and batched*: persisting a measured batch
groups its cells by shard and issues one locked append per touched
shard, so a store write costs O(batch) regardless of how many cells
the store already holds -- a week-long campaign's checkpoint cadence
never degrades as the store grows.  Appends take an exclusive
``flock`` on the shard, verify the file still ends on a line boundary
(a crashed writer's torn tail is repaired by prepending a newline),
and write the whole batch with a single ``write`` call.  Re-written
keys simply append a newer line; readers index the shard last-wins.

Reads are served from a lazy per-shard offset index: the first lookup
touching a shard scans it once, later lookups seek straight to the
line (verifying the key, so an externally rewritten shard is a miss,
never a wrong entry).  A miss re-checks whether another process has
grown the shard since it was scanned, so concurrent campaigns sharing
one store see each other's results.  Stores written by the pre-shard
layout (one ``<xx>/<key>.json`` file per cell) are still readable --
legacy entries are found through a per-file fallback -- so existing
warm stores keep serving.

Shard locking uses POSIX ``flock``; on platforms without ``fcntl``
(Windows) appends are lock-free and a store directory should have a
single writer at a time (readers are always safe).
"""

from __future__ import annotations

import json
import logging
import os
from collections.abc import Sequence
from pathlib import Path

try:  # POSIX shard locking; on platforms without fcntl the store
    import fcntl  # degrades to lock-free appends (single-writer safe).
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.measure.measurement import Measurement

logger = logging.getLogger("repro.exec.store")

#: Store layout version; bump when the payload format changes.
FORMAT = "repro-result-v1"


class _Shard:
    """Offset index of one shard file."""

    __slots__ = ("path", "offsets", "scanned")

    def __init__(self, path: Path) -> None:
        self.path = path
        #: key -> (byte offset, byte length) of the newest line.
        self.offsets: dict[str, tuple[int, int]] = {}
        #: How far into the file the index has scanned.
        self.scanned = 0


class ResultStore:
    """On-disk measurement store: sharded, append-style JSON lines."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.shard_dir = self.root / "shards"
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        #: Cells served from disk / missed since construction.
        self.hits = 0
        self.misses = 0
        self._shards: dict[str, _Shard] = {}

    # -- shard plumbing --------------------------------------------------------

    def _shard(self, key: str) -> _Shard:
        name = key[:2]
        shard = self._shards.get(name)
        if shard is None:
            shard = self._shards[name] = _Shard(
                self.shard_dir / f"{name}.jsonl"
            )
        return shard

    def _refresh(self, shard: _Shard) -> None:
        """Index any lines appended since the shard was last scanned."""
        try:
            size = shard.path.stat().st_size
        except OSError:
            return
        if size <= shard.scanned:
            return
        try:
            with shard.path.open("rb") as handle:
                handle.seek(shard.scanned)
                offset = shard.scanned
                for line in handle:
                    if not line.endswith(b"\n"):
                        # Unterminated tail: a concurrent writer's
                        # append that is only partially visible (or a
                        # crashed writer's remnant).  Do not advance
                        # past it -- the next refresh re-reads from
                        # here, picking the line up once its remaining
                        # bytes land.
                        break
                    self._index_line(shard, line, offset, len(line))
                    offset += len(line)
                shard.scanned = offset
        except OSError as exc:  # pragma: no cover - foreign permissions
            logger.warning("cannot scan store shard %s: %s", shard.path, exc)

    def _index_line(
        self, shard: _Shard, line: bytes, offset: int, length: int
    ) -> None:
        # Only the key is needed for the index; the payload is parsed
        # on ``get``.  Unparseable lines are skipped (a miss at worst).
        try:
            payload = json.loads(line)
            key = payload["key"]
        except (ValueError, KeyError, TypeError):
            logger.warning(
                "skipping unreadable line in store shard %s @%d",
                shard.path,
                offset,
            )
            return
        shard.offsets[str(key)] = (offset, length)

    def _read_at(self, shard: _Shard, offset: int, length: int):
        with shard.path.open("rb") as handle:
            handle.seek(offset)
            return json.loads(handle.read(length))

    # -- legacy per-cell-file layout -------------------------------------------

    def _legacy_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _legacy_get(self, key: str) -> Measurement | None:
        path = self._legacy_path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("format") != FORMAT:
                raise ValueError(
                    f"unknown store format {payload.get('format')!r}"
                )
            return Measurement.from_dict(payload["measurement"])
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            logger.warning(
                "discarding unreadable store entry %s: %s", path, exc
            )
            return None

    # -- public API -------------------------------------------------------------

    def get(self, key: str) -> Measurement | None:
        """The stored measurement for ``key``, or ``None`` on a miss.

        Unreadable or format-mismatched entries count as misses (the
        executor re-measures and overwrites them).
        """
        shard = self._shard(key)
        location = shard.offsets.get(key)
        if location is None:
            # Another process may have appended since the last scan.
            self._refresh(shard)
            location = shard.offsets.get(key)
        if location is None:
            legacy = self._legacy_get(key)
            if legacy is not None:
                self.hits += 1
                return legacy
            self.misses += 1
            return None
        try:
            payload = self._read_at(shard, *location)
            if payload.get("format") != FORMAT:
                raise ValueError(
                    f"unknown store format {payload.get('format')!r}"
                )
            if payload.get("key") != key:
                # The shard was rewritten out from under a long-lived
                # index (external compaction/cleanup): never serve
                # whatever entry now occupies the stale offset.
                raise ValueError(
                    f"stale shard index: found {payload.get('key')!r}"
                )
            measurement = Measurement.from_dict(payload["measurement"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            logger.warning(
                "discarding unreadable store entry %s[%s]: %s",
                shard.path,
                key,
                exc,
            )
            self.misses += 1
            return None
        self.hits += 1
        return measurement

    def put(self, key: str, measurement: Measurement) -> None:
        """Persist one measurement under ``key``."""
        self.put_many([(key, measurement)])

    def put_many(
        self, entries: Sequence[tuple[str, Measurement]]
    ) -> None:
        """Persist a whole batch: one locked append per touched shard.

        The batch groups by shard, each shard's lines are rendered and
        written with a single ``write`` under an exclusive ``flock``,
        and the in-memory index is updated from the append position --
        O(batch) work and O(shards-touched) syscall round trips, no
        matter how large the store already is.
        """
        by_shard: dict[str, list[tuple[str, Measurement]]] = {}
        for key, measurement in entries:
            by_shard.setdefault(key[:2], []).append((key, measurement))
        for name, batch in by_shard.items():
            shard = self._shard(batch[0][0])
            lines = []
            rendered = []
            for key, measurement in batch:
                line = (
                    json.dumps(
                        {
                            "format": FORMAT,
                            "key": key,
                            "measurement": measurement.to_dict(),
                        },
                        sort_keys=True,
                    ).encode()
                    + b"\n"
                )
                lines.append(line)
                rendered.append((key, len(line)))
            payload = b"".join(lines)
            with shard.path.open("ab") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    # Repair a crashed writer's torn tail so our first
                    # line starts on a fresh line boundary.
                    end = handle.seek(0, os.SEEK_END)
                    if end > 0:
                        with shard.path.open("rb") as reader:
                            reader.seek(end - 1)
                            if reader.read(1) != b"\n":
                                handle.write(b"\n")
                                end += 1
                    handle.write(payload)
                    handle.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            offset = end
            for key, length in rendered:
                shard.offsets[key] = (offset, length)
                offset += length
            if shard.scanned == end:
                shard.scanned = offset

    def __contains__(self, key: str) -> bool:
        shard = self._shard(key)
        if key not in shard.offsets:
            self._refresh(shard)
        return key in shard.offsets or self._legacy_path(key).exists()

    def _all_keys(self) -> set[str]:
        for path in self.shard_dir.glob("??.jsonl"):
            shard = self._shard(path.stem + "00")
            self._refresh(shard)
        keys = {
            key
            for shard in self._shards.values()
            for key in shard.offsets
        }
        keys.update(path.stem for path in self.root.glob("??/*.json"))
        return keys

    def __len__(self) -> int:
        return len(self._all_keys())

    def keys(self) -> list[str]:
        """All stored cell keys (sharded and legacy layouts)."""
        return sorted(self._all_keys())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
