"""Persistent measurement results, keyed by content-addressed cell keys.

A :class:`ResultStore` is a directory of small JSON files, one per
measurement cell, named by the cell's
:meth:`~repro.exec.plan.PlanCell.key`.  Because keys are derived from
the architecture, machine seed, workload content digest, configuration,
operating point and window length, a store survives process restarts
and is shared safely between serial and parallel executors: the same
cell always lands in the same file with the same bytes, and a warm
re-run of any campaign skips ``Machine.run`` entirely.

Writes are atomic (write-to-temp + rename), so concurrent writers --
parallel campaign shards, or two campaigns sharing one store -- never
corrupt an entry; at worst they write the identical payload twice.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.measure.measurement import Measurement

logger = logging.getLogger("repro.exec.store")

#: Store layout version; bump when the payload format changes.
FORMAT = "repro-result-v1"


class ResultStore:
    """On-disk measurement store, one JSON file per cell key."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Cells served from disk / missed since construction.
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        # Two-character fan-out keeps directories small at campaign scale.
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Measurement | None:
        """The stored measurement for ``key``, or ``None`` on a miss.

        Unreadable or format-mismatched entries count as misses (the
        executor re-measures and overwrites them).
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("format") != FORMAT:
                raise ValueError(f"unknown store format {payload.get('format')!r}")
            measurement = Measurement.from_dict(payload["measurement"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Any unreadable entry -- corrupt JSON, foreign permissions,
            # a stray directory -- is a miss to re-measure, never a
            # reason to abort a resumable campaign.
            logger.warning("discarding unreadable store entry %s: %s", path, exc)
            self.misses += 1
            return None
        self.hits += 1
        return measurement

    def put(self, key: str, measurement: Measurement) -> None:
        """Persist one measurement under ``key`` (atomic overwrite)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": FORMAT,
            "key": key,
            "measurement": measurement.to_dict(),
        }
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(temp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.json"))

    def keys(self) -> list[str]:
        """All stored cell keys."""
        return sorted(path.stem for path in self.root.glob("??/*.json"))

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
