"""Persistent measurement results, keyed by content-addressed cell keys.

A :class:`ResultStore` is a directory of *shard* files --
``shards/<xx>.jsonl``, fanned out on the first key byte -- each an
append-only sequence of JSON lines, one per persisted measurement
cell.  Because keys are derived from the architecture, machine seed,
workload content digest, configuration, operating point and window
length (:meth:`~repro.exec.plan.PlanCell.key`), a store survives
process restarts and is shared safely between serial and parallel
executors: the same cell always lands under the same key with the
same payload, and a warm re-run of any campaign skips ``Machine.run``
entirely.

Writes are *append-style and batched*: persisting a measured batch
groups its cells by shard and issues one locked append per touched
shard, so a store write costs O(batch) regardless of how many cells
the store already holds -- a week-long campaign's checkpoint cadence
never degrades as the store grows.  Appends take an exclusive
``flock`` on the shard, verify the file still ends on a line boundary
(a crashed writer's torn tail is repaired by prepending a newline),
and write the whole batch with a single ``write`` call.  Re-written
keys simply append a newer line; readers index the shard last-wins.

Integrity: every record written by this version carries a content
checksum (``"sum"``, over the key and the canonical measurement JSON).
Reads verify it, so a torn or bit-flipped record is *quarantined* --
counted, logged, served as a miss so the executor re-measures and
overwrites it -- never silently returned and never a crash.  Lines
written before checksums existed parse fine (they simply skip the
check).  :meth:`verify` audits the whole store without modifying it;
:meth:`scrub` compacts each shard to the newest valid record per key,
dropping corrupt lines and upgrading legacy lines to checksummed ones.
Swallowed I/O errors are counted too (:meth:`fault_stats`, warn-once
per shard), so a half-unreadable store is visible instead of quietly
re-measuring everything.

Reads are served from a lazy per-shard offset index: the first lookup
touching a shard scans it once, later lookups seek straight to the
line (verifying the key, so an externally rewritten shard is a miss,
never a wrong entry).  A miss re-checks whether another process has
grown the shard since it was scanned, so concurrent campaigns sharing
one store see each other's results.  Stores written by the pre-shard
layout (one ``<xx>/<key>.json`` file per cell) are still readable --
legacy entries are found through a per-file fallback -- so existing
warm stores keep serving.

The offset index itself is *persistent*: every shard carries a sidecar
``shards/<xx>.idx`` -- a header line, ``[key, offset, length]`` entry
lines and per-batch commit lines ``{"commit": [base, upto]}`` appended
under the same shard ``flock`` as the data they describe.  A fresh
process (a warm serve replica, ``store verify``, ``len(store)``)
loads the sidecar instead of rescanning the shard body: commits are
folded while they are contiguous from byte 0 and consistent with the
current shard size (a full-coverage commit also pins the shard mtime,
so a same-size shard replacement is detected); anything torn, gapped
or stale degrades to the ordinary JSONL tail scan and the sidecar is
rebuilt from it (``rebuild_index`` forces this for every shard).  The
sidecar is an accelerator, never an authority -- reads still verify
the key and checksum at the recorded offset, so a lying sidecar costs
a re-measure, not a wrong result.

Shard locking uses POSIX ``flock``; on platforms without ``fcntl``
(Windows) appends are lock-free and a store directory should have a
single writer at a time (readers are always safe).  :meth:`scrub`
replaces shard files and must not race concurrent *writers* (readers
are safe): run it between campaigns.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX shard locking; on platforms without fcntl the store
    import fcntl  # degrades to lock-free appends (single-writer safe).
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.exec import faults
from repro.hashing import content_hex
from repro.measure.measurement import Measurement

logger = logging.getLogger("repro.exec.store")

#: Store layout version; bump when the payload format changes.
FORMAT = "repro-result-v1"

#: Sidecar index layout version; bump when the sidecar format changes.
INDEX_FORMAT = "repro-idx-v1"


def _parse_index(data: bytes, size: int, mtime_ns: int) -> tuple[dict, int]:
    """``(offsets, covered)`` recovered from one sidecar's bytes.

    Commit blocks are folded while they are contiguous from byte 0 of
    the shard; the first gap, unparseable line or torn tail ends the
    fold (everything already committed stays usable).  The whole
    sidecar is distrusted -- ``({}, 0)`` -- when the header is missing
    or foreign, a commit reaches past the current shard size (the
    shard shrank or was replaced), or a full-coverage commit pins a
    different mtime (a same-size replacement).
    """
    parts = data.split(b"\n")
    if parts and parts[-1] == b"":
        parts.pop()  # clean trailing newline; anything else is torn
    offsets: dict[str, tuple[int, int]] = {}
    staged: dict[str, tuple[int, int]] = {}
    covered = 0
    mtime_claim = None
    saw_header = False
    for raw in parts:
        if not raw:
            continue
        try:
            item = json.loads(raw)
        except ValueError:
            break
        if isinstance(item, dict) and "format" in item:
            if item.get("format") != INDEX_FORMAT or saw_header:
                return {}, 0
            saw_header = True
            continue
        if not saw_header:
            return {}, 0
        if isinstance(item, list) and len(item) == 3:
            try:
                staged[str(item[0])] = (int(item[1]), int(item[2]))
            except (TypeError, ValueError):
                break
            continue
        if isinstance(item, dict) and "commit" in item:
            commit = item["commit"]
            try:
                base, upto = int(commit[0]), int(commit[1])
            except (TypeError, ValueError, IndexError, KeyError):
                break
            if base != covered:
                break  # gap (a writer crashed between data and sidecar)
            if upto > size or upto < base:
                return {}, 0
            offsets.update(staged)
            staged = {}
            covered = upto
            mtime_claim = item.get("mtime_ns")
            continue
        break
    if covered == 0:
        return {}, 0
    if covered == size and mtime_claim is not None and mtime_claim != mtime_ns:
        return {}, 0
    return offsets, covered


def record_checksum(key: str, measurement_dict: dict) -> str:
    """Content checksum of one record: key + canonical measurement JSON.

    JSON round-trips floats at shortest-repr precision, so re-dumping a
    parsed record reproduces the canonical text -- and therefore the
    checksum -- exactly; any torn or bit-flipped payload that still
    parses as JSON changes it.
    """
    return content_hex(
        "sum-v1|" + key + "|" + json.dumps(measurement_dict, sort_keys=True),
        size=8,
    )


def render_record(key: str, measurement_dict: dict) -> bytes:
    """One checksummed store line (newline-terminated).

    The measurement is serialized exactly once and the record assembled
    around that canonical text -- byte-identical to dumping the whole
    record with ``sort_keys=True``, but half the serialization work,
    and it guarantees the canonical measurement bytes appear verbatim
    in the line so readers can verify the checksum with a slice and a
    hash instead of a re-serialization (see :func:`_checksum_matches`).
    """
    body = json.dumps(measurement_dict, sort_keys=True)
    digest = content_hex("sum-v1|" + key + "|" + body, size=8)
    return (
        '{"format": "%s", "key": %s, "measurement": %s, "sum": "%s"}\n'
        % (FORMAT, json.dumps(key), body, digest)
    ).encode()


_MEASUREMENT_FIELD = b'"measurement": '
_SUM_FIELD = b', "sum": "'
_KEY_PREFIX = b'{"format": "' + FORMAT.encode() + b'", "key": "'


def _checksum_matches(
    key: str, recorded: str, raw: bytes, measurement_dict: dict
) -> bool:
    """Whether a record's checksum verifies, preferring the raw bytes.

    Lines written by :func:`render_record` carry the canonical
    measurement text verbatim between the ``measurement`` field and the
    trailing ``sum`` field, so the common case is a slice and a hash.
    ``rfind`` is safe: nothing after the *real* sum separator but the
    checksum hex and the closing brace.  Foreign formatting (re-written
    or hand-edited lines) falls back to the canonical recompute.
    """
    start = raw.find(_MEASUREMENT_FIELD)
    end = raw.rfind(_SUM_FIELD)
    if start != -1 and end > start:
        body = raw[start + len(_MEASUREMENT_FIELD) : end]
        if (
            content_hex("sum-v1|" + key + "|" + body.decode(), size=8)
            == recorded
        ):
            return True
    return recorded == record_checksum(key, measurement_dict)


class _Shard:
    """Offset index of one shard file."""

    __slots__ = ("path", "offsets", "scanned", "handle", "index_checked")

    def __init__(self, path: Path) -> None:
        self.path = path
        #: key -> (byte offset, byte length) of the newest line.
        self.offsets: dict[str, tuple[int, int]] = {}
        #: How far into the file the index has scanned.
        self.scanned = 0
        #: Lazy persistent read handle.  Shards are append-only (a
        #: handle always sees later appends), so one open serves every
        #: read; :meth:`ResultStore.scrub` replaces shard files and
        #: invalidates these.
        self.handle = None
        #: Whether the persistent sidecar index was consulted for this
        #: shard's first in-process touch (tried at most once).
        self.index_checked = False

    def reader(self):
        if self.handle is None:
            self.handle = self.path.open("rb")
        return self.handle

    def invalidate(self) -> None:
        """Drop the cached handle and index (file was replaced)."""
        if self.handle is not None:
            self.handle.close()
            self.handle = None
        self.offsets.clear()
        self.scanned = 0
        self.index_checked = False


@dataclass
class StoreReport:
    """What :meth:`ResultStore.verify`/:meth:`~ResultStore.scrub` found.

    ``records`` counts parsed lines (superseded duplicates included);
    ``keys`` distinct newest keys.  A store is :attr:`ok` when nothing
    is corrupt, mismatched or torn.
    """

    shards: int = 0
    records: int = 0
    keys: int = 0
    checksummed: int = 0
    legacy_lines: int = 0
    legacy_files: int = 0
    corrupt_lines: int = 0
    checksum_mismatches: int = 0
    torn_tails: int = 0
    #: scrub only: invalid lines dropped / superseded duplicates removed.
    dropped: int = 0
    compacted: int = 0
    #: persistent sidecar indexes found / found-but-unusable (stale
    #: sidecars self-heal on the next read, so they never fail ``ok``).
    index_sidecars: int = 0
    index_stale: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (
            self.corrupt_lines or self.checksum_mismatches or self.torn_tails
        )

    def describe(self) -> str:
        text = (
            f"{self.shards} shard(s), {self.records} record(s), "
            f"{self.keys} key(s): {self.checksummed} checksummed, "
            f"{self.legacy_lines} legacy line(s), "
            f"{self.legacy_files} legacy file(s)"
        )
        if not self.ok:
            text += (
                f"; CORRUPTION: {self.corrupt_lines} unparseable, "
                f"{self.checksum_mismatches} checksum mismatch(es), "
                f"{self.torn_tails} torn tail(s)"
            )
        if self.dropped or self.compacted:
            text += (
                f"; scrubbed: {self.dropped} invalid line(s) dropped, "
                f"{self.compacted} superseded line(s) compacted"
            )
        if self.index_sidecars or self.index_stale:
            text += (
                f"; index: {self.index_sidecars} sidecar(s), "
                f"{self.index_stale} stale"
            )
        return text


def _classify_line(line: bytes) -> tuple[str, str | None, dict | None]:
    """(status, key, payload) of one shard line.

    Status is ``ok`` (checksummed and verified), ``legacy`` (pre-checksum
    line, parseable), ``mismatch`` (checksum failed) or ``corrupt``
    (unparseable / wrong shape).
    """
    try:
        payload = json.loads(line)
        key = str(payload["key"])
        measurement = payload["measurement"]
        if payload.get("format") != FORMAT or not isinstance(
            measurement, dict
        ):
            return ("corrupt", None, None)
    except (ValueError, KeyError, TypeError):
        return ("corrupt", None, None)
    recorded = payload.get("sum")
    if recorded is None:
        return ("legacy", key, payload)
    if not _checksum_matches(key, recorded, line, measurement):
        return ("mismatch", key, payload)
    return ("ok", key, payload)


class ResultStore:
    """On-disk measurement store: sharded, append-style JSON lines."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.shard_dir = self.root / "shards"
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        #: Cells served from disk / missed since construction.
        self.hits = 0
        self.misses = 0
        #: Fault visibility: swallowed I/O errors, quarantined corrupt
        #: records, repaired torn tails (see :meth:`fault_stats`).
        self.io_errors = 0
        self.checksum_failures = 0
        self.corrupt_records = 0
        self.torn_tails_repaired = 0
        #: Persistent sidecar-index accounting: shard first-touches
        #: served from the sidecar vs falling back to a JSONL scan,
        #: commit blocks appended, snapshots (re)written, and sidecars
        #: found but distrusted (see :meth:`snapshot_stats`).
        self.index_hits = 0
        self.index_misses = 0
        self.index_appends = 0
        self.index_rebuilds = 0
        self.index_stale = 0
        self._io_warned: set[str] = set()
        self._shards: dict[str, _Shard] = {}
        # One store instance may be shared by many threads (the
        # campaign service probes and persists from concurrent client
        # handlers).  The lock guards the shard index/handle state and
        # serializes reads on the shared per-shard file handles; disk
        # appends already serialize under the shard flock, which covers
        # concurrent *processes* as before.
        self._lock = threading.RLock()

    # -- fault accounting ------------------------------------------------------

    def fault_stats(self) -> dict[str, int]:
        """Non-zero fault counters since construction.

        ``io_errors`` are OSErrors swallowed as misses (a half-unreadable
        store re-measures loudly, not quietly); ``checksum_failures``
        and ``corrupt_records`` are quarantined records;
        ``torn_tails_repaired`` counts crashed-writer remnants appends
        healed.
        """
        counters = {
            "io_errors": self.io_errors,
            "checksum_failures": self.checksum_failures,
            "corrupt_records": self.corrupt_records,
            "torn_tails_repaired": self.torn_tails_repaired,
        }
        return {name: value for name, value in counters.items() if value}

    def snapshot_stats(self) -> dict:
        """One consistent, JSON-able view of the store's counters.

        Taken under the store lock so a concurrent reader (the campaign
        service's ``GET /stats``, drain-time logging) never observes a
        hit counted whose miss twin is still in flight; includes the
        cell count, which walks the shard indexes and therefore also
        wants the lock.
        """
        with self._lock:
            return {
                "root": str(self.root),
                "cells": len(self),
                "hits": self.hits,
                "misses": self.misses,
                "faults": self.fault_stats(),
                "index": {
                    "hits": self.index_hits,
                    "misses": self.index_misses,
                    "appends": self.index_appends,
                    "rebuilds": self.index_rebuilds,
                    "stale": self.index_stale,
                },
            }

    def _count_io_error(self, path: Path, exc: OSError) -> None:
        """Count a swallowed OSError, warning once per shard path."""
        self.io_errors += 1
        name = str(path)
        if name not in self._io_warned:
            self._io_warned.add(name)
            logger.warning(
                "store I/O error on %s (treated as a miss; further "
                "errors on this shard counted silently): %s",
                path,
                exc,
            )

    def close(self) -> None:
        """Release cached shard read handles (indexes are kept)."""
        with self._lock:
            for shard in self._shards.values():
                if shard.handle is not None:
                    shard.handle.close()
                    shard.handle = None

    # -- shard plumbing --------------------------------------------------------

    def _shard(self, key: str) -> _Shard:
        name = key[:2]
        shard = self._shards.get(name)
        if shard is None:
            shard = self._shards[name] = _Shard(
                self.shard_dir / f"{name}.jsonl"
            )
        return shard

    def _index_path(self, shard: _Shard) -> Path:
        return shard.path.with_suffix(".idx")

    def _load_index(self, shard: _Shard, size: int, mtime_ns: int) -> None:
        """Seed a fresh shard's offsets from its persistent sidecar."""
        path = self._index_path(shard)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            self.index_misses += 1
            return
        except OSError as exc:
            self._count_io_error(path, exc)
            self.index_misses += 1
            return
        offsets, covered = _parse_index(data, size, mtime_ns)
        if covered == 0:
            self.index_stale += 1
            self.index_misses += 1
            return
        shard.offsets.update(offsets)
        shard.scanned = covered
        self.index_hits += 1

    def _refresh(self, shard: _Shard) -> None:
        """Index any lines appended since the shard was last scanned.

        The first in-process touch of a shard consults its persistent
        sidecar index first; only the bytes the sidecar does not cover
        (none, for a cleanly written store) are scanned from the JSONL
        body.  A missing, stale or partial sidecar degrades to the
        ordinary scan and is rebuilt from it.
        """
        try:
            stat = shard.path.stat()
        except OSError:
            return
        size = stat.st_size
        if size <= shard.scanned:
            return
        heal = False
        if not shard.index_checked and shard.scanned == 0 and not shard.offsets:
            shard.index_checked = True
            self._load_index(shard, size, stat.st_mtime_ns)
            if size <= shard.scanned:
                return
            heal = True  # sidecar absent/stale/partial: scan, then rewrite
        try:
            handle = shard.reader()
            handle.seek(shard.scanned)
            offset = shard.scanned
            for line in handle:
                if not line.endswith(b"\n"):
                    # Unterminated tail: a concurrent writer's
                    # append that is only partially visible (or a
                    # crashed writer's remnant).  Do not advance
                    # past it -- the next refresh re-reads from
                    # here, picking the line up once its remaining
                    # bytes land.
                    break
                self._index_line(shard, line, offset, len(line))
                offset += len(line)
            shard.scanned = offset
        except OSError as exc:
            self._count_io_error(shard.path, exc)
            return
        if heal and shard.scanned > 0:
            self._write_index(shard)

    def _write_index(self, shard: _Shard) -> bool:
        """Atomically snapshot the shard's in-memory index to its sidecar.

        Taken under the shard ``flock`` so concurrent appenders (which
        extend both files under the same lock) never interleave with
        the replace.  The commit claims exactly what this process has
        scanned; a full-coverage commit also pins the shard mtime so a
        later same-size replacement is detectable.  Best-effort: an
        I/O failure is counted, never raised -- the sidecar is a pure
        accelerator.
        """
        path = self._index_path(shard)
        try:
            with shard.path.open("rb") as lock_handle:
                if fcntl is not None:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                try:
                    stat = os.fstat(lock_handle.fileno())
                    lines = [json.dumps({"format": INDEX_FORMAT})]
                    for key, (offset, length) in shard.offsets.items():
                        lines.append(
                            json.dumps(
                                [key, offset, length], separators=(",", ":")
                            )
                        )
                    commit: dict = {"commit": [0, shard.scanned]}
                    if shard.scanned == stat.st_size:
                        commit["mtime_ns"] = stat.st_mtime_ns
                    lines.append(json.dumps(commit, separators=(",", ":")))
                    temp = path.with_name(path.name + ".tmp")
                    temp.write_bytes(
                        b"\n".join(line.encode() for line in lines) + b"\n"
                    )
                    os.replace(temp, path)
                finally:
                    if fcntl is not None:
                        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
        except OSError as exc:
            self._count_io_error(path, exc)
            return False
        self.index_rebuilds += 1
        return True

    def _append_index(
        self, shard: _Shard, base: int, rendered: list[tuple[str, int]]
    ) -> None:
        """Append one batch's entry block + commit to the sidecar.

        Called under the shard ``flock``, immediately after the data
        append it describes, so sidecar commits mirror data commits
        exactly.  A sidecar that would have to *begin* mid-shard (an
        old store's first append) is not created -- it could never
        satisfy the loader's contiguity-from-zero rule; the read-path
        heal snapshots the full index instead.  Best-effort on errors.
        """
        path = self._index_path(shard)
        exists = path.exists()
        if not exists and base > 0:
            return
        try:
            lines = []
            if not exists:
                lines.append(json.dumps({"format": INDEX_FORMAT}))
            offset = base
            for key, length in rendered:
                lines.append(
                    json.dumps([key, offset, length], separators=(",", ":"))
                )
                offset += length
            commit: dict = {"commit": [base, offset]}
            try:
                commit["mtime_ns"] = shard.path.stat().st_mtime_ns
            except OSError:
                pass
            lines.append(json.dumps(commit, separators=(",", ":")))
            with path.open("ab") as handle:
                handle.write(
                    b"\n".join(line.encode() for line in lines) + b"\n"
                )
            self.index_appends += 1
        except OSError as exc:
            self._count_io_error(path, exc)

    def _index_line(
        self, shard: _Shard, line: bytes, offset: int, length: int
    ) -> None:
        # Only the key is needed for the index; the payload is parsed
        # on ``get``.  Lines this store wrote (both generations render
        # with ``sort_keys``) open with a fixed prefix, so the key is a
        # slice -- no JSON parse per line while scanning a shard.
        # Foreign formatting falls back to a full parse; unparseable
        # lines are skipped (a miss at worst).
        if line.startswith(_KEY_PREFIX):
            end = line.find(b'"', len(_KEY_PREFIX))
            if end != -1:
                shard.offsets[line[len(_KEY_PREFIX) : end].decode()] = (
                    offset,
                    length,
                )
                return
        try:
            payload = json.loads(line)
            key = payload["key"]
        except (ValueError, KeyError, TypeError):
            self.corrupt_records += 1
            logger.warning(
                "skipping unreadable line in store shard %s @%d",
                shard.path,
                offset,
            )
            return
        shard.offsets[str(key)] = (offset, length)

    def _read_at(self, shard: _Shard, offset: int, length: int) -> bytes:
        handle = shard.reader()
        handle.seek(offset)
        return handle.read(length)

    # -- legacy per-cell-file layout -------------------------------------------

    def _legacy_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _legacy_get(self, key: str) -> Measurement | None:
        path = self._legacy_path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("format") != FORMAT:
                raise ValueError(
                    f"unknown store format {payload.get('format')!r}"
                )
            return Measurement.from_dict(payload["measurement"])
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._count_io_error(path, exc)
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self.corrupt_records += 1
            logger.warning(
                "discarding unreadable store entry %s: %s", path, exc
            )
            return None

    # -- public API -------------------------------------------------------------

    def get(self, key: str) -> Measurement | None:
        """The stored measurement for ``key``, or ``None`` on a miss.

        Unreadable, corrupt (checksum-mismatched) or format-mismatched
        entries are quarantined: counted in :meth:`fault_stats`, logged,
        and served as misses so the executor re-measures and overwrites
        them.  Thread-safe: concurrent readers serialize on the store
        lock (they share per-shard file handles).
        """
        with self._lock:
            return self._get(key)

    def _get(self, key: str) -> Measurement | None:
        shard = self._shard(key)
        location = shard.offsets.get(key)
        if location is None:
            # Another process may have appended since the last scan.
            self._refresh(shard)
            location = shard.offsets.get(key)
        if location is None:
            legacy = self._legacy_get(key)
            if legacy is not None:
                self.hits += 1
                return legacy
            self.misses += 1
            return None
        try:
            fault_plan = faults.active()
            if fault_plan is not None:
                fault_plan.maybe_io_error(f"get:{key}")
            raw = self._read_at(shard, *location)
        except OSError as exc:
            self._count_io_error(shard.path, exc)
            self.misses += 1
            return None
        try:
            # Parsing is inside the quarantine block: the key-slice
            # index never parsed this line, so it may be a crashed
            # writer's torn remnant.
            payload = json.loads(raw)
            if payload.get("format") != FORMAT:
                raise ValueError(
                    f"unknown store format {payload.get('format')!r}"
                )
            if payload.get("key") != key:
                # The shard was rewritten out from under a long-lived
                # index (external compaction/cleanup): never serve
                # whatever entry now occupies the stale offset.
                raise ValueError(
                    f"stale shard index: found {payload.get('key')!r}"
                )
            recorded = payload.get("sum")
            if recorded is not None and not _checksum_matches(
                key, recorded, raw, payload["measurement"]
            ):
                self.checksum_failures += 1
                logger.warning(
                    "quarantining corrupt store record %s[%s]: "
                    "checksum mismatch (re-measuring; run "
                    "`python -m repro store scrub` to repair the shard)",
                    shard.path,
                    key,
                )
                self.misses += 1
                return None
            measurement = Measurement.from_dict(payload["measurement"])
        except (ValueError, KeyError, TypeError) as exc:
            self.corrupt_records += 1
            logger.warning(
                "discarding unreadable store entry %s[%s]: %s",
                shard.path,
                key,
                exc,
            )
            self.misses += 1
            return None
        self.hits += 1
        return measurement

    def put(self, key: str, measurement: Measurement) -> None:
        """Persist one measurement under ``key``."""
        self.put_many([(key, measurement)])

    def put_many(
        self, entries: Sequence[tuple[str, Measurement]]
    ) -> None:
        """Persist a whole batch: one locked append per touched shard.

        The batch groups by shard, each shard's lines are rendered
        (checksummed) and written with a single ``write`` under an
        exclusive ``flock``, and the in-memory index is updated from
        the append position -- O(batch) work and O(shards-touched)
        syscall round trips, no matter how large the store already is.
        Raises ``OSError`` on I/O failure; the executors retry with
        bounded backoff (results are never lost to a failed append --
        at worst the cells re-measure next run).
        """
        with self._lock:
            self._put_many(entries)

    def _put_many(
        self, entries: Sequence[tuple[str, Measurement]]
    ) -> None:
        fault_plan = faults.active()
        by_shard: dict[str, list[tuple[str, Measurement]]] = {}
        for key, measurement in entries:
            by_shard.setdefault(key[:2], []).append((key, measurement))
        for name, batch in by_shard.items():
            shard = self._shard(batch[0][0])
            if fault_plan is not None:
                fault_plan.maybe_io_error(f"put:{name}")
            lines = []
            rendered = []
            for key, measurement in batch:
                payload_dict = measurement.to_dict()
                if fault_plan is not None and fault_plan.fire(
                    "corrupt", f"put:{key}"
                ):
                    # Tamper *after* the checksum is computed: the
                    # written record lies, and only the read-side
                    # verification can catch it.
                    digest = record_checksum(key, payload_dict)
                    payload_dict = dict(
                        payload_dict, mean_power=payload_dict["mean_power"] + 1.0
                    )
                    line = (
                        json.dumps(
                            {
                                "format": FORMAT,
                                "key": key,
                                "measurement": payload_dict,
                                "sum": digest,
                            },
                            sort_keys=True,
                        ).encode()
                        + b"\n"
                    )
                else:
                    line = render_record(key, payload_dict)
                lines.append(line)
                rendered.append((key, len(line)))
            payload = b"".join(lines)
            with shard.path.open("ab") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    # Repair a crashed writer's torn tail so our first
                    # line starts on a fresh line boundary.
                    end = handle.seek(0, os.SEEK_END)
                    if end > 0:
                        with shard.path.open("rb") as reader:
                            reader.seek(end - 1)
                            if reader.read(1) != b"\n":
                                handle.write(b"\n")
                                end += 1
                                self.torn_tails_repaired += 1
                                logger.warning(
                                    "repaired torn tail in store shard %s "
                                    "(a previous writer crashed mid-append)",
                                    shard.path,
                                )
                    if fault_plan is not None and fault_plan.fire(
                        "torn", f"put:{name}"
                    ):  # pragma: no cover - kills the process
                        # Simulate `kill -9` mid-write: half the payload
                        # lands, then the process is gone.
                        handle.write(payload[: max(1, len(payload) // 2)])
                        handle.flush()
                        logging.shutdown()
                        os._exit(109)
                    handle.write(payload)
                    handle.flush()
                    # The sidecar block lands under the same flock as
                    # the data it describes, so its commits mirror the
                    # shard byte-for-byte across processes.
                    self._append_index(shard, end, rendered)
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            offset = end
            for key, length in rendered:
                shard.offsets[key] = (offset, length)
                offset += length
            if shard.scanned == end:
                shard.scanned = offset

    # -- integrity audit / repair ----------------------------------------------

    def _shard_paths(self) -> list[Path]:
        return sorted(self.shard_dir.glob("??.jsonl"))

    def _write_scrub_index(self, path: Path, newest: dict[str, bytes]) -> None:
        """Fresh sidecar for a just-scrubbed shard (under the scrub flock)."""
        index_path = path.with_suffix(".idx")
        try:
            if not newest:
                index_path.unlink(missing_ok=True)
                return
            stat = path.stat()
            lines = [json.dumps({"format": INDEX_FORMAT})]
            offset = 0
            for key, line in newest.items():
                lines.append(
                    json.dumps([key, offset, len(line)], separators=(",", ":"))
                )
                offset += len(line)
            lines.append(
                json.dumps(
                    {"commit": [0, offset], "mtime_ns": stat.st_mtime_ns},
                    separators=(",", ":"),
                )
            )
            temp = index_path.with_name(index_path.name + ".tmp")
            temp.write_bytes(b"\n".join(line.encode() for line in lines) + b"\n")
            os.replace(temp, index_path)
            self.index_rebuilds += 1
        except OSError as exc:
            self._count_io_error(index_path, exc)

    def rebuild_index(self) -> int:
        """Force-rebuild every shard's sidecar from a full JSONL scan.

        Drops each shard's in-memory state, rescans the body (so the
        sidecar never launders a stale in-memory view) and snapshots
        the result.  Returns the number of sidecars written.  Exposed
        as ``python -m repro store index``.
        """
        rebuilt = 0
        with self._lock:
            for path in self._shard_paths():
                shard = self._shards.get(path.stem)
                if shard is None:
                    shard = self._shards[path.stem] = _Shard(path)
                shard.invalidate()
                shard.index_checked = True  # scan the JSONL, not the sidecar
                self._refresh(shard)
                if self._write_index(shard):
                    rebuilt += 1
        return rebuilt

    def verify(self) -> StoreReport:
        """Audit every shard without modifying anything.

        Counts parseable records, checksummed vs legacy lines, corrupt
        lines, checksum mismatches and torn (unterminated) tails; the
        report's :attr:`~StoreReport.ok` is the clean-store verdict.
        """
        report = StoreReport()
        keys: set[str] = set()
        for path in self._shard_paths():
            report.shards += 1
            try:
                data = path.read_bytes()
            except OSError as exc:
                self._count_io_error(path, exc)
                report.problems.append(f"{path.name}: unreadable ({exc})")
                continue
            lines = data.split(b"\n")
            torn = lines.pop() if lines and lines[-1] else None
            for number, raw in enumerate(lines):
                if not raw:
                    continue
                status, key, _payload = _classify_line(raw)
                if status == "corrupt":
                    report.corrupt_lines += 1
                    report.problems.append(
                        f"{path.name}:{number + 1}: unparseable record"
                    )
                    continue
                report.records += 1
                keys.add(key)
                if status == "legacy":
                    report.legacy_lines += 1
                elif status == "mismatch":
                    report.checksum_mismatches += 1
                    report.problems.append(
                        f"{path.name}:{number + 1}: checksum mismatch "
                        f"on {key}"
                    )
                else:
                    report.checksummed += 1
            if torn is not None:
                report.torn_tails += 1
                report.problems.append(
                    f"{path.name}: torn tail ({len(torn)} bytes, no "
                    "trailing newline)"
                )
            index_path = path.with_suffix(".idx")
            try:
                index_data = index_path.read_bytes()
            except FileNotFoundError:
                continue
            except OSError as exc:
                self._count_io_error(index_path, exc)
                report.problems.append(
                    f"{index_path.name}: unreadable sidecar ({exc})"
                )
                continue
            report.index_sidecars += 1
            try:
                stat = path.stat()
            except OSError:
                continue
            _offsets, covered = _parse_index(
                index_data, stat.st_size, stat.st_mtime_ns
            )
            if covered != stat.st_size:
                # Not corruption -- a lagging or distrusted sidecar
                # self-heals on the next read -- but worth surfacing.
                report.index_stale += 1
                report.problems.append(
                    f"{index_path.name}: sidecar covers {covered} of "
                    f"{stat.st_size} bytes (will rebuild on next read)"
                )
        report.legacy_files = sum(1 for _ in self.root.glob("??/*.json"))
        report.keys = len(keys)
        return report

    def scrub(self) -> StoreReport:
        """Repair and compact every shard in place.

        Each shard is rewritten -- under its exclusive ``flock``, via an
        atomic replace -- keeping only the newest *valid* record per
        key: corrupt lines, checksum mismatches and torn tails are
        dropped (their cells simply re-measure next run), superseded
        duplicates are compacted away, and legacy pre-checksum lines
        are upgraded to checksummed ones.  Concurrent *readers* stay
        safe throughout (their stale offsets fail the key check and
        re-scan); do not scrub under concurrent writers.
        """
        report = StoreReport()
        keys: set[str] = set()
        for path in self._shard_paths():
            report.shards += 1
            try:
                with path.open("r+b") as handle:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                    try:
                        data = handle.read()
                        lines = data.split(b"\n")
                        torn = lines.pop() if lines and lines[-1] else None
                        newest: dict[str, bytes] = {}
                        for raw in lines:
                            if not raw:
                                continue
                            status, key, payload = _classify_line(raw)
                            if status in ("corrupt", "mismatch"):
                                report.dropped += 1
                                if status == "mismatch":
                                    report.checksum_mismatches += 1
                                else:
                                    report.corrupt_lines += 1
                                continue
                            report.records += 1
                            if key in newest:
                                report.compacted += 1
                            if status == "legacy":
                                report.legacy_lines += 1
                            # Upgrades legacy lines to checksummed form;
                            # already-checksummed lines re-render to the
                            # identical bytes.
                            newest[key] = render_record(
                                key, payload["measurement"]
                            )
                        if torn is not None:
                            report.torn_tails += 1
                            report.dropped += 1
                        replacement = b"".join(newest.values())
                        temp = path.with_name(path.name + ".scrub")
                        temp.write_bytes(replacement)
                        os.replace(temp, path)
                        self._write_scrub_index(path, newest)
                        keys.update(newest)
                        report.checksummed += len(newest)
                    finally:
                        if fcntl is not None:
                            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError as exc:
                self._count_io_error(path, exc)
                report.problems.append(f"{path.name}: unreadable ({exc})")
                continue
            # The rewritten shard invalidates this process's offsets
            # and cached read handle; the next lookup rescans.
            with self._lock:
                stale = self._shards.pop(path.stem, None)
                if stale is not None:
                    stale.invalidate()
        report.legacy_files = sum(1 for _ in self.root.glob("??/*.json"))
        report.keys = len(keys)
        return report

    # -- enumeration -----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        with self._lock:
            shard = self._shard(key)
            if key not in shard.offsets:
                self._refresh(shard)
            return key in shard.offsets or self._legacy_path(key).exists()

    def _all_keys(self) -> set[str]:
        with self._lock:
            for path in self.shard_dir.glob("??.jsonl"):
                shard = self._shard(path.stem + "00")
                self._refresh(shard)
            keys = {
                key
                for shard in self._shards.values()
                for key in shard.offsets
            }
            keys.update(path.stem for path in self.root.glob("??/*.json"))
            return keys

    def __len__(self) -> int:
        return len(self._all_keys())

    def keys(self) -> list[str]:
        """All stored cell keys (sharded and legacy layouts)."""
        return sorted(self._all_keys())

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"
