"""Plan executors: serial, and sharded across worker processes.

Both executors take an :class:`~repro.exec.plan.ExperimentPlan` and
return measurements in the plan's requested order.  The contract that
makes them interchangeable is *bit-identity*: every measurement is a
deterministic pure function of the architecture definition, the
machine seed and the cell content (sensor noise is seeded from stable
content digests, never from run order or wall clock), so sharding
cells across processes and reassembling in plan order reproduces the
serial byte stream exactly.  That same purity is what makes the fault
tolerance below sound: a retried, re-sharded or degraded-to-serial
cell reproduces the fault-free bytes, so recovery never perturbs
results.

Batching: within a shard, cells are grouped by (configuration, window)
and driven through :meth:`Machine.run_many`, so every distinct kernel
is summarized once per worker regardless of how many cells carry it.

With a :class:`~repro.exec.store.ResultStore` attached, warm cells are
served from disk and only the misses are measured; a fully warm plan
never touches ``Machine.run`` at all.  Store-backed executions also
write a per-run :class:`~repro.exec.journal.RunJournal` next to the
store, so an interrupted campaign (``kill -9`` mid-batch) is visible
as such and resumes measuring only its unfinished cells.

Fault tolerance (long unattended campaigns treat partial failure as
the normal case):

* every parallel chunk has a deadline (``REPRO_TIMEOUT`` seconds); a
  watchdog polls for expired chunks *and* dead worker processes, and
  either condition tears down and respawns the pool, then resubmits
  the lost chunks;
* failures retry with bounded, deterministic exponential backoff
  (``REPRO_RETRIES``, default 2);
* a chunk that exhausts its retries re-executes *in-process, cell by
  cell* (degraded mode) -- and only a cell that still fails there is
  quarantined into a :class:`~repro.exec.report.CellFailure` instead
  of aborting the campaign;
* store appends retry the same way; an abandoned append costs a warm
  cell next run, never a result this run.

:meth:`~_ExecutorBase.execute` returns the full
:class:`~repro.exec.report.ExecutionReport` (measurements + failures +
fault counters); :meth:`~_ExecutorBase.run` is the historical
list-returning convenience, raising
:class:`~repro.errors.ExecutionError` if anything was quarantined.
Every recovery path is exercised deterministically in the test suite
via :mod:`repro.exec.faults` (the ``REPRO_FAULTS`` knob).
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import signal
import time
import weakref
from collections.abc import Sequence

from repro.errors import MicroProbeError, UnknownArchitectureError
from repro.exec import faults
from repro.exec.journal import RunJournal, run_id
from repro.exec.plan import ExperimentPlan, PlanCell
from repro.exec.report import ExecutionReport, ReportBuilder
from repro.exec.store import ResultStore
from repro.measure.measurement import Measurement
from repro.sim.machine import Machine
from repro.sim.topology import ChipTopology

logger = logging.getLogger("repro.exec")

#: Shards per worker: small enough to amortize per-chunk dispatch,
#: large enough that an uneven chunk doesn't idle the pool tail.
_CHUNKS_PER_WORKER = 4

#: Default bounded-retry budget per chunk/cell (``REPRO_RETRIES``).
DEFAULT_RETRIES = 2
#: Default per-chunk watchdog deadline, seconds (``REPRO_TIMEOUT``).
DEFAULT_TIMEOUT_S = 300.0

#: Deterministic exponential backoff: base * 2**attempt, capped.  No
#: jitter -- retried runs must stay reproducible, and nothing here
#: contends on a shared remote resource that jitter would protect.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0
#: Watchdog poll cadence while chunks are in flight.
_POLL_INTERVAL_S = 0.02


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, ""))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, ""))
    except ValueError:
        return default


def _backoff_sleep(attempt: int) -> None:
    time.sleep(min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2.0 ** attempt)))


def _group_cells(cells: Sequence[PlanCell]) -> dict[tuple, list[int]]:
    """Indices of ``cells`` grouped per measurement batch, first-seen order.

    Keyed by label as well as configuration: configuration equality
    ignores the p-state *name*, but the label seeds sensor noise, so
    same-scale differently-named operating points must run as separate
    batches.  One definition shared by the serial path and the parallel
    shard ordering, so the two executors can never batch differently.
    """
    groups: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault(
            (cell.config, cell.config.label, cell.duration), []
        ).append(index)
    return groups


def _measure_on(
    machine: Machine,
    cells: Sequence[PlanCell],
    persist=None,
    plan: ExperimentPlan | None = None,
) -> list[Measurement]:
    """Measure ``cells`` on ``machine``, grouped by configuration.

    Without a ``persist`` callback the whole shard evaluates as one
    :meth:`Machine.run_cells` batch, so the vectorized measurement
    plane sees every configuration of the shard in a single tensor
    pass; with ``plan`` given (the whole plan is being measured cold,
    in plan-cell order), the plane additionally compiles and caches a
    fused tensor program under the plan, so re-executions skip
    compilation entirely.  With ``persist(cells, measurements)`` --
    called after each configuration group so progress stays durable
    mid-campaign -- the shard evaluates group by group through
    ``run_many``; grouping preserves first-seen configuration order
    either way, and the output list is in ``cells`` order.
    """
    fault_plan = faults.active()
    if fault_plan is not None and fault_plan.wants("poison"):
        for cell in cells:
            fault_plan.maybe_poison(faults.cell_key(cell))
    if persist is None:
        return machine.run_cells(cells, plan=plan)
    out: list[Measurement | None] = [None] * len(cells)
    for (config, label, duration), indices in _group_cells(cells).items():
        if fault_plan is not None and fault_plan.wants("slow"):
            fault_plan.maybe_slow(f"batch:{label}:{duration}")
        measurements = machine.run_many(
            [cells[index].workload for index in indices], config, duration
        )
        for index, measurement in zip(indices, measurements):
            out[index] = measurement
        persist(
            [cells[index] for index in indices], measurements
        )
    return out  # type: ignore[return-value]


def _degraded_cells(
    machine: Machine,
    cells: Sequence[PlanCell],
    persist,
    builder: ReportBuilder,
    retries: int,
    key_of=None,
) -> list[Measurement | None]:
    """Last-resort serial re-execution, one cell at a time.

    Each cell gets its own bounded retry budget; a cell that still
    fails is quarantined into a CellFailure (``None`` in the result
    slot) instead of poisoning its whole batch.  Measurement is pure,
    so cells that *do* succeed here are bit-identical to a fault-free
    run.
    """
    builder.count("degraded_cells", len(cells))
    out: list[Measurement | None] = []
    for cell in cells:
        measurement: Measurement | None = None
        attempt = 0
        while True:
            try:
                measurement = _measure_on(machine, [cell], None)[0]
                break
            except Exception as exc:
                if attempt >= retries:
                    failure = builder.quarantine(
                        cell,
                        attempt + 1,
                        exc,
                        key_of(cell) if key_of is not None else None,
                    )
                    logger.error(
                        "quarantining cell %s on %s after %d attempts: "
                        "%s: %s",
                        failure.workload_name,
                        failure.config_label,
                        failure.attempts,
                        failure.kind,
                        failure.message,
                    )
                    break
                builder.count("retries")
                _backoff_sleep(attempt)
                attempt += 1
        if measurement is not None and persist is not None:
            persist([cell], [measurement])
        out.append(measurement)
    return out


class _ExecutorBase:
    """Shared store/plan/fault-handling plumbing of the executors."""

    def __init__(
        self,
        machine: Machine,
        store: ResultStore | None = None,
        retries: int | None = None,
        timeout: float | None = None,
    ) -> None:
        self.machine = machine
        self.store = store
        #: Bounded retry budget (chunks, degraded cells, store appends).
        self.retries = (
            retries
            if retries is not None
            else _env_int("REPRO_RETRIES", DEFAULT_RETRIES)
        )
        #: Per-chunk watchdog deadline, seconds.
        self.timeout = (
            timeout
            if timeout is not None
            else _env_float("REPRO_TIMEOUT", DEFAULT_TIMEOUT_S)
        )
        #: The last execution's report (also returned by execute()).
        self.last_report: ExecutionReport | None = None
        # (arch object, digest) memo: rendering the digest costs
        # ~1.5 ms, which would dominate warm single-cell plans
        # (per-point DSE loops) if recomputed per run.  The memo holds
        # the architecture object itself (identity via ``is``, never a
        # bare ``id()`` that a recycled allocation could collide with).
        # Swapping in a different architecture object re-digests;
        # mutating one *in place* while reusing an executor does not --
        # build a fresh architecture (``get_architecture`` always
        # returns one) for definition edits, as the bootstrap's epi
        # write-backs (excluded from the digest by design) are the only
        # sanctioned in-place mutation.
        self._arch_digest_memo = None
        self._arch_digest = 0
        # Cluster-class definition digests (topology cell keys), by
        # class name.  Cluster classes resolve through the registry --
        # freshly parsed, never mutated in place -- so one digest per
        # class per executor lifetime is sound; the *base* class rides
        # the per-object memo above instead.
        self._cluster_digest_memo: dict[str, int] = {}

    def _refresh_arch_digest(self) -> None:
        arch = self.machine.arch
        memo = self._arch_digest_memo
        if memo is None or memo[0] is not arch:
            self._arch_digest_memo = (arch, arch.content_digest())
        self._arch_digest = self._arch_digest_memo[1]

    def _cluster_digests(self, topology) -> dict:
        """Per-class definition digests a topology cell's key folds in."""
        digests: dict = {}
        for cluster in topology.clusters:
            core_class = cluster.core_class
            if self.machine._class_key(core_class) is None:
                digests[core_class] = self._arch_digest
                continue
            found = self._cluster_digest_memo.get(core_class)
            if found is None:
                found = self.machine.cluster_arch(
                    core_class
                ).content_digest()
                self._cluster_digest_memo[core_class] = found
            digests[core_class] = found
        return digests

    def _key(self, cell: PlanCell) -> str:
        cluster_digests = (
            self._cluster_digests(cell.config)
            if isinstance(cell.config, ChipTopology)
            else None
        )
        return cell.key(
            self.machine.arch.name,
            self.machine.seed,
            self._arch_digest,
            cluster_digests,
        )

    def key_of(self, cell: PlanCell) -> str:
        """The content-addressed store key of ``cell`` on this machine.

        The public spelling of the key the executor persists and the
        store serves -- the campaign service uses it for its
        single-flight dedup registry, so service-side identity can
        never drift from store identity.
        """
        self._refresh_arch_digest()
        return self._key(cell)

    def run(self, plan: ExperimentPlan) -> list[Measurement]:
        """Execute the plan; measurements in requested order.

        The historical list-returning contract: raises
        :class:`~repro.errors.ExecutionError` (carrying the full
        :class:`~repro.exec.report.ExecutionReport`) if any cell was
        quarantined after retries and the degraded fallback.  Callers
        that want partial results use :meth:`execute` directly.
        """
        return self.execute(plan).require_complete()

    def execute(self, plan: ExperimentPlan, progress=None) -> ExecutionReport:
        """Execute the plan; the full structured outcome.

        The plan's configurations are validated against the machine
        up front (:meth:`ExperimentPlan.validate_against`), so an
        infeasible sweep raises ``PlanValidationError`` before any
        cell is measured or served from the store.  With a store
        attached, a per-run journal is written next to it; re-running
        an interrupted campaign resumes measuring only the cells the
        store does not already hold.

        ``progress``, if given, is called as ``progress(cells,
        measurements, warm)`` whenever a batch of unique cells lands:
        once with ``warm=True`` for the store-served cells (if any),
        then per measured batch with ``warm=False`` as results arrive
        -- the streaming hook the campaign service fans results out on.
        Quarantined cells never reach ``progress``; they surface in the
        returned report's failures.  Note that a ``progress`` callback
        forces per-batch evaluation on store-less plans (the same
        granularity a store's persistence cadence imposes anyway).
        """
        plan.validate_against(self.machine)
        cells = plan.cells
        builder = ReportBuilder()
        results: list[Measurement | None] = [None] * len(cells)
        journal: RunJournal | None = None
        persist = None
        store_faults_before: dict[str, int] = {}
        if self.store is None:
            misses = list(range(len(cells)))
        else:
            store_faults_before = dict(self.store.fault_stats())
            # Cell keys must reflect the architecture definition *as
            # measured*; the digest is memoized per architecture object
            # (see __init__) so warm single-cell runs stay cheap.
            self._refresh_arch_digest()
            keys = [self._key(cell) for cell in cells]
            journal = RunJournal(self.store.root, run_id(keys))
            journal.start(len(cells), plan.describe())
            misses = []
            for index, cell in enumerate(cells):
                found = self.store.get(keys[index])
                if found is None:
                    misses.append(index)
                else:
                    results[index] = found
            logger.info(
                "plan %s: %d warm from %s, %d to measure",
                plan.describe(),
                len(cells) - len(misses),
                self.store,
                len(misses),
            )

            def persist(batch_cells, batch_measurements):
                self._persist(batch_cells, batch_measurements, journal, builder)

        if progress is not None:
            warm_indices = [
                index for index in range(len(cells)) if index not in set(misses)
            ]
            if warm_indices:
                progress(
                    [cells[index] for index in warm_indices],
                    [results[index] for index in warm_indices],
                    True,
                )
            store_persist = persist

            def persist(batch_cells, batch_measurements):
                if store_persist is not None:
                    store_persist(batch_cells, batch_measurements)
                progress(batch_cells, batch_measurements, False)

        if misses:
            # Persistence happens inside _measure_cells (per batch /
            # per chunk), so an interrupted campaign keeps everything
            # measured so far; re-runs resume from the store.  Without
            # a store there is nothing to persist, and passing no
            # callback lets the measurement plane evaluate the whole
            # miss set as one tensor pass.  A fully cold store-less
            # run measures the plan's own cell list verbatim, so the
            # plan rides along as the vector plane's program-cache
            # key: repeated executions of the same plan object jump
            # straight to the compiled fused program.
            plan_hint = (
                plan if persist is None and len(misses) == len(cells) else None
            )
            measured = self._measure_cells(
                [cells[index] for index in misses], persist, builder,
                plan=plan_hint,
            )
            for index, measurement in zip(misses, measured):
                results[index] = measurement
        if self.store is not None:
            for name, value in self.store.fault_stats().items():
                delta = value - store_faults_before.get(name, 0)
                builder.count(f"store_{name}", delta)
        if journal is not None:
            journal.mark_quarantined(builder.failures)
            journal.complete(
                sum(1 for index in misses if results[index] is not None),
                builder.counters,
            )
        report = builder.build(plan.expand(results))
        self.last_report = report
        if not report.ok:
            logger.error("plan finished degraded: %s", report.describe())
        elif report.fault_counters:
            logger.warning(
                "plan finished after recovery: %s", report.describe()
            )
        return report

    def _persist(
        self,
        cells: Sequence[PlanCell],
        measurements: Sequence[Measurement],
        journal: RunJournal | None = None,
        builder: ReportBuilder | None = None,
    ) -> None:
        """Persist one measured batch, one locked write per touched shard.

        Each shard group carries its own bounded ``OSError`` retry
        budget (a transient fault on one shard must not starve the
        others), and already-appended groups are never re-written by a
        later group's retry.  A group abandoned after the budget is
        logged and counted, never raised -- the measurements are
        already in memory and at worst re-measure next run.
        """
        if self.store is None:
            return
        by_shard: dict[str, list[tuple[str, Measurement]]] = {}
        for cell, measurement in zip(cells, measurements):
            key = self._key(cell)
            by_shard.setdefault(key[:2], []).append((key, measurement))
        landed: list[str] = []
        for name, entries in by_shard.items():
            attempt = 0
            while True:
                try:
                    self.store.put_many(entries)
                    landed.extend(key for key, _ in entries)
                    break
                except OSError as exc:
                    if attempt >= self.retries:
                        if builder is not None:
                            builder.count("store_put_failures")
                        logger.warning(
                            "abandoning store append of %d cell(s) to "
                            "shard %s after %d attempts (%s); results "
                            "kept in memory, cells will re-measure "
                            "next run",
                            len(entries),
                            name,
                            attempt + 1,
                            exc,
                        )
                        break
                    if builder is not None:
                        builder.count("store_put_retries")
                    _backoff_sleep(attempt)
                    attempt += 1
        if journal is not None and landed:
            journal.mark_done(landed)

    def _key_of(self):
        """Per-cell store-key function for failure records (or None)."""
        return self._key if self.store is not None else None

    def _measure_inprocess(
        self,
        cells: Sequence[PlanCell],
        persist,
        builder: ReportBuilder,
        plan: ExperimentPlan | None = None,
    ) -> list[Measurement | None]:
        """In-process measurement with per-cell degraded fallback."""
        try:
            return _measure_on(self.machine, cells, persist, plan=plan)
        except Exception as exc:
            builder.count("batch_failures")
            logger.warning(
                "batch of %d cells failed in-process (%s: %s); "
                "re-executing cell by cell",
                len(cells),
                type(exc).__name__,
                exc,
            )
            return _degraded_cells(
                self.machine,
                cells,
                persist,
                builder,
                self.retries,
                self._key_of(),
            )

    def _measure_cells(
        self,
        cells: Sequence[PlanCell],
        persist,
        builder: ReportBuilder,
        plan: ExperimentPlan | None = None,
    ) -> list[Measurement | None]:
        raise NotImplementedError


class SerialExecutor(_ExecutorBase):
    """In-process execution, batched per configuration."""

    def _measure_cells(
        self,
        cells: Sequence[PlanCell],
        persist,
        builder: ReportBuilder,
        plan: ExperimentPlan | None = None,
    ) -> list[Measurement | None]:
        logger.info("serial: measuring %d cells", len(cells))
        return self._measure_inprocess(cells, persist, builder, plan=plan)


# -- worker-process plumbing ---------------------------------------------------

_WORKER_MACHINE: Machine | None = None


def _init_worker(arch_name: str, seed: int, vector: bool) -> None:
    """Build this worker's machine from the architecture registry.

    Measurements depend only on the (deterministically parsed)
    architecture definition and the seed, so a registry rebuild is
    substrate-identical to the parent's machine; worker caches start
    cold and warm up over the shard.  The parent's vector-plane flag
    is carried over so an explicitly scalar machine stays scalar in
    every worker (the paths are bit-identical, but a user debugging or
    benchmarking one of them must get the one they asked for).

    SIGINT is ignored: Ctrl-C on a parallel campaign is delivered to
    the whole foreground process *group*, and workers that die on it
    spew per-worker tracebacks and can deadlock pool shutdown.  The
    parent alone handles the interrupt and tears the pool down
    cleanly (pool terminate sends SIGTERM, which workers still honor).
    """
    global _WORKER_MACHINE
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.march.definition import get_architecture

    _WORKER_MACHINE = Machine(get_architecture(arch_name), seed, vector=vector)


def _run_chunk(payload) -> list[Measurement]:
    """Worker entry: measure one chunk (shipped with its attempt number).

    The attempt number exists purely for deterministic fault injection
    -- transient faults fire on early attempts and stop, so retried
    chunks succeed reproducibly.
    """
    cells, attempt = payload
    assert _WORKER_MACHINE is not None, "worker initializer did not run"
    fault_plan = faults.active()
    if fault_plan is not None:
        key = faults.chunk_key(cells)
        fault_plan.maybe_crash(key, attempt)
        fault_plan.maybe_hang(key, attempt)
        fault_plan.maybe_slow(key)
    return _measure_on(_WORKER_MACHINE, cells)


def _shutdown_pool(pool) -> None:
    """Finalizer target: release a worker pool's processes."""
    pool.terminate()
    pool.join()


class ParallelExecutor(_ExecutorBase):
    """Multiprocessing execution: plan cells sharded across workers.

    Bit-identical to :class:`SerialExecutor` -- same counters, same
    powers, same noise draws -- because nothing in a measurement
    depends on *where* or *in what order* it ran.  Cells are ordered
    configuration-major before sharding so chunks batch well, shipped
    to a worker pool, and reassembled in plan order.

    Fault tolerance: every chunk carries a deadline
    (``timeout``/``REPRO_TIMEOUT``), and a watchdog polls in-flight
    chunks for expiry and the pool for dead worker processes.  Either
    signal tears the pool down, respawns it, and resubmits every chunk
    whose result had not landed (their attempt counts advance; an
    innocent chunk caught in a respawn re-measures to bit-identical
    results, so collateral retries cost time, never correctness).
    After ``retries`` failed attempts a chunk drops to degraded
    in-process execution, where only individually failing cells are
    quarantined.

    Workers rebuild their machines from the architecture registry by
    name, which is only sound if the registry's definition content
    matches this machine's architecture -- verified by comparing
    :meth:`~repro.march.definition.MicroArchitecture.content_digest`.
    Execution falls back in-process when the digests differ (a
    customized architecture), when the architecture is not registered
    at all, when only one worker is requested, or when the shard would
    be trivial.

    The worker pool persists across ``run()`` calls, so repeated plans
    (GA generations, DSE batches) reuse warm worker-side summary
    caches; call :meth:`close` (or use the executor as a context
    manager) to release the processes early.
    """

    def __init__(
        self,
        machine: Machine,
        workers: int | None = None,
        store: ResultStore | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
        retries: int | None = None,
        timeout: float | None = None,
    ) -> None:
        super().__init__(machine, store, retries=retries, timeout=timeout)
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.start_method = start_method
        self._pool = None
        self._pool_finalizer = None
        self._worker_pids: set[int] = set()
        # (parent arch digest, verdict) of the last rebuild probe.
        self._rebuild_probe: tuple[int, bool] | None = None
        # Per-cluster-class rebuild verdicts (topology plans).
        self._cluster_probe: dict[str, bool] = {}

    def _resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        available = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in available else "spawn"

    def _workers_can_rebuild(self) -> bool:
        """Whether a registry rebuild reproduces this machine's arch.

        Probed by content digest -- through the base class's
        per-architecture-object memo, so steady-state parallel runs pay
        no digest rendering -- and memoized against the digest value,
        so swapping in an edited architecture re-probes the registry.
        """
        from repro.march.definition import get_architecture

        self._refresh_arch_digest()
        mine = self._arch_digest
        if self._rebuild_probe is not None and self._rebuild_probe[0] == mine:
            return self._rebuild_probe[1]
        try:
            registry = get_architecture(self.machine.arch.name)
            sound = registry.content_digest() == mine
        except UnknownArchitectureError:
            sound = False
        self._rebuild_probe = (mine, sound)
        return sound

    def _workers_can_rebuild_clusters(self, cells: Sequence[PlanCell]) -> bool:
        """Whether workers can rebuild every cluster class ``cells`` use.

        Workers resolve topology cluster classes lazily through the
        architecture registry, so a user-supplied class the registry
        cannot reproduce -- unregistered, or resolved then mutated in
        place on this machine -- would only surface *inside* a worker,
        as chunk failures degrading to in-process retries.  Probing the
        digests up front turns that silent degradation into one clear
        fallback decision (and a log line naming the class).  Verdicts
        memoize per class name: cluster classes resolve through the
        registry and are never sanctioned for in-place mutation, so one
        probe per executor lifetime is sound.
        """
        from repro.march.definition import get_architecture

        for cell in cells:
            if not isinstance(cell.config, ChipTopology):
                continue
            for cluster in cell.config.clusters:
                core_class = cluster.core_class
                if self.machine._class_key(core_class) is None:
                    continue  # the base class rides _workers_can_rebuild
                sound = self._cluster_probe.get(core_class)
                if sound is None:
                    try:
                        sound = (
                            get_architecture(core_class).content_digest()
                            == self.machine.cluster_arch(
                                core_class
                            ).content_digest()
                        )
                    except MicroProbeError:
                        sound = False
                    self._cluster_probe[core_class] = sound
                if not sound:
                    logger.warning(
                        "cluster core class %r cannot be rebuilt from "
                        "the registry (unregistered, or customized away "
                        "from the bundled definition); falling back to "
                        "in-process execution to preserve bit-identity",
                        core_class,
                    )
                    return False
        return True

    # -- pool lifecycle -------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self._resolve_start_method())
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.machine.arch.name,
                    self.machine.seed,
                    self.machine.vector_enabled,
                ),
            )
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
            self._worker_pids = {
                process.pid
                for process in getattr(self._pool, "_pool", ())
                if process.pid is not None
            }
        return self._pool

    def close(self) -> None:
        """Release the worker pool (recreated lazily on the next run)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()
            self._pool_finalizer = None
        self._pool = None
        self._worker_pids = set()

    def _dead_workers(self) -> int:
        """Dead worker processes detected in the current pool.

        Counts workers with an exit code *and* PID drift against the
        pool's creation-time set: ``multiprocessing.Pool`` quietly
        repopulates dead workers (losing their in-flight task forever),
        so a replaced PID is the footprint of a death the exit-code
        check can miss.
        """
        processes = list(getattr(self._pool, "_pool", ()))
        if not processes:
            return 0
        exited = sum(
            1 for process in processes if process.exitcode is not None
        )
        if exited:
            return exited
        current = {
            process.pid for process in processes if process.pid is not None
        }
        return len(current - self._worker_pids)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ------------------------------------------------------------

    def _measure_cells(
        self,
        cells: Sequence[PlanCell],
        persist,
        builder: ReportBuilder,
        plan: ExperimentPlan | None = None,
    ) -> list[Measurement | None]:
        workers = min(self.workers, len(cells))
        if workers <= 1:
            logger.info(
                "parallel: shard too small, measuring %d cells in-process",
                len(cells),
            )
            return self._measure_inprocess(cells, persist, builder, plan=plan)
        if not self._workers_can_rebuild():
            logger.warning(
                "architecture %r cannot be rebuilt from the registry "
                "(unregistered, or customized away from the bundled "
                "definition); falling back to in-process execution to "
                "preserve bit-identity",
                self.machine.arch.name,
            )
            return self._measure_inprocess(cells, persist, builder, plan=plan)
        if not self._workers_can_rebuild_clusters(cells):
            # _workers_can_rebuild_clusters already logged which class.
            return self._measure_inprocess(cells, persist, builder, plan=plan)

        # Configuration-major ordering keeps each chunk's run_many
        # batches large; the index map restores cell order afterwards.
        ordered_indices = [
            index
            for indices in _group_cells(cells).values()
            for index in indices
        ]
        ordered_cells = [cells[index] for index in ordered_indices]

        chunk_size = self.chunk_size or max(
            1, math.ceil(len(ordered_cells) / (workers * _CHUNKS_PER_WORKER))
        )
        chunks = [
            ordered_cells[start : start + chunk_size]
            for start in range(0, len(ordered_cells), chunk_size)
        ]
        logger.info(
            "parallel: %d cells in %d chunks across %d workers (%s), "
            "%.0fs chunk deadline, %d retries",
            len(cells),
            len(chunks),
            workers,
            self._resolve_start_method(),
            self.timeout,
            self.retries,
        )
        completed = self._drive_chunks(chunks, persist, builder)
        flat = [
            measurement
            for number in range(len(chunks))
            for measurement in completed[number]
        ]
        out: list[Measurement | None] = [None] * len(cells)
        for index, measurement in zip(ordered_indices, flat):
            out[index] = measurement
        return out

    def _drive_chunks(
        self, chunks: list, persist, builder: ReportBuilder
    ) -> dict[int, list]:
        """Submit every chunk; harvest with watchdog-guarded deadlines.

        Returns chunk-index -> measurement list (``None`` entries for
        quarantined cells).  Chunks whose retry budget is exhausted are
        re-executed in degraded in-process mode at the end.
        """
        pool = self._ensure_pool()
        attempts = [0] * len(chunks)
        inflight: dict[int, tuple] = {}
        completed: dict[int, list] = {}
        degraded: list[int] = []

        def submit(number: int) -> None:
            inflight[number] = (
                pool.apply_async(
                    _run_chunk, ((chunks[number], attempts[number]),)
                ),
                time.monotonic(),
            )

        def note_failure(number: int) -> bool:
            """Advance a chunk's attempt count; True if it may retry."""
            attempts[number] += 1
            if attempts[number] > self.retries:
                degraded.append(number)
                return False
            builder.count("retries")
            return True

        for number in range(len(chunks)):
            submit(number)
        while inflight:
            progressed = False
            for number in list(inflight):
                result, _submitted = inflight[number]
                if not result.ready():
                    continue
                del inflight[number]
                progressed = True
                try:
                    measurements = result.get()
                except Exception as exc:
                    # The worker survived but the chunk raised (e.g. a
                    # poisoned cell): retry the chunk alone -- no pool
                    # respawn -- then degrade it so the failure narrows
                    # to its cell.
                    builder.count("worker_errors")
                    logger.warning(
                        "parallel: chunk %d/%d raised in worker (%s: %s)",
                        number + 1,
                        len(chunks),
                        type(exc).__name__,
                        exc,
                    )
                    if note_failure(number):
                        _backoff_sleep(attempts[number] - 1)
                        submit(number)
                else:
                    if persist is not None:
                        # Per-chunk persistence: an interrupted campaign
                        # resumes from everything already returned, and
                        # each chunk lands as one batched store write.
                        persist(chunks[number], measurements)
                    completed[number] = measurements
                    logger.info(
                        "parallel: chunk %d/%d done (%d/%d chunks)",
                        number + 1,
                        len(chunks),
                        len(completed),
                        len(chunks),
                    )
            if not inflight or progressed:
                continue
            now = time.monotonic()
            dead = self._dead_workers()
            expired = [
                number
                for number, (result, submitted) in inflight.items()
                if now - submitted > self.timeout
            ]
            if not dead and not expired:
                time.sleep(_POLL_INTERVAL_S)
                continue
            # A dead or wedged worker poisons the whole pool: its
            # in-flight task is lost forever, and we cannot know which
            # chunk it held.  Tear everything down, respawn, and
            # resubmit every unharvested chunk with an advanced attempt
            # count (collateral retries of innocent chunks re-measure
            # to bit-identical results).
            builder.count("worker_deaths", dead)
            builder.count("chunk_timeouts", len(expired))
            builder.count("worker_respawns")
            logger.warning(
                "parallel: %s; respawning pool and resubmitting %d "
                "in-flight chunk(s)",
                " and ".join(
                    part
                    for part in (
                        f"{dead} dead worker(s)" if dead else "",
                        f"{len(expired)} chunk(s) past the {self.timeout:.0f}s "
                        "deadline"
                        if expired
                        else "",
                    )
                    if part
                ),
                len(inflight),
            )
            stale = sorted(inflight)
            inflight.clear()
            self.close()
            pool = self._ensure_pool()
            retryable = [number for number in stale if note_failure(number)]
            if retryable:
                _backoff_sleep(max(attempts[number] for number in retryable) - 1)
                for number in retryable:
                    submit(number)
        if degraded:
            logger.warning(
                "parallel: %d chunk(s) exhausted their %d retries; "
                "re-executing in-process (degraded mode)",
                len(degraded),
                self.retries,
            )
            for number in sorted(degraded):
                completed[number] = _degraded_cells(
                    self.machine,
                    chunks[number],
                    persist,
                    builder,
                    self.retries,
                    self._key_of(),
                )
        return completed


def default_executor(
    machine: Machine,
    parallel: int | None = None,
    store: ResultStore | str | None = None,
) -> _ExecutorBase:
    """The executor the environment asks for.

    ``REPRO_STORE`` (a directory path) attaches a persistent
    :class:`ResultStore`; ``REPRO_PARALLEL`` (a worker count > 1)
    selects the :class:`ParallelExecutor`.  ``REPRO_RETRIES`` and
    ``REPRO_TIMEOUT`` tune the fault-tolerance envelope either way.
    Explicit arguments win over the environment.  With neither, this
    is a plain :class:`SerialExecutor` -- the exact historical
    behaviour.
    """
    if store is None:
        store_dir = os.environ.get("REPRO_STORE")
        store = ResultStore(store_dir) if store_dir else None
    elif isinstance(store, (str, os.PathLike)):
        store = ResultStore(store)
    if parallel is None:
        try:
            parallel = int(os.environ.get("REPRO_PARALLEL", "0"))
        except ValueError:
            parallel = 0
    if parallel and parallel > 1:
        return ParallelExecutor(machine, workers=parallel, store=store)
    return SerialExecutor(machine, store=store)
