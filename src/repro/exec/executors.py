"""Plan executors: serial, and sharded across worker processes.

Both executors take an :class:`~repro.exec.plan.ExperimentPlan` and
return measurements in the plan's requested order.  The contract that
makes them interchangeable is *bit-identity*: every measurement is a
deterministic pure function of the architecture definition, the
machine seed and the cell content (sensor noise is seeded from stable
content digests, never from run order or wall clock), so sharding
cells across processes and reassembling in plan order reproduces the
serial byte stream exactly.

Batching: within a shard, cells are grouped by (configuration, window)
and driven through :meth:`Machine.run_many`, so every distinct kernel
is summarized once per worker regardless of how many cells carry it.

With a :class:`~repro.exec.store.ResultStore` attached, warm cells are
served from disk and only the misses are measured; a fully warm plan
never touches ``Machine.run`` at all.
"""

from __future__ import annotations

import logging
import math
import multiprocessing
import os
import weakref
from collections.abc import Sequence

from repro.errors import UnknownArchitectureError
from repro.exec.plan import ExperimentPlan, PlanCell
from repro.exec.store import ResultStore
from repro.measure.measurement import Measurement
from repro.sim.machine import Machine
from repro.sim.topology import ChipTopology

logger = logging.getLogger("repro.exec")

#: Shards per worker: small enough to amortize per-chunk dispatch,
#: large enough that an uneven chunk doesn't idle the pool tail.
_CHUNKS_PER_WORKER = 4


def _group_cells(cells: Sequence[PlanCell]) -> dict[tuple, list[int]]:
    """Indices of ``cells`` grouped per measurement batch, first-seen order.

    Keyed by label as well as configuration: configuration equality
    ignores the p-state *name*, but the label seeds sensor noise, so
    same-scale differently-named operating points must run as separate
    batches.  One definition shared by the serial path and the parallel
    shard ordering, so the two executors can never batch differently.
    """
    groups: dict[tuple, list[int]] = {}
    for index, cell in enumerate(cells):
        groups.setdefault(
            (cell.config, cell.config.label, cell.duration), []
        ).append(index)
    return groups


def _measure_on(
    machine: Machine,
    cells: Sequence[PlanCell],
    persist=None,
) -> list[Measurement]:
    """Measure ``cells`` on ``machine``, grouped by configuration.

    Without a ``persist`` callback the whole shard evaluates as one
    :meth:`Machine.run_cells` batch, so the vectorized measurement
    plane sees every configuration of the shard in a single tensor
    pass.  With ``persist(cells, measurements)`` -- called after each
    configuration group so progress stays durable mid-campaign -- the
    shard evaluates group by group through ``run_many``; grouping
    preserves first-seen configuration order either way, and the
    output list is in ``cells`` order.
    """
    if persist is None:
        return machine.run_cells(cells)
    out: list[Measurement | None] = [None] * len(cells)
    for (config, _label, duration), indices in _group_cells(cells).items():
        measurements = machine.run_many(
            [cells[index].workload for index in indices], config, duration
        )
        for index, measurement in zip(indices, measurements):
            out[index] = measurement
        persist(
            [cells[index] for index in indices], measurements
        )
    return out  # type: ignore[return-value]


class _ExecutorBase:
    """Shared store/plan plumbing of the executors."""

    def __init__(self, machine: Machine, store: ResultStore | None = None) -> None:
        self.machine = machine
        self.store = store
        # (arch object, digest) memo: rendering the digest costs
        # ~1.5 ms, which would dominate warm single-cell plans
        # (per-point DSE loops) if recomputed per run.  The memo holds
        # the architecture object itself (identity via ``is``, never a
        # bare ``id()`` that a recycled allocation could collide with).
        # Swapping in a different architecture object re-digests;
        # mutating one *in place* while reusing an executor does not --
        # build a fresh architecture (``get_architecture`` always
        # returns one) for definition edits, as the bootstrap's epi
        # write-backs (excluded from the digest by design) are the only
        # sanctioned in-place mutation.
        self._arch_digest_memo = None
        self._arch_digest = 0
        # Cluster-class definition digests (topology cell keys), by
        # class name.  Cluster classes resolve through the registry --
        # freshly parsed, never mutated in place -- so one digest per
        # class per executor lifetime is sound; the *base* class rides
        # the per-object memo above instead.
        self._cluster_digest_memo: dict[str, int] = {}

    def _refresh_arch_digest(self) -> None:
        arch = self.machine.arch
        memo = self._arch_digest_memo
        if memo is None or memo[0] is not arch:
            self._arch_digest_memo = (arch, arch.content_digest())
        self._arch_digest = self._arch_digest_memo[1]

    def _cluster_digests(self, topology) -> dict:
        """Per-class definition digests a topology cell's key folds in."""
        digests: dict = {}
        for cluster in topology.clusters:
            core_class = cluster.core_class
            if self.machine._class_key(core_class) is None:
                digests[core_class] = self._arch_digest
                continue
            found = self._cluster_digest_memo.get(core_class)
            if found is None:
                found = self.machine.cluster_arch(
                    core_class
                ).content_digest()
                self._cluster_digest_memo[core_class] = found
            digests[core_class] = found
        return digests

    def _key(self, cell: PlanCell) -> str:
        cluster_digests = (
            self._cluster_digests(cell.config)
            if isinstance(cell.config, ChipTopology)
            else None
        )
        return cell.key(
            self.machine.arch.name,
            self.machine.seed,
            self._arch_digest,
            cluster_digests,
        )

    def run(self, plan: ExperimentPlan) -> list[Measurement]:
        """Execute the plan; measurements in requested order.

        The plan's configurations are validated against the machine
        up front (:meth:`ExperimentPlan.validate_against`), so an
        infeasible sweep raises ``PlanValidationError`` before any
        cell is measured or served from the store.
        """
        plan.validate_against(self.machine)
        cells = plan.cells
        results: list[Measurement | None] = [None] * len(cells)
        if self.store is None:
            misses = list(range(len(cells)))
        else:
            # Cell keys must reflect the architecture definition *as
            # measured*; the digest is memoized per architecture object
            # (see __init__) so warm single-cell runs stay cheap.
            self._refresh_arch_digest()
            misses = []
            for index, cell in enumerate(cells):
                found = self.store.get(self._key(cell))
                if found is None:
                    misses.append(index)
                else:
                    results[index] = found
            logger.info(
                "plan %s: %d warm from %s, %d to measure",
                plan.describe(),
                len(cells) - len(misses),
                self.store,
                len(misses),
            )
        if misses:
            # Persistence happens inside _measure_cells (per batch /
            # per chunk), so an interrupted campaign keeps everything
            # measured so far; re-runs resume from the store.  Without
            # a store there is nothing to persist, and passing no
            # callback lets the measurement plane evaluate the whole
            # miss set as one tensor pass.
            measured = self._measure_cells(
                [cells[index] for index in misses],
                self._persist if self.store is not None else None,
            )
            for index, measurement in zip(misses, measured):
                results[index] = measurement
        return plan.expand(results)

    def _persist(
        self,
        cells: Sequence[PlanCell],
        measurements: Sequence[Measurement],
    ) -> None:
        """Persist one measured batch -- a single O(batch) store write."""
        if self.store is not None:
            self.store.put_many(
                [
                    (self._key(cell), measurement)
                    for cell, measurement in zip(cells, measurements)
                ]
            )

    def _measure_cells(
        self, cells: Sequence[PlanCell], persist=None
    ) -> list[Measurement]:
        raise NotImplementedError


class SerialExecutor(_ExecutorBase):
    """In-process execution, batched per configuration."""

    def _measure_cells(
        self, cells: Sequence[PlanCell], persist=None
    ) -> list[Measurement]:
        logger.info("serial: measuring %d cells", len(cells))
        return _measure_on(self.machine, cells, persist)


# -- worker-process plumbing ---------------------------------------------------

_WORKER_MACHINE: Machine | None = None


def _init_worker(arch_name: str, seed: int, vector: bool) -> None:
    """Build this worker's machine from the architecture registry.

    Measurements depend only on the (deterministically parsed)
    architecture definition and the seed, so a registry rebuild is
    substrate-identical to the parent's machine; worker caches start
    cold and warm up over the shard.  The parent's vector-plane flag
    is carried over so an explicitly scalar machine stays scalar in
    every worker (the paths are bit-identical, but a user debugging or
    benchmarking one of them must get the one they asked for).
    """
    global _WORKER_MACHINE
    from repro.march.definition import get_architecture

    _WORKER_MACHINE = Machine(get_architecture(arch_name), seed, vector=vector)


def _run_chunk(cells: Sequence[PlanCell]) -> list[Measurement]:
    assert _WORKER_MACHINE is not None, "worker initializer did not run"
    return _measure_on(_WORKER_MACHINE, cells)


def _shutdown_pool(pool) -> None:
    """Finalizer target: release a worker pool's processes."""
    pool.terminate()
    pool.join()


class ParallelExecutor(_ExecutorBase):
    """Multiprocessing execution: plan cells sharded across workers.

    Bit-identical to :class:`SerialExecutor` -- same counters, same
    powers, same noise draws -- because nothing in a measurement
    depends on *where* or *in what order* it ran.  Cells are ordered
    configuration-major before sharding so chunks batch well, shipped
    to a worker pool, and reassembled in plan order.

    Workers rebuild their machines from the architecture registry by
    name, which is only sound if the registry's definition content
    matches this machine's architecture -- verified by comparing
    :meth:`~repro.march.definition.MicroArchitecture.content_digest`.
    Execution falls back in-process when the digests differ (a
    customized architecture), when the architecture is not registered
    at all, when only one worker is requested, or when the shard would
    be trivial.

    The worker pool persists across ``run()`` calls, so repeated plans
    (GA generations, DSE batches) reuse warm worker-side summary
    caches; call :meth:`close` (or use the executor as a context
    manager) to release the processes early.
    """

    def __init__(
        self,
        machine: Machine,
        workers: int | None = None,
        store: ResultStore | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ) -> None:
        super().__init__(machine, store)
        self.workers = max(1, workers if workers is not None else os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.start_method = start_method
        self._pool = None
        self._pool_finalizer = None
        # (parent arch digest, verdict) of the last rebuild probe.
        self._rebuild_probe: tuple[int, bool] | None = None

    def _resolve_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        available = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in available else "spawn"

    def _workers_can_rebuild(self) -> bool:
        """Whether a registry rebuild reproduces this machine's arch.

        Probed by content digest -- through the base class's
        per-architecture-object memo, so steady-state parallel runs pay
        no digest rendering -- and memoized against the digest value,
        so swapping in an edited architecture re-probes the registry.
        """
        from repro.march.definition import get_architecture

        self._refresh_arch_digest()
        mine = self._arch_digest
        if self._rebuild_probe is not None and self._rebuild_probe[0] == mine:
            return self._rebuild_probe[1]
        try:
            registry = get_architecture(self.machine.arch.name)
            sound = registry.content_digest() == mine
        except UnknownArchitectureError:
            sound = False
        self._rebuild_probe = (mine, sound)
        return sound

    # -- pool lifecycle -------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self._resolve_start_method())
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.machine.arch.name,
                    self.machine.seed,
                    self.machine.vector_enabled,
                ),
            )
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def close(self) -> None:
        """Release the worker pool (recreated lazily on the next run)."""
        if self._pool_finalizer is not None:
            self._pool_finalizer()
            self._pool_finalizer = None
        self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _measure_cells(
        self, cells: Sequence[PlanCell], persist=None
    ) -> list[Measurement]:
        workers = min(self.workers, len(cells))
        if workers <= 1:
            logger.info("parallel: shard too small, measuring %d cells in-process", len(cells))
            return _measure_on(self.machine, cells, persist)
        if not self._workers_can_rebuild():
            logger.warning(
                "architecture %r cannot be rebuilt from the registry "
                "(unregistered, or customized away from the bundled "
                "definition); falling back to in-process execution to "
                "preserve bit-identity",
                self.machine.arch.name,
            )
            return _measure_on(self.machine, cells, persist)

        # Configuration-major ordering keeps each chunk's run_many
        # batches large; the index map restores cell order afterwards.
        ordered_indices = [
            index
            for indices in _group_cells(cells).values()
            for index in indices
        ]
        ordered_cells = [cells[index] for index in ordered_indices]

        chunk_size = self.chunk_size or max(
            1, math.ceil(len(ordered_cells) / (workers * _CHUNKS_PER_WORKER))
        )
        chunks = [
            ordered_cells[start : start + chunk_size]
            for start in range(0, len(ordered_cells), chunk_size)
        ]
        logger.info(
            "parallel: %d cells in %d chunks across %d workers (%s)",
            len(cells),
            len(chunks),
            workers,
            self._resolve_start_method(),
        )
        flat: list[Measurement] = []
        pool = self._ensure_pool()
        for number, chunk_result in enumerate(
            pool.imap(_run_chunk, chunks), start=1
        ):
            if persist is not None:
                # Per-chunk persistence: an interrupted campaign
                # resumes from everything already returned, and each
                # chunk lands as one batched store write.
                persist(chunks[number - 1], chunk_result)
            flat.extend(chunk_result)
            logger.info(
                "parallel: chunk %d/%d done (%d/%d cells)",
                number,
                len(chunks),
                len(flat),
                len(ordered_cells),
            )
        out: list[Measurement | None] = [None] * len(cells)
        for index, measurement in zip(ordered_indices, flat):
            out[index] = measurement
        return out  # type: ignore[return-value]


def default_executor(
    machine: Machine,
    parallel: int | None = None,
    store: ResultStore | str | None = None,
) -> _ExecutorBase:
    """The executor the environment asks for.

    ``REPRO_STORE`` (a directory path) attaches a persistent
    :class:`ResultStore`; ``REPRO_PARALLEL`` (a worker count > 1)
    selects the :class:`ParallelExecutor`.  Explicit arguments win over
    the environment.  With neither, this is a plain
    :class:`SerialExecutor` -- the exact historical behaviour.
    """
    if store is None:
        store_dir = os.environ.get("REPRO_STORE")
        store = ResultStore(store_dir) if store_dir else None
    elif isinstance(store, (str, os.PathLike)):
        store = ResultStore(store)
    if parallel is None:
        try:
            parallel = int(os.environ.get("REPRO_PARALLEL", "0"))
        except ValueError:
            parallel = 0
    if parallel and parallel > 1:
        return ParallelExecutor(machine, workers=parallel, store=store)
    return SerialExecutor(machine, store=store)
