"""Structured execution outcomes: measurements, failures, fault counters.

Executors never abort a campaign because one cell kept failing: after
bounded retries and the degraded in-process fallback, a failing cell is
*quarantined* into a :class:`CellFailure` and the campaign carries on.
:meth:`_ExecutorBase.execute` returns the full picture as an
:class:`ExecutionReport`; the list-returning ``run()`` convenience
keeps the historical contract by raising
:class:`~repro.errors.ExecutionError` (which carries the report) when
anything was quarantined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.measure.measurement import Measurement

#: Fault/recovery counter names an ExecutionReport may carry.  Zero
#: counters are omitted; anything here being non-zero means a recovery
#: path actually ran.
COUNTER_NAMES = (
    "retries",            # chunk/cell re-executions after a failure
    "worker_respawns",    # pool teardowns after a dead/hung worker
    "chunk_timeouts",     # per-chunk deadlines that expired
    "worker_deaths",      # dead worker processes detected
    "worker_errors",      # exceptions raised inside a worker
    "batch_failures",     # serial batches that fell back to per-cell
    "degraded_cells",     # cells re-executed serially in-process
    "store_put_retries",  # store appends retried after an OSError
    "store_put_failures", # store appends abandoned (results kept)
)


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: what failed, where, how hard we tried."""

    workload_name: str
    config_label: str
    duration: float
    attempts: int
    kind: str
    message: str
    key: str | None = None

    def to_dict(self) -> dict:
        return {
            "workload_name": self.workload_name,
            "config_label": self.config_label,
            "duration": self.duration,
            "attempts": self.attempts,
            "kind": self.kind,
            "message": self.message,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellFailure":
        return cls(
            workload_name=data["workload_name"],
            config_label=data["config_label"],
            duration=data["duration"],
            attempts=data["attempts"],
            kind=data["kind"],
            message=data["message"],
            key=data.get("key"),
        )


def describe_cell(cell, key: str | None = None) -> dict:
    """The CellFailure identity fields of one plan cell."""
    workload = cell.workload
    name = getattr(workload, "name", type(workload).__name__)
    return {
        "workload_name": name,
        "config_label": cell.config.label,
        "duration": cell.duration,
        "key": key,
    }


@dataclass(frozen=True)
class ExecutionReport:
    """Everything one plan execution produced.

    ``measurements`` is in the plan's *requested* order (duplicates
    fanned back out), with ``None`` in the slots of quarantined cells;
    ``failures`` carries one :class:`CellFailure` per quarantined
    unique cell; ``fault_counters`` counts every recovery path that ran
    (empty for a clean run).
    """

    measurements: tuple[Measurement | None, ...]
    failures: tuple[CellFailure, ...] = ()
    fault_counters: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every requested cell produced a measurement."""
        return not self.failures

    @property
    def completed(self) -> int:
        return sum(1 for m in self.measurements if m is not None)

    def require_complete(self) -> list[Measurement]:
        """The measurement list, raising if any cell was quarantined."""
        if self.failures:
            raise ExecutionError(self)
        return list(self.measurements)

    def __len__(self) -> int:
        return len(self.measurements)

    def __iter__(self):
        return iter(self.measurements)

    def describe(self) -> str:
        """One-line summary for logs and CLI output."""
        text = f"{self.completed}/{len(self.measurements)} cells measured"
        if self.failures:
            text += f", {len(self.failures)} quarantined"
        if self.fault_counters:
            counters = ", ".join(
                f"{name}={value}"
                for name, value in sorted(self.fault_counters.items())
            )
            text += f" [{counters}]"
        return text


class ReportBuilder:
    """Mutable failure/counter accumulator the executors thread through."""

    def __init__(self) -> None:
        self.failures: list[CellFailure] = []
        self.counters: dict[str, int] = {}

    def count(self, name: str, value: int = 1) -> None:
        if value:
            self.counters[name] = self.counters.get(name, 0) + value

    def quarantine(
        self, cell, attempts: int, error: BaseException, key: str | None = None
    ) -> CellFailure:
        failure = CellFailure(
            attempts=attempts,
            kind=type(error).__name__,
            message=str(error),
            **describe_cell(cell, key),
        )
        self.failures.append(failure)
        return failure

    def merge_counters(self, counters: dict) -> None:
        for name, value in counters.items():
            self.count(name, value)

    def build(self, measurements) -> ExecutionReport:
        return ExecutionReport(
            measurements=tuple(measurements),
            failures=tuple(self.failures),
            fault_counters=dict(self.counters),
        )
