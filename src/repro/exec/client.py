"""Client side of the campaign service: talk to ``python -m repro serve``.

Two layers:

* :class:`ServiceClient` -- a thin stdlib (:mod:`http.client`) wrapper
  over the service's HTTP/JSON endpoints.  Streams ``POST /plans``
  responses line by line as the server completes cells.
* :class:`RemoteExecutor` -- the executor-shaped adapter: it exposes
  the same ``execute(plan)`` / ``run(plan)`` / ``last_report`` surface
  as :class:`~repro.exec.executors.SerialExecutor`, so
  ``python -m repro sweep --server URL`` and
  :class:`~repro.measure.runner.MeasurementRunner` route through the
  service without any caller changes.  Because the service's responses
  are bit-identical to local execution, swapping executors never
  changes a result byte.

Wire notes: responses are chunked JSON Lines; ``http.client`` decodes
the chunked framing transparently and its response object supports
``readline()``, so streaming consumption is just a loop.  Errors
surface as :class:`~repro.errors.ServiceError` -- connection refusals,
HTTP error documents and mid-stream ``{"error": ...}`` lines alike.

Resilience: both layers retry *transient* failures with capped,
deterministic (jitter-free -- reproducibility is the house rule)
exponential backoff.  :class:`ServiceClient` retries its idempotent
GETs (``/health``, ``/stats``, ``/runs``) through connection resets;
:class:`RemoteExecutor` retries whole plan submissions on transport
deaths and on the service's admission-control ``429``/``503`` answers,
honoring their ``Retry-After``.  Retrying a submission is always safe:
measurements are pure functions of content and the server dedupes
against its store, so the retried response is bit-identical and no
cell is ever re-measured warm.
"""

from __future__ import annotations

import http.client
import json
import logging
import os
import time
from collections.abc import Iterator
from urllib.parse import urlsplit

from repro.errors import ServiceError
from repro.exec.plan import ExperimentPlan
from repro.exec.report import CellFailure, ExecutionReport
from repro.exec.serialize import (
    WIRE_V1,
    WIRE_V2,
    WIRE_VERSIONS,
    plan_to_dict,
    plan_to_dict_v2,
)
from repro.measure.measurement import Measurement

logger = logging.getLogger("repro.exec.client")


def _wire_from_env() -> int | None:
    """The ``REPRO_WIRE`` override: 1 or 2 forces a version, anything
    else (unset, empty, ``auto``) negotiates."""
    raw = os.environ.get("REPRO_WIRE", "").strip()
    if raw in ("1", "2"):
        return int(raw)
    return None

#: Deterministic client backoff: attempt N sleeps min(cap, base * 2^N)
#: (or the server's ``Retry-After`` if longer).  No jitter on purpose.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 2.0

#: Default attempts-after-the-first for transient failures.
DEFAULT_CLIENT_RETRIES = 3


def _retry_sleep(attempt: int, retry_after: float | None = None) -> None:
    delay = min(_BACKOFF_CAP_S, _BACKOFF_BASE_S * (2.0**attempt))
    if retry_after is not None:
        delay = max(delay, min(_BACKOFF_CAP_S, retry_after))
    time.sleep(delay)


def _retry_after_of(response: http.client.HTTPResponse) -> float | None:
    header = response.getheader("Retry-After")
    if header is None:
        return None
    try:
        return float(header)
    except ValueError:
        return None


class ServiceClient:
    """HTTP client for one campaign-service endpoint.

    ``url`` is the server base, e.g. ``http://127.0.0.1:8787``.  One
    connection per request (the service closes streamed connections),
    so a client object is cheap and thread-compatible as long as each
    thread drives its own calls to completion.

    ``token`` (default: the ``REPRO_TOKEN`` environment variable) is
    sent as ``Authorization: Bearer <token>`` on every request when
    set.  ``retries`` bounds the transparent re-attempts of idempotent
    GETs through connection resets; plan submissions stream, so their
    retry policy lives in :class:`RemoteExecutor`.

    ``wire`` forces the plan body format (1 inline cells, 2 digest
    pools; default the ``REPRO_WIRE`` environment variable).  Left
    unset, the first submission negotiates: the client reads the
    ``wire`` list the server advertises on ``/health``/``/probe`` and
    sends the newest version both sides speak -- a pre-v2 server
    (which never advertised) gets byte-identical v1 bodies.
    """

    def __init__(
        self,
        url: str,
        timeout: float | None = None,
        token: str | None = None,
        retries: int = DEFAULT_CLIENT_RETRIES,
        wire: int | None = None,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ServiceError(
                f"unsupported service URL scheme {parts.scheme!r} "
                "(the campaign service speaks plain http)"
            )
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        self.token = (
            token if token is not None else os.environ.get("REPRO_TOKEN")
        ) or None
        self.retries = max(0, retries)
        self.url = f"http://{self.host}:{self.port}"
        if wire is None:
            wire = _wire_from_env()
        if wire is not None and wire not in WIRE_VERSIONS:
            raise ServiceError(
                f"unknown wire version {wire!r} (supported: "
                f"{', '.join(str(v) for v in WIRE_VERSIONS)})"
            )
        self.wire = wire
        #: Wire version learned from the server's advertisement, or
        #: ``None`` before any reply carried one.
        self._negotiated: int | None = None

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[http.client.HTTPConnection, http.client.HTTPResponse]:
        connection = self._connect()
        try:
            payload = None
            headers = {}
            if self.token:
                headers["Authorization"] = f"Bearer {self.token}"
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
        except (OSError, http.client.HTTPException) as exc:
            connection.close()
            raise ServiceError(
                f"cannot reach campaign service at {self.url}: {exc}",
                status=503,
            ) from None
        return connection, response

    def _json_once(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        connection, response = self._request(method, path, body)
        try:
            try:
                data = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"campaign service connection to {self.url} reset "
                    f"mid-response: {exc}",
                    status=503,
                ) from None
        finally:
            connection.close()
        document = self._decode(response, data)
        if response.status >= 400:
            raise ServiceError(
                document.get("error", f"HTTP {response.status} on {path}"),
                status=response.status,
                retry_after=_retry_after_of(response),
            )
        self._note_wire(document)
        return document

    def _note_wire(self, document: dict) -> None:
        """Record the wire versions a server reply advertises.

        Replies without the key (pre-v2 servers, non-handshake
        endpoints) leave the negotiated state alone; /health and
        /probe replies pin the newest mutually spoken version.
        """
        advertised = document.get("wire")
        if not isinstance(advertised, list):
            return
        spoken = [v for v in advertised if v in WIRE_VERSIONS]
        self._negotiated = max(spoken) if spoken else WIRE_V1

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        """One JSON round trip; idempotent GETs retry transient failures.

        POSTs never retry here (``/plans`` streams and ``/probe`` is
        cheap enough that callers own the policy); GETs are safe to
        re-issue by construction, so connection resets and backpressure
        answers get ``retries`` deterministic backed-off re-attempts.
        """
        attempts = 1 + (self.retries if method == "GET" else 0)
        for attempt in range(attempts):
            try:
                return self._json_once(method, path, body)
            except ServiceError as exc:
                if not exc.transient or attempt + 1 >= attempts:
                    raise
                logger.warning(
                    "retrying %s %s after transient failure "
                    "(attempt %d/%d): %s",
                    method, path, attempt + 1, attempts, exc,
                )
                _retry_sleep(attempt, exc.retry_after)
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _decode(response: http.client.HTTPResponse, data: bytes) -> dict:
        try:
            document = json.loads(data) if data else {}
        except ValueError:
            raise ServiceError(
                f"campaign service answered HTTP {response.status} with "
                "a non-JSON body"
            ) from None
        if not isinstance(document, dict):
            raise ServiceError("campaign service answered a non-object body")
        return document

    def _stream(
        self, method: str, path: str, body: dict | None = None
    ) -> Iterator[dict]:
        connection, response = self._request(method, path, body)
        try:
            if response.status >= 400:
                document = self._decode(response, response.read())
                raise ServiceError(
                    document.get("error", f"HTTP {response.status} on {path}"),
                    status=response.status,
                    retry_after=_retry_after_of(response),
                )
            while True:
                try:
                    raw = response.readline()
                except (OSError, http.client.HTTPException) as exc:
                    # A mid-stream transport death (server killed, torn
                    # chunk framing) surfaces as the same error class
                    # as every other service failure, so callers (the
                    # shard scheduler's failover above all) handle one
                    # exception type.
                    raise ServiceError(
                        f"campaign service stream from {self.url} died "
                        f"mid-response: {exc}",
                        status=503,
                    ) from None
                if not raw:
                    break
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                except ValueError:
                    raise ServiceError(
                        "campaign service streamed a torn line; the "
                        "connection likely dropped mid-response"
                    ) from None
                if "error" in line:
                    raise ServiceError(str(line["error"]))
                yield line
        finally:
            connection.close()

    # -- endpoints -------------------------------------------------------------

    @property
    def wire_version(self) -> int | None:
        """The effective plan-body version: forced, or as negotiated so
        far (``None`` until a server reply has advertised one)."""
        return self.wire if self.wire is not None else self._negotiated

    def negotiated_wire(self) -> int:
        """The wire version to submit with, negotiating if needed.

        A forced ``wire`` short-circuits.  Otherwise the first call
        asks ``/health`` (whose reply advertises the server's versions)
        and pins the newest both sides speak; a server that advertises
        nothing -- any pre-v2 build -- pins v1.  An unreachable server
        falls back to v1 *without* pinning, so a later attempt (the
        submission retry path re-enters here) re-negotiates once the
        server is back.
        """
        if self.wire is not None:
            return self.wire
        if self._negotiated is None:
            try:
                self.health()
            except ServiceError:
                return WIRE_V1
            if self._negotiated is None:
                self._negotiated = WIRE_V1
        return self._negotiated

    def health(self) -> dict:
        return self._json("GET", "/health")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def runs(self) -> dict:
        return self._json("GET", "/runs")

    def probe(
        self, arch: str, digest, classes: dict | None = None
    ) -> dict:
        """Ask the server whether it rebuilds these exact definitions.

        ``digest`` is the base architecture's content digest and
        ``classes`` maps cluster core class names to theirs; the reply
        carries ``ok`` (every digest reproduces on the server) plus
        per-name verdicts.  The shard scheduler probes every endpoint
        with this before routing any cell to it.
        """
        request: dict = {"arch": arch, "digest": digest}
        if classes:
            request["classes"] = classes
        return self._json("POST", "/probe", request)

    def run_status(self, run: str) -> Iterator[dict]:
        """Stream the journal status and stored cells of one run."""
        return self._stream("GET", f"/runs/{run}")

    def submit(
        self,
        plan: ExperimentPlan,
        arch: str = "POWER7",
        seed: int = 0,
        vector: bool | None = None,
    ) -> Iterator[dict]:
        """Submit a plan; yield response lines as the server streams them.

        The first line is the run header, then one line per unique
        cell ordered by completion, then the trailer
        (``{"complete": true, ...}``).

        The body format follows :meth:`negotiated_wire`: v2 (pooled,
        digest-referenced) to servers that advertise it, v1 (inline
        cells, byte-identical to pre-v2 clients) otherwise.  Results
        are bit-identical either way -- only the request bytes differ.
        """
        if self.negotiated_wire() == WIRE_V2:
            request = plan_to_dict_v2(plan)
        else:
            request = plan_to_dict(plan)
        request["arch"] = arch
        request["seed"] = seed
        if vector is not None:
            request["vector"] = vector
        return self._stream("POST", "/plans", request)


class RemoteExecutor:
    """Executor-shaped adapter running plans on a campaign service.

    Drop-in for the local executors: ``execute`` returns the same
    :class:`~repro.exec.report.ExecutionReport` (expanded measurements,
    structured failures) it would locally, built from the service's
    streamed lines.  ``store`` is ``None`` -- the store lives on the
    server.  On a run with quarantined cells the report's
    ``fault_counters`` carry the service-side accounting under
    ``service.*`` keys; clean runs keep them empty, matching the local
    executors (and keeping CLI output byte-identical either way).

    Transient failures -- the connection dying mid-stream, the service
    answering ``429``/``503`` backpressure -- are retried by
    resubmitting the whole plan up to ``retries`` times with capped
    deterministic backoff (``Retry-After`` honored).  Purity makes the
    resubmission free of side effects: every cell the first attempt
    landed is warm in the server's store, so the retry re-measures
    nothing and the assembled report is bit-identical.  ``progress``
    fires once per unique cell across all attempts.
    """

    def __init__(
        self,
        client: ServiceClient | str,
        arch: str = "POWER7",
        seed: int = 0,
        vector: bool | None = None,
        retries: int = DEFAULT_CLIENT_RETRIES,
        wire: int | None = None,
    ) -> None:
        self.client = (
            client
            if isinstance(client, ServiceClient)
            else ServiceClient(client, wire=wire)
        )
        self.arch = arch
        self.seed = seed
        self.vector = vector
        self.retries = max(0, retries)
        self.store = None
        self.last_report: ExecutionReport | None = None
        #: Transient-submission re-attempts performed over this
        #: executor's lifetime; the shard fabric reads (and resets)
        #: this for its per-replica fault accounting.
        self.transport_retries = 0

    def execute(self, plan: ExperimentPlan, progress=None) -> ExecutionReport:
        unique: list[Measurement | None] = [None] * len(plan.cells)
        counters: dict[str, int] = {}
        #: Cell indices already handed to ``progress`` -- a retried
        #: submission re-streams cells the dead attempt delivered, and
        #: callers must see each exactly once.
        delivered: set[int] = set()
        attempts = 1 + self.retries
        for attempt in range(attempts):
            failures: list[CellFailure] = []
            try:
                for line in self.client.submit(
                    plan, arch=self.arch, seed=self.seed, vector=self.vector
                ):
                    if "measurement" in line and "cell" in line:
                        index = line["cell"]
                        measurement = Measurement.from_dict(
                            line["measurement"]
                        )
                        unique[index] = measurement
                        source = line.get("source", "measured")
                        if index not in delivered:
                            delivered.add(index)
                            counters[f"service.{source}"] = (
                                counters.get(f"service.{source}", 0) + 1
                            )
                            if progress is not None:
                                progress(
                                    [plan.cells[index]],
                                    [measurement],
                                    source == "store",
                                )
                    elif "failure" in line:
                        failures.append(
                            CellFailure.from_dict(line["failure"])
                        )
                    elif line.get("complete"):
                        counters["service.measured"] = line.get("measured", 0)
                break
            except ServiceError as exc:
                if not exc.transient or attempt + 1 >= attempts:
                    raise
                self.transport_retries += 1
                counters["service.retries"] = (
                    counters.get("service.retries", 0) + 1
                )
                logger.warning(
                    "resubmitting plan to %s after transient failure "
                    "(attempt %d/%d): %s",
                    self.client.url, attempt + 1, attempts, exc,
                )
                _retry_sleep(attempt, exc.retry_after)
        missing = sum(1 for entry in unique if entry is None)
        if missing and len(failures) < missing:
            raise ServiceError(
                f"campaign service stream ended with {missing} of "
                f"{len(unique)} cells unaccounted for"
            )
        report = ExecutionReport(
            measurements=tuple(plan.expand(unique)),
            failures=tuple(failures),
            fault_counters=counters if failures else {},
        )
        self.last_report = report
        return report

    def run(self, plan: ExperimentPlan) -> list[Measurement]:
        """Measurements in request order; raises if any cell failed."""
        return self.execute(plan).require_complete()

    def close(self) -> None:  # executor-surface parity; nothing resident
        return None
