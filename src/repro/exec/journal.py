"""Per-run journals: crash-safe campaign manifests next to the store.

A store-backed execution writes an append-only journal under
``<store>/journal/<run_id>.jsonl``.  The run id is content-addressed
from the plan's store keys (which already fold the architecture
definition digest, machine seed, workload digests, configuration and
window), so the *same* campaign always journals to the same file --
a re-run of an interrupted campaign finds its own half-written journal
and resumes.

The journal is a *manifest*, not a second store: the
:class:`~repro.exec.store.ResultStore` remains the source of truth for
which cells are done (every persisted batch is both appended to the
store and journaled), and resume works by probing the store per key as
always.  What the journal adds is run-level accounting that the store's
flat key space cannot express:

* **interruption visibility** -- a header without a matching
  ``complete`` line is a campaign that died mid-flight (``kill -9``,
  OOM, power); the executor logs the resume with how many of the run's
  cells were already journaled done, and ``python -m repro store
  verify`` reports interrupted runs;
* **quarantine memory** -- cells quarantined by a previous attempt are
  recorded with their failure, so operators can distinguish "never
  ran" from "ran and kept failing";
* **fault counters per run** -- the ``complete`` line carries the
  run's recovery counters, a durable chaos-observability record.

Lines are JSON, one object each::

    {"journal": "repro-run-v1", "run": ..., "cells": N, ...}   header
    {"done": ["<key>", ...]}                                   per batch
    {"quarantined": [{...CellFailure...}, ...]}                on failure
    {"complete": true, "measured": N, "counters": {...}}       trailer

Appends use the same ``flock`` discipline as the store shards; a torn
journal tail is skipped on read (the store still has the batch).
"""

from __future__ import annotations

import json
import logging
import os
from collections.abc import Iterable, Sequence
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.hashing import content_hex

logger = logging.getLogger("repro.exec.journal")

FORMAT = "repro-run-v1"


def append_jsonl(path: Path, entry: dict) -> None:
    """Append one JSON line to ``path`` under an exclusive ``flock``.

    The shared crash-safe append discipline of the run journals and the
    run registry: the parent directory is created on demand, the line
    is written with a single ``write`` call and flushed, and the lock is
    always released.  Raises ``OSError`` on failure -- callers decide
    whether the line is load-bearing (the registry logs and continues;
    results always live in the store).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, sort_keys=True).encode() + b"\n"
    with path.open("ab") as handle:
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            handle.write(line)
            handle.flush()
        finally:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def run_id(cell_keys: Sequence[str]) -> str:
    """Content-addressed identity of one plan execution.

    Derived from the plan's store keys in plan order; the keys already
    fold everything a measurement depends on, so identical campaigns
    share a run id across processes and machine reboots.
    """
    return content_hex("run-v1|" + "|".join(cell_keys), size=12)


class RunJournal:
    """Append-only manifest of one plan execution."""

    def __init__(self, store_root: str | os.PathLike, run: str) -> None:
        self.run = run
        self.directory = Path(store_root) / "journal"
        self.path = self.directory / f"{run}.jsonl"
        #: Keys journaled done by this or a previous attempt of the run.
        self.done: set[str] = set()
        #: CellFailure dicts quarantined by previous attempts.
        self.prior_failures: list[dict] = []
        #: Whether a previous attempt finished cleanly.
        self.completed = False
        #: Whether this run resumes an interrupted predecessor.
        self.resumed = False
        self._load()

    # -- reading ---------------------------------------------------------------

    def _load(self) -> None:
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return
        except OSError as exc:
            logger.warning("cannot read run journal %s: %s", self.path, exc)
            return
        header_seen = False
        for line in data.split(b"\n"):
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # A torn tail from a kill mid-append: the store still
                # holds the batch; skip the remnant.
                logger.warning(
                    "skipping torn line in run journal %s", self.path
                )
                continue
            if entry.get("journal") == FORMAT:
                header_seen = True
            elif "done" in entry:
                self.done.update(entry["done"])
            elif "quarantined" in entry:
                self.prior_failures.extend(entry["quarantined"])
            elif entry.get("complete"):
                self.completed = True
        self.resumed = header_seen and not self.completed

    @property
    def state(self) -> str:
        """This run's lifecycle state, as the run registry spells it."""
        if not self.completed:
            return "interrupted"
        return "quarantined" if self.prior_failures else "complete"

    # -- writing ---------------------------------------------------------------

    def _append(self, entry: dict) -> None:
        try:
            append_jsonl(self.path, entry)
        except OSError as exc:
            # The journal is observability, never load-bearing for
            # results: losing a line degrades resume *reporting*, not
            # resume correctness (the store is the source of truth).
            logger.warning("cannot append to run journal %s: %s", self.path, exc)

    def start(self, total_cells: int, description: str) -> None:
        """Journal the run header (once per attempt)."""
        self._append(
            {
                "journal": FORMAT,
                "run": self.run,
                "cells": total_cells,
                "plan": description,
                "resumed": self.resumed,
            }
        )
        if self.resumed:
            logger.info(
                "resuming interrupted run %s: %d of %d cells journaled "
                "done by the previous attempt",
                self.run,
                len(self.done),
                total_cells,
            )

    def mark_done(self, keys: Iterable[str]) -> None:
        """Journal one persisted batch."""
        fresh = [key for key in keys if key not in self.done]
        if not fresh:
            return
        self.done.update(fresh)
        self._append({"done": fresh})

    def mark_quarantined(self, failures: Sequence) -> None:
        """Journal quarantined cells (CellFailure instances)."""
        if failures:
            self._append(
                {"quarantined": [failure.to_dict() for failure in failures]}
            )

    def complete(self, measured: int, counters: dict) -> None:
        """Journal the clean end of the run."""
        self.completed = True
        self._append(
            {"complete": True, "measured": measured, "counters": counters}
        )


def gc_journals(store) -> int:
    """Drop journals of completed runs whose cells are durable; count them.

    A long-lived process (the campaign service foremost) completes
    thousands of runs against one store, and every run leaves a
    ``<store>/journal/<run_id>.jsonl`` manifest behind -- without
    retention the journal directory grows forever.  A journal is
    reclaimable exactly when it has stopped carrying information the
    store does not: the run completed cleanly, every cell it journaled
    done is still present in the store (an abandoned append or an
    external compaction would otherwise lose the resume record with
    the journal), and nothing was quarantined (quarantine memory is
    the journal's whole point -- operators must still be able to
    distinguish "never ran" from "ran and kept failing").

    Interrupted journals are always kept: they are the crash-resume
    record.  ``store`` is a :class:`~repro.exec.store.ResultStore`;
    unlinking failures are logged and skipped, never raised.
    """
    directory = Path(store.root) / "journal"
    if not directory.is_dir():
        return 0
    removed = 0
    for path in sorted(directory.glob("*.jsonl")):
        journal = RunJournal(store.root, path.stem)
        if not journal.completed or journal.prior_failures:
            continue
        if any(key not in store for key in journal.done):
            continue
        try:
            path.unlink()
        except OSError as exc:
            logger.warning("cannot drop run journal %s: %s", path, exc)
            continue
        removed += 1
    if removed:
        logger.info(
            "journal gc: dropped %d completed run journal(s) whose "
            "cells are durable in %s",
            removed,
            store.root,
        )
    return removed


def audit_journals(store_root: str | os.PathLike) -> dict[str, int]:
    """Run-journal summary for ``store verify``: total/complete/interrupted."""
    directory = Path(store_root) / "journal"
    totals = {"runs": 0, "complete": 0, "interrupted": 0}
    if not directory.is_dir():
        return totals
    for path in sorted(directory.glob("*.jsonl")):
        journal = RunJournal(store_root, path.stem)
        totals["runs"] += 1
        if journal.completed:
            totals["complete"] += 1
        else:
            totals["interrupted"] += 1
    return totals
